//! Deterministic input generator for the property-style integration tests.
//!
//! The offline build environment has no `proptest`, so the property tests
//! drive the same invariants from seeded [`SplitMix64`] streams instead:
//! every case is a pure function of the loop index, so failures reproduce
//! exactly and the suite stays bit-deterministic across runs and machines.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of the helpers.
#![allow(dead_code)]

use tbpoint::stats::SplitMix64;

/// Seeded pseudo-random input generator.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// Generator for one test case; `test_seed` decorrelates tests and
    /// `case` decorrelates cases within a test.
    pub fn new(test_seed: u64, case: u64) -> Self {
        Gen {
            rng: SplitMix64::new(tbpoint::stats::hash_coords(&[test_seed, case])),
        }
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.rng.next_index(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    /// Arbitrary `u64` over the full range.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A point set: `1..max_points` points of dimension `1..max_dim`,
    /// coordinates in `[-100, 100)`.
    pub fn points(&mut self, max_points: usize, max_dim: usize) -> Vec<Vec<f64>> {
        let dim = self.usize(1, max_dim);
        let n = self.usize(1, max_points);
        (0..n)
            .map(|_| (0..dim).map(|_| self.f64(-100.0, 100.0)).collect())
            .collect()
    }

    /// A vector of `f64` in `[lo, hi)` with length in `[min_len, max_len)`.
    pub fn f64_vec(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let n = self.usize(min_len, max_len);
        (0..n).map(|_| self.f64(lo, hi)).collect()
    }
}

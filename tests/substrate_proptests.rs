//! Property-style tests over the simulator substrate: cache, DRAM,
//! occupancy, the SIMT walker and the synthetic workload builder.
//!
//! Inputs come from seeded deterministic generators (see `common::Gen`)
//! rather than `proptest`, which is unavailable in the offline build
//! environment; each case reproduces exactly from its loop index.

mod common;

use common::Gen;
use tbpoint::emu::{profile_launch, trace_warp};
use tbpoint::ir::ExecCtx;
use tbpoint::sim::cache::Cache;
use tbpoint::sim::{simulate_launch, CacheConfig, GpuConfig, NullSampling};
use tbpoint::workloads::{PhaseSpec, SyntheticSpec};

const CASES: u64 = 24;

fn small_spec(g: &mut Gen) -> SyntheticSpec {
    let phases = if g.usize(0, 2) == 0 {
        PhaseSpec::None
    } else {
        PhaseSpec::Phased {
            phase_len: g.u32(4, 32),
            max_mult: g.u32(2, 5),
        }
    };
    SyntheticSpec {
        name: "prop".into(),
        seed: g.any_u64(),
        threads_per_block: 64,
        launches: g.u32(1, 4),
        blocks_per_launch: g.u32(8, 48),
        // Guarantee at least one instruction per iteration.
        iterations: g.u32(1, 8),
        alu_per_iter: g.u32(0, 4).max(1),
        loads_per_iter: g.u32(0, 3),
        gather_fraction: g.f64(0.0, 1.0),
        divergence_spread: g.u32(0, 8),
        phases,
        branch_prob: g.f64(0.0, 0.6),
    }
}

/// Any synthetic workload validates, profiles and conserves the walker
/// identities: thread insts <= 32 * warp insts, and the trace agrees with
/// the profile exactly.
#[test]
fn synthetic_workloads_conserve_instruction_identities() {
    for case in 0..CASES {
        let mut g = Gen::new(0x11, case);
        let spec = small_spec(&mut g);
        let run = spec.build();
        run.kernel.validate().unwrap();
        let launch = &run.launches[0];
        let profile = profile_launch(&run.kernel, launch, 1);
        let mut trace_warp_insts = 0u64;
        let mut trace_thread_insts = 0u64;
        for tb in 0..launch.num_blocks {
            let ctx = ExecCtx {
                kernel_seed: run.kernel.seed,
                launch_id: launch.launch_id,
                block_id: tb,
                num_blocks: launch.num_blocks,
                work_scale: launch.work_scale,
            };
            for w in 0..run.kernel.warps_per_block() {
                let t = trace_warp(&run.kernel, &ctx, w);
                trace_warp_insts += t.len() as u64;
                trace_thread_insts += t
                    .iter()
                    .map(|i| u64::from(i.mask.count_ones()))
                    .sum::<u64>();
            }
        }
        let p_warp: u64 = profile.tbs.iter().map(|t| t.warp_insts).sum();
        let p_thread: u64 = profile.tbs.iter().map(|t| t.thread_insts).sum();
        assert_eq!(trace_warp_insts, p_warp);
        assert_eq!(trace_thread_insts, p_thread);
        assert!(p_thread <= p_warp * 32);
    }
}

/// The timing simulator issues exactly the profiled instruction count for
/// any synthetic workload (trace-driven conservation end to end).
#[test]
fn simulation_issues_exactly_the_profiled_instructions() {
    for case in 0..CASES {
        let mut g = Gen::new(0x12, case);
        let spec = small_spec(&mut g);
        let run = spec.build();
        let launch = &run.launches[0];
        let profile = profile_launch(&run.kernel, launch, 1);
        let expected: u64 = profile.tbs.iter().map(|t| t.warp_insts).sum();
        let r = simulate_launch(
            &run.kernel,
            launch,
            &GpuConfig::fermi(),
            &mut NullSampling,
            None,
        );
        assert_eq!(r.issued_warp_insts, expected);
        // Per-SM stats agree with the aggregate counters.
        let sm_total: u64 = r.sm_stats.iter().map(|s| s.issued_warp_insts).sum();
        assert_eq!(sm_total, expected);
        let mix_total: u64 = r.sm_stats.iter().map(|s| s.mix.total()).sum();
        assert_eq!(mix_total, expected);
    }
}

/// Cache: a just-accessed line hits while it stays within the set's
/// associativity, and the hit/miss counters always sum to the access
/// count.
#[test]
fn cache_hit_semantics() {
    for case in 0..CASES {
        let mut g = Gen::new(0x13, case);
        let n_addrs = g.usize(1, 200);
        let addrs: Vec<u64> = (0..n_addrs).map(|_| g.u64(0, 1 << 20)).collect();
        let assoc = g.u32(1, 8);
        let cfg = CacheConfig {
            size_bytes: 128 * 64 * u64::from(assoc),
            line_bytes: 128,
            assoc,
        };
        let mut c = Cache::new(cfg);
        let mut accesses = 0u64;
        for &a in &addrs {
            c.access_load(a);
            accesses += 1;
            // Immediate re-access of the same line must hit (MRU).
            assert!(c.access_load(a), "line just loaded must hit");
            accesses += 1;
        }
        let (h, m) = c.stats();
        assert_eq!(h + m, accesses);
        assert!(h >= addrs.len() as u64, "at least the re-accesses hit");
    }
}

/// Kernel serde round-trips for arbitrary synthetic kernels: one decode
/// re-encodes to the identical JSON (floats may differ in the final ulp
/// on the *first* parse, so byte-stability after one trip is the correct
/// invariant), and the decoded kernel behaves identically (same profile).
#[test]
fn kernel_serde_roundtrip() {
    for case in 0..CASES {
        let mut g = Gen::new(0x14, case);
        let spec = small_spec(&mut g);
        let run = spec.build();
        let json = serde_json::to_string(&run).unwrap();
        let back: tbpoint::ir::KernelRun = serde_json::from_str(&json).unwrap();
        let json2 = serde_json::to_string(&back).unwrap();
        let back2: tbpoint::ir::KernelRun = serde_json::from_str(&json2).unwrap();
        assert_eq!(&back, &back2);
        assert_eq!(json2, serde_json::to_string(&back2).unwrap());
        back.kernel.validate().unwrap();
        // Behavioural equivalence of the decoded kernel.
        let a = profile_launch(&run.kernel, &run.launches[0], 1);
        let b = profile_launch(&back.kernel, &back.launches[0], 1);
        assert_eq!(a.warp_insts(), b.warp_insts());
        assert_eq!(a.mem_requests(), b.mem_requests());
    }
}

/// Occupancy is monotone in warp slots and never zero.
#[test]
fn occupancy_monotone_in_warps() {
    for case in 0..CASES {
        let mut g = Gen::new(0x15, case);
        let spec = small_spec(&mut g);
        let w1 = g.u32(8, 32);
        let extra = g.u32(1, 32);
        let run = spec.build();
        let small = GpuConfig::with_occupancy(w1, 14);
        let big = GpuConfig::with_occupancy(w1 + extra, 14);
        let o_small = small.sm_occupancy(&run.kernel);
        let o_big = big.sm_occupancy(&run.kernel);
        assert!(o_small >= 1);
        assert!(o_big >= o_small);
    }
}

//! Property-based tests over the simulator substrate: cache, DRAM,
//! occupancy, the SIMT walker and the synthetic workload builder.

use proptest::prelude::*;
use tbpoint::emu::{profile_launch, trace_warp};
use tbpoint::ir::ExecCtx;
use tbpoint::sim::cache::Cache;
use tbpoint::sim::{simulate_launch, CacheConfig, GpuConfig, NullSampling};
use tbpoint::workloads::{PhaseSpec, SyntheticSpec};

fn small_spec() -> impl Strategy<Value = SyntheticSpec> {
    (
        1u32..4,     // launches
        8u32..48,    // blocks per launch
        1u32..8,     // iterations
        0u32..4,     // alu per iter
        0u32..3,     // loads per iter
        0.0f64..1.0, // gather fraction
        0u32..8,     // divergence spread
        0.0f64..0.6, // branch prob
        prop_oneof![
            Just(PhaseSpec::None),
            (4u32..32, 2u32..5).prop_map(|(l, m)| PhaseSpec::Phased {
                phase_len: l,
                max_mult: m
            }),
        ],
        0u64..u64::MAX, // seed
    )
        .prop_map(
            |(launches, blocks, iters, alu, loads, gather, spread, branch, phases, seed)| {
                SyntheticSpec {
                    name: "prop".into(),
                    seed,
                    threads_per_block: 64,
                    launches,
                    blocks_per_launch: blocks,
                    // Guarantee at least one instruction per iteration.
                    iterations: iters,
                    alu_per_iter: alu.max(1),
                    loads_per_iter: loads,
                    gather_fraction: gather,
                    divergence_spread: spread,
                    phases,
                    branch_prob: branch,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any synthetic workload validates, profiles and conserves the
    /// walker identities: thread insts <= 32 * warp insts, and the trace
    /// agrees with the profile exactly.
    #[test]
    fn synthetic_workloads_conserve_instruction_identities(spec in small_spec()) {
        let run = spec.build();
        run.kernel.validate().unwrap();
        let launch = &run.launches[0];
        let profile = profile_launch(&run.kernel, launch, 1);
        let mut trace_warp_insts = 0u64;
        let mut trace_thread_insts = 0u64;
        for tb in 0..launch.num_blocks {
            let ctx = ExecCtx {
                kernel_seed: run.kernel.seed,
                launch_id: launch.launch_id,
                block_id: tb,
                num_blocks: launch.num_blocks,
                work_scale: launch.work_scale,
            };
            for w in 0..run.kernel.warps_per_block() {
                let t = trace_warp(&run.kernel, &ctx, w);
                trace_warp_insts += t.len() as u64;
                trace_thread_insts += t.iter().map(|i| i.mask.count_ones() as u64).sum::<u64>();
            }
        }
        let p_warp: u64 = profile.tbs.iter().map(|t| t.warp_insts).sum();
        let p_thread: u64 = profile.tbs.iter().map(|t| t.thread_insts).sum();
        prop_assert_eq!(trace_warp_insts, p_warp);
        prop_assert_eq!(trace_thread_insts, p_thread);
        prop_assert!(p_thread <= p_warp * 32);
    }

    /// The timing simulator issues exactly the profiled instruction count
    /// for any synthetic workload (trace-driven conservation end to end).
    #[test]
    fn simulation_issues_exactly_the_profiled_instructions(spec in small_spec()) {
        let run = spec.build();
        let launch = &run.launches[0];
        let profile = profile_launch(&run.kernel, launch, 1);
        let expected: u64 = profile.tbs.iter().map(|t| t.warp_insts).sum();
        let r = simulate_launch(&run.kernel, launch, &GpuConfig::fermi(), &mut NullSampling, None);
        prop_assert_eq!(r.issued_warp_insts, expected);
        // Per-SM stats agree with the aggregate counters.
        let sm_total: u64 = r.sm_stats.iter().map(|s| s.issued_warp_insts).sum();
        prop_assert_eq!(sm_total, expected);
        let mix_total: u64 = r.sm_stats.iter().map(|s| s.mix.total()).sum();
        prop_assert_eq!(mix_total, expected);
    }

    /// Cache: a just-accessed line hits while it stays within the set's
    /// associativity, and the hit/miss counters always sum to the access
    /// count.
    #[test]
    fn cache_hit_semantics(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..200),
        assoc in 1u32..8,
    ) {
        let cfg = CacheConfig { size_bytes: 128 * 64 * assoc as u64, line_bytes: 128, assoc };
        let mut c = Cache::new(cfg);
        let mut accesses = 0u64;
        for &a in &addrs {
            c.access_load(a);
            accesses += 1;
            // Immediate re-access of the same line must hit (MRU).
            prop_assert!(c.access_load(a), "line just loaded must hit");
            accesses += 1;
        }
        let (h, m) = c.stats();
        prop_assert_eq!(h + m, accesses);
        prop_assert!(h >= addrs.len() as u64, "at least the re-accesses hit");
    }

    /// Kernel serde round-trips for arbitrary synthetic kernels: one
    /// decode re-encodes to the identical JSON (floats may differ in the
    /// final ulp on the *first* parse, so byte-stability after one trip
    /// is the correct invariant), and the decoded kernel behaves
    /// identically (same profile).
    #[test]
    fn kernel_serde_roundtrip(spec in small_spec()) {
        let run = spec.build();
        let json = serde_json::to_string(&run).unwrap();
        let back: tbpoint::ir::KernelRun = serde_json::from_str(&json).unwrap();
        let json2 = serde_json::to_string(&back).unwrap();
        let back2: tbpoint::ir::KernelRun = serde_json::from_str(&json2).unwrap();
        prop_assert_eq!(&back, &back2);
        prop_assert_eq!(json2, serde_json::to_string(&back2).unwrap());
        back.kernel.validate().unwrap();
        // Behavioural equivalence of the decoded kernel.
        let a = profile_launch(&run.kernel, &run.launches[0], 1);
        let b = profile_launch(&back.kernel, &back.launches[0], 1);
        prop_assert_eq!(a.warp_insts(), b.warp_insts());
        prop_assert_eq!(a.mem_requests(), b.mem_requests());
    }

    /// Occupancy is monotone in warp slots and never zero.
    #[test]
    fn occupancy_monotone_in_warps(spec in small_spec(), w1 in 8u32..32, extra in 1u32..32) {
        let run = spec.build();
        let small = GpuConfig::with_occupancy(w1, 14);
        let big = GpuConfig::with_occupancy(w1 + extra, 14);
        let o_small = small.sm_occupancy(&run.kernel);
        let o_big = big.sm_occupancy(&run.kernel);
        prop_assert!(o_small >= 1);
        prop_assert!(o_big >= o_small);
    }
}

//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;
use tbpoint::cluster::{hierarchical_cluster, kmeans, normalize_by_mean, Linkage};
use tbpoint::core::intra::{build_epochs, identify_regions, IntraConfig, RegionTable};
use tbpoint::ir::{Cond, Dist, ExecCtx, LaunchId, TbId, TripCount};
use tbpoint::stats::{cov, mean, percentile, OnlineStats, SplitMix64};

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // 1..40 points of dimension 1..5, values in a tame range.
    (1usize..5).prop_flat_map(|dim| {
        proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, dim..=dim),
            1..40,
        )
    })
}

proptest! {
    /// Hierarchical clustering always yields dense cluster ids covering
    /// every point, and respects the complete-linkage sigma bound.
    #[test]
    fn hierarchical_clustering_invariants(points in points_strategy(), sigma in 0.0f64..50.0) {
        let c = hierarchical_cluster(&points, sigma, Linkage::Complete);
        prop_assert_eq!(c.assignments.len(), points.len());
        prop_assert!(c.num_clusters >= 1);
        prop_assert!(c.num_clusters <= points.len());
        // Ids are dense 0..num_clusters.
        let mut seen = vec![false; c.num_clusters];
        for &a in &c.assignments {
            prop_assert!(a < c.num_clusters);
            seen[a] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // The sigma semantics: no intra-cluster pair exceeds sigma.
        prop_assert!(c.max_intra_distance(&points) <= sigma + 1e-9);
    }

    /// k-means produces valid assignments and non-increasing inertia as
    /// k grows (more clusters can never fit worse, given same seeding
    /// discipline we at least demand validity + finite inertia).
    #[test]
    fn kmeans_invariants(points in points_strategy(), k in 1usize..8) {
        let r = kmeans(&points, k, 99, 50);
        prop_assert_eq!(r.clustering.assignments.len(), points.len());
        prop_assert!(r.clustering.num_clusters <= k.min(points.len()));
        prop_assert!(r.inertia.is_finite());
        prop_assert!(r.inertia >= 0.0);
    }

    /// Mean-normalisation makes every dimension average to 1 (or stay 0).
    #[test]
    fn normalization_unit_means(points in points_strategy()) {
        // Shift positive so means are nonzero in general.
        let pts: Vec<Vec<f64>> =
            points.iter().map(|p| p.iter().map(|x| x.abs() + 1.0).collect()).collect();
        let n = normalize_by_mean(&pts);
        let dim = pts[0].len();
        for d in 0..dim {
            let m = n.iter().map(|p| p[d]).sum::<f64>() / n.len() as f64;
            prop_assert!((m - 1.0).abs() < 1e-9, "dim {} mean {}", d, m);
        }
    }

    /// Online statistics match batch statistics on arbitrary inputs.
    #[test]
    fn online_matches_batch(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        prop_assert!((o.mean() - mean(&xs)).abs() < 1e-6 * (1.0 + mean(&xs).abs()));
        prop_assert!((o.cov() - cov(&xs)).abs() < 1e-6 * (1.0 + cov(&xs).abs()));
        prop_assert_eq!(o.count(), xs.len() as u64);
    }

    /// Online merge equals sequential accumulation for any split point.
    #[test]
    fn online_merge_any_split(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let (mut a, mut b) = (OnlineStats::new(), OnlineStats::new());
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
    }

    /// Percentiles are monotone in q and bounded by the extrema.
    #[test]
    fn percentile_monotone(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = percentile(&xs, lo);
        let p_hi = percentile(&xs, hi);
        prop_assert!(p_lo <= p_hi + 1e-12);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo >= min - 1e-12 && p_hi <= max + 1e-12);
    }

    /// Trip counts stay within their declared bounds for every context.
    #[test]
    fn trip_counts_bounded(
        base in 0u32..50,
        spread in 0u32..50,
        block in 0u32..1000,
        thread in 0u64..100_000,
        seed in 0u64..u64::MAX,
        which in 0usize..3,
    ) {
        let ctx = ExecCtx {
            kernel_seed: seed,
            launch_id: LaunchId(3),
            block_id: block,
            num_blocks: 1000,
            work_scale: 1.0,
        };
        let dists = [Dist::Uniform, Dist::PowerLaw { alpha: 2.0 }, Dist::Bimodal { p_heavy: 0.1 }];
        for dist in dists {
            let tc = match which {
                0 => TripCount::PerBlock { base, spread, dist, site: 1 },
                1 => TripCount::PerThread { base, spread, dist, site: 1 },
                _ => TripCount::PerBlockPhase { base, spread, phase_len: 64, dist, site: 1 },
            };
            let v = tc.eval(&ctx, thread);
            prop_assert!(v >= base && v <= base + spread, "{} outside [{}, {}]", v, base, base + spread);
        }
    }

    /// Block-uniform conditions agree across all lanes of a warp.
    #[test]
    fn block_uniform_conds_agree(p in 0.0f64..1.0, block in 0u32..100, seed in 0u64..u64::MAX) {
        let ctx = ExecCtx {
            kernel_seed: seed,
            launch_id: LaunchId(0),
            block_id: block,
            num_blocks: 100,
            work_scale: 1.0,
        };
        let cond = Cond::BlockProb { p, site: 7 };
        let first = cond.eval(&ctx, 0, 0);
        for lane in 1..32u32 {
            prop_assert_eq!(cond.eval(&ctx, lane as u64, lane), first);
        }
    }

    /// Epochs tile the launch exactly: every TB in exactly one epoch.
    #[test]
    fn epochs_tile_launch(n_tbs in 1usize..300, occupancy in 1u32..100) {
        use tbpoint::emu::TbProfile;
        use tbpoint::ir::LaunchSpec;
        let profile = tbpoint::emu::LaunchProfile {
            spec: LaunchSpec {
                launch_id: LaunchId(0),
                num_blocks: n_tbs as u32,
                work_scale: 1.0,
            },
            tbs: (0..n_tbs)
                .map(|i| TbProfile {
                    tb_id: TbId(i as u32),
                    thread_insts: 320,
                    warp_insts: 10,
                    mem_insts: 2,
                    mem_requests: 2,
                    shared_accesses: 0,
                    barriers: 0,
                    bbv: vec![10],
                })
                .collect(),
        };
        let epochs = build_epochs(&profile, occupancy);
        let covered: u32 = epochs.iter().map(|e| e.end_tb - e.start_tb).sum();
        prop_assert_eq!(covered as usize, n_tbs);
        for w in epochs.windows(2) {
            prop_assert_eq!(w[0].end_tb, w[1].start_tb);
        }
        // Homogeneous TBs: one region covering everything.
        let table = identify_regions(&epochs, &IntraConfig::default());
        prop_assert_eq!(table.covered_tbs(), n_tbs as u64);
    }

    /// Region tables never overlap and lookups agree with the intervals.
    #[test]
    fn region_lookup_consistent(
        starts in proptest::collection::vec(0u32..1000, 1..10),
        len in 1u32..50,
    ) {
        // Build disjoint regions from sorted, deduplicated starts spaced
        // by at least `len`.
        let mut s = starts.clone();
        s.sort_unstable();
        let mut regions = vec![];
        let mut next_free = 0u32;
        for (i, &st) in s.iter().enumerate() {
            let st = st.max(next_free);
            regions.push(tbpoint::core::intra::Region {
                region_id: i as u32,
                start_tb: st,
                end_tb: st + len,
            });
            next_free = st + len;
        }
        let table = RegionTable { regions: regions.clone() };
        for r in &regions {
            prop_assert_eq!(table.region_of(TbId(r.start_tb)), Some(r.region_id));
            prop_assert_eq!(table.region_of(TbId(r.end_tb - 1)), Some(r.region_id));
            // One past the end is outside this region (it may be the
            // start of the next, adjacent one, but never this id).
            prop_assert_ne!(table.region_of(TbId(r.end_tb)), Some(r.region_id));
        }
        prop_assert_eq!(table.covered_tbs(), regions.len() as u64 * len as u64);
    }

    /// The deterministic RNG's shuffle is a permutation for any seed.
    #[test]
    fn shuffle_is_permutation(seed in 0u64..u64::MAX, n in 0usize..200) {
        let mut rng = SplitMix64::new(seed);
        let mut xs: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

//! Property-style tests on the core data structures and invariants,
//! spanning crates.
//!
//! Inputs come from seeded deterministic generators (see `common::Gen`)
//! rather than `proptest`, which is unavailable in the offline build
//! environment; each case reproduces exactly from its loop index.

mod common;

use common::Gen;
use tbpoint::cluster::{hierarchical_cluster, kmeans, normalize_by_mean, Linkage};
use tbpoint::core::intra::{build_epochs, identify_regions, IntraConfig, Region, RegionTable};
use tbpoint::ir::{Cond, Dist, ExecCtx, LaunchId, LaunchSpec, TbId, TripCount};
use tbpoint::stats::{cov, mean, percentile, OnlineStats, SplitMix64};

const CASES: u64 = 64;

/// Hierarchical clustering always yields dense cluster ids covering every
/// point, and respects the complete-linkage sigma bound.
#[test]
fn hierarchical_clustering_invariants() {
    for case in 0..CASES {
        let mut g = Gen::new(0x01, case);
        let points = g.points(40, 5);
        let sigma = g.f64(0.0, 50.0);
        let c = hierarchical_cluster(&points, sigma, Linkage::Complete);
        assert_eq!(c.assignments.len(), points.len());
        assert!(c.num_clusters >= 1);
        assert!(c.num_clusters <= points.len());
        // Ids are dense 0..num_clusters.
        let mut seen = vec![false; c.num_clusters];
        for &a in &c.assignments {
            assert!(a < c.num_clusters);
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // The sigma semantics: no intra-cluster pair exceeds sigma.
        assert!(c.max_intra_distance(&points) <= sigma + 1e-9);
    }
}

/// k-means produces valid assignments and finite, non-negative inertia.
#[test]
fn kmeans_invariants() {
    for case in 0..CASES {
        let mut g = Gen::new(0x02, case);
        let points = g.points(40, 5);
        let k = g.usize(1, 8);
        let r = kmeans(&points, k, 99, 50);
        assert_eq!(r.clustering.assignments.len(), points.len());
        assert!(r.clustering.num_clusters <= k.min(points.len()));
        assert!(r.inertia.is_finite());
        assert!(r.inertia >= 0.0);
    }
}

/// Mean-normalisation makes every dimension average to 1 (or stay 0).
#[test]
fn normalization_unit_means() {
    for case in 0..CASES {
        let mut g = Gen::new(0x03, case);
        let points = g.points(40, 5);
        // Shift positive so means are nonzero in general.
        let pts: Vec<Vec<f64>> = points
            .iter()
            .map(|p| p.iter().map(|x| x.abs() + 1.0).collect())
            .collect();
        let n = normalize_by_mean(&pts);
        let dim = pts[0].len();
        for d in 0..dim {
            let m = n.iter().map(|p| p[d]).sum::<f64>() / n.len() as f64;
            assert!((m - 1.0).abs() < 1e-9, "dim {d} mean {m}");
        }
    }
}

/// Online statistics match batch statistics on arbitrary inputs.
#[test]
fn online_matches_batch() {
    for case in 0..CASES {
        let mut g = Gen::new(0x04, case);
        let xs = g.f64_vec(-1e6, 1e6, 1, 200);
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert!((o.mean() - mean(&xs)).abs() < 1e-6 * (1.0 + mean(&xs).abs()));
        assert!((o.cov() - cov(&xs)).abs() < 1e-6 * (1.0 + cov(&xs).abs()));
        assert_eq!(o.count(), xs.len() as u64);
    }
}

/// Online merge equals sequential accumulation for any split point.
#[test]
fn online_merge_any_split() {
    for case in 0..CASES {
        let mut g = Gen::new(0x05, case);
        let xs = g.f64_vec(-1e3, 1e3, 2, 100);
        let split = g.usize(0, xs.len() + 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let (mut a, mut b) = (OnlineStats::new(), OnlineStats::new());
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
    }
}

/// Percentiles are monotone in q and bounded by the extrema.
#[test]
fn percentile_monotone() {
    for case in 0..CASES {
        let mut g = Gen::new(0x06, case);
        let xs = g.f64_vec(-1e3, 1e3, 1, 100);
        let (q1, q2) = (g.f64(0.0, 100.0), g.f64(0.0, 100.0));
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = percentile(&xs, lo);
        let p_hi = percentile(&xs, hi);
        assert!(p_lo <= p_hi + 1e-12);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p_lo >= min - 1e-12 && p_hi <= max + 1e-12);
    }
}

/// Trip counts stay within their declared bounds for every context.
#[test]
fn trip_counts_bounded() {
    for case in 0..CASES {
        let mut g = Gen::new(0x07, case);
        let base = g.u32(0, 50);
        let spread = g.u32(0, 50);
        let block = g.u32(0, 1000);
        let thread = g.u64(0, 100_000);
        let seed = g.any_u64();
        let which = g.usize(0, 3);
        let ctx = ExecCtx {
            kernel_seed: seed,
            launch_id: LaunchId(3),
            block_id: block,
            num_blocks: 1000,
            work_scale: 1.0,
        };
        let dists = [
            Dist::Uniform,
            Dist::PowerLaw { alpha: 2.0 },
            Dist::Bimodal { p_heavy: 0.1 },
        ];
        for dist in dists {
            let tc = match which {
                0 => TripCount::PerBlock {
                    base,
                    spread,
                    dist,
                    site: 1,
                },
                1 => TripCount::PerThread {
                    base,
                    spread,
                    dist,
                    site: 1,
                },
                _ => TripCount::PerBlockPhase {
                    base,
                    spread,
                    phase_len: 64,
                    dist,
                    site: 1,
                },
            };
            let v = tc.eval(&ctx, thread);
            assert!(
                v >= base && v <= base + spread,
                "{v} outside [{base}, {}]",
                base + spread
            );
        }
    }
}

/// Block-uniform conditions agree across all lanes of a warp.
#[test]
fn block_uniform_conds_agree() {
    for case in 0..CASES {
        let mut g = Gen::new(0x08, case);
        let p = g.f64(0.0, 1.0);
        let block = g.u32(0, 100);
        let seed = g.any_u64();
        let ctx = ExecCtx {
            kernel_seed: seed,
            launch_id: LaunchId(0),
            block_id: block,
            num_blocks: 100,
            work_scale: 1.0,
        };
        let cond = Cond::BlockProb { p, site: 7 };
        let first = cond.eval(&ctx, 0, 0);
        for lane in 1..32u32 {
            assert_eq!(cond.eval(&ctx, lane as u64, lane), first);
        }
    }
}

/// Epochs tile the launch exactly: every TB in exactly one epoch.
#[test]
fn epochs_tile_launch() {
    use tbpoint::emu::TbProfile;
    for case in 0..CASES {
        let mut g = Gen::new(0x09, case);
        let n_tbs = g.usize(1, 300);
        let occupancy = g.u32(1, 100);
        let profile = tbpoint::emu::LaunchProfile {
            spec: LaunchSpec {
                launch_id: LaunchId(0),
                num_blocks: n_tbs as u32,
                work_scale: 1.0,
            },
            tbs: (0..n_tbs)
                .map(|i| TbProfile {
                    tb_id: TbId(i as u32),
                    thread_insts: 320,
                    warp_insts: 10,
                    mem_insts: 2,
                    mem_requests: 2,
                    shared_accesses: 0,
                    barriers: 0,
                    bbv: vec![10],
                })
                .collect(),
        };
        let epochs = build_epochs(&profile, occupancy);
        let covered: u32 = epochs.iter().map(|e| e.end_tb - e.start_tb).sum();
        assert_eq!(covered as usize, n_tbs);
        for w in epochs.windows(2) {
            assert_eq!(w[0].end_tb, w[1].start_tb);
        }
        // Homogeneous TBs: one region covering everything.
        let table = identify_regions(&epochs, &IntraConfig::default());
        assert_eq!(table.covered_tbs(), n_tbs as u64);
    }
}

/// Region tables never overlap and lookups agree with the intervals.
#[test]
fn region_lookup_consistent() {
    for case in 0..CASES {
        let mut g = Gen::new(0x0a, case);
        let n_starts = g.usize(1, 10);
        let mut s: Vec<u32> = (0..n_starts).map(|_| g.u32(0, 1000)).collect();
        let len = g.u32(1, 50);
        // Build disjoint regions from sorted starts spaced by at least
        // `len`.
        s.sort_unstable();
        let mut regions = vec![];
        let mut next_free = 0u32;
        for (i, &st) in s.iter().enumerate() {
            let st = st.max(next_free);
            regions.push(Region {
                region_id: i as u32,
                start_tb: st,
                end_tb: st + len,
            });
            next_free = st + len;
        }
        let table = RegionTable {
            regions: regions.clone(),
        };
        for r in &regions {
            assert_eq!(table.region_of(TbId(r.start_tb)), Some(r.region_id));
            assert_eq!(table.region_of(TbId(r.end_tb - 1)), Some(r.region_id));
            // One past the end is outside this region (it may be the
            // start of the next, adjacent one, but never this id).
            assert_ne!(table.region_of(TbId(r.end_tb)), Some(r.region_id));
        }
        assert_eq!(table.covered_tbs(), regions.len() as u64 * u64::from(len));
    }
}

/// The deterministic RNG's shuffle is a permutation for any seed.
#[test]
fn shuffle_is_permutation() {
    for case in 0..CASES {
        let mut g = Gen::new(0x0b, case);
        let seed = g.any_u64();
        let n = g.usize(0, 200);
        let mut rng = SplitMix64::new(seed);
        let mut xs: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

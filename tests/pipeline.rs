//! End-to-end integration tests: the full TBPoint pipeline (profile ->
//! cluster -> sampled simulation -> prediction) against full simulation,
//! across crates. Tiny scale keeps them fast.

use tbpoint::core::predict::{run_tbpoint, TbpointConfig};
use tbpoint::emu::profile_run;
use tbpoint::sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint::workloads::{all_benchmarks, benchmark_by_name, Scale};

/// Any benchmark, full pipeline: the prediction must be finite, the
/// accounting must conserve instructions, and the error must be sane.
#[test]
fn pipeline_invariants_hold_for_every_benchmark() {
    let gpu = GpuConfig::fermi();
    for bench in all_benchmarks(Scale::Tiny) {
        let profile = profile_run(&bench.run, 2);
        let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
        let tbp = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu).unwrap();

        // Instruction conservation: the profile and the full simulation
        // must agree exactly (same walker), and TBPoint's accounting must
        // partition the workload.
        assert_eq!(
            profile.total_warp_insts(),
            full.total_issued_warp_insts(),
            "{}: profile and simulation disagree on instruction count",
            bench.name
        );
        assert_eq!(
            tbp.simulated_warp_insts + tbp.breakdown.total_skipped(),
            tbp.total_warp_insts,
            "{}: sampled accounting does not conserve instructions",
            bench.name
        );
        assert_eq!(
            tbp.total_warp_insts,
            profile.total_warp_insts(),
            "{}",
            bench.name
        );

        // Prediction sanity.
        assert!(
            tbp.predicted_ipc.is_finite() && tbp.predicted_ipc > 0.0,
            "{}",
            bench.name
        );
        let err = tbp.error_vs(full.overall_ipc());
        assert!(err < 25.0, "{}: error {err:.2}% at tiny scale", bench.name);

        // Sample size is a valid fraction and never zero (something must
        // be simulated).
        let s = tbp.sample_size();
        assert!(s > 0.0 && s <= 1.0, "{}: sample size {s}", bench.name);
    }
}

/// Regular many-launch kernels must collapse to very few simulated
/// launches; single-launch kernels must rely on intra sampling only.
#[test]
fn savings_structure_matches_kernel_shape() {
    let gpu = GpuConfig::fermi();
    for (name, expect_single) in [("cfd", false), ("stream", false), ("lbm", true)] {
        let bench = benchmark_by_name(name, Scale::Tiny).unwrap();
        let profile = profile_run(&bench.run, 2);
        let tbp = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu).unwrap();
        if expect_single {
            assert_eq!(tbp.num_launches, 1, "{name}");
            assert_eq!(
                tbp.breakdown.inter_skipped_warp_insts, 0,
                "{name}: single launch cannot have inter savings"
            );
        } else {
            assert!(
                tbp.num_simulated_launches * 5 <= tbp.num_launches,
                "{name}: homogeneous launches should collapse ({}/{})",
                tbp.num_simulated_launches,
                tbp.num_launches
            );
            assert!(tbp.breakdown.inter_skipped_warp_insts > 0, "{name}");
        }
    }
}

/// TBPoint's defining accuracy claim at small scale: on regular kernels
/// the error stays within a few percent of full simulation.
#[test]
fn regular_kernels_predict_accurately() {
    let gpu = GpuConfig::fermi();
    for name in ["cfd", "kmeans", "stream", "conv"] {
        let bench = benchmark_by_name(name, Scale::Tiny).unwrap();
        let profile = profile_run(&bench.run, 2);
        let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
        let tbp = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu).unwrap();
        let err = tbp.error_vs(full.overall_ipc());
        assert!(err < 8.0, "{name}: error {err:.2}%");
    }
}

/// The hardware-independence claim: one profile drives TBPoint at any
/// simulated configuration.
#[test]
fn one_profile_serves_multiple_configs() {
    let bench = benchmark_by_name("spmv", Scale::Tiny).unwrap();
    let profile = profile_run(&bench.run, 2); // collected once
    for (w, s) in [(16u32, 8u32), (48, 14)] {
        let gpu = GpuConfig::with_occupancy(w, s);
        let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
        let tbp = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu).unwrap();
        assert!(
            tbp.error_vs(full.overall_ipc()) < 20.0,
            "W{w}S{s}: error {:.2}%",
            tbp.error_vs(full.overall_ipc())
        );
    }
}

/// Disabling both techniques must reproduce the full simulation exactly
/// (the null sampling identity).
#[test]
fn null_config_is_exact() {
    let bench = benchmark_by_name("hotspot", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let profile = profile_run(&bench.run, 2);
    let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
    let cfg = TbpointConfig {
        inter_enabled: false,
        intra_enabled: false,
        ..TbpointConfig::default()
    };
    let tbp = run_tbpoint(&bench.run, &profile, &cfg, &gpu).unwrap();
    assert!(tbp.error_vs(full.overall_ipc()) < 1e-9);
    assert_eq!(tbp.sample_size(), 1.0);
}

//! Cross-crate observability guarantees: recorders observe, they never
//! influence. The golden tests pin the bit-identity of traced vs
//! untraced runs; the property tests pin the JSON-lines encoding.

mod common;

use common::Gen;
use tbpoint::obs::{event_line, parse_event, Counter, GaugeSummary, Span};
use tbpoint::prelude::*;
use tbpoint::sim::{simulate_launch_obs, NullSampling};
use tbpoint::workloads::{benchmark_by_name, Scale};

/// Golden test: swapping the recorder must leave every simulated number
/// bit-identical, at both the single-launch and whole-pipeline level.
#[test]
fn traced_and_untraced_runs_are_bit_identical() {
    let gpu = GpuConfig::fermi();
    for name in ["spmv", "cfd", "lbm"] {
        let bench = benchmark_by_name(name, Scale::Tiny).unwrap();
        let profile = profile_run(&bench.run, 2);
        let cfg = TbpointConfig::default();

        let plain = run_tbpoint(&bench.run, &profile, &cfg, &gpu).unwrap();
        let (traced, traces) = run_tbpoint_traced(&bench.run, &profile, &cfg, &gpu).unwrap();
        assert_eq!(plain, traced, "{name}: tracing changed the result");
        assert!(!traces.is_empty(), "{name}: traced run produced no traces");
        for t in &traces {
            assert!(
                !t.trace.events.is_empty(),
                "{name}: launch {} trace is empty",
                t.launch
            );
        }
    }
}

/// The same identity one level down: `simulate_launch` against
/// `simulate_launch_obs` under every recorder implementation.
#[test]
fn every_recorder_leaves_the_simulation_untouched() {
    let bench = benchmark_by_name("hotspot", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let launch = &bench.run.launches[0];
    let baseline = simulate_launch(&bench.run.kernel, launch, &gpu, &mut NullSampling, None);

    let null = simulate_launch_obs(
        &bench.run.kernel,
        launch,
        &gpu,
        &mut NullSampling,
        None,
        &NullRecorder,
    );
    assert_eq!(baseline, null);

    let collect = CollectingRecorder::new();
    let collected = simulate_launch_obs(
        &bench.run.kernel,
        launch,
        &gpu,
        &mut NullSampling,
        None,
        &collect,
    );
    assert_eq!(baseline, collected);
    assert!(!collect.is_empty(), "collecting recorder saw nothing");

    let sink = JsonlRecorder::new();
    let sunk = simulate_launch_obs(
        &bench.run.kernel,
        launch,
        &gpu,
        &mut NullSampling,
        None,
        &sink,
    );
    assert_eq!(baseline, sunk);

    // The two enabled recorders of the same (deterministic) launch must
    // have seen the same stream, and the sink's text must parse back.
    let bundle = collect.finish();
    let text = sink.finish();
    assert_eq!(bundle.to_jsonl(), text);
    assert_eq!(TraceBundle::from_jsonl(&text).unwrap(), bundle);
}

fn arbitrary_span(g: &mut Gen) -> Span {
    if g.u64(0, 2) == 0 {
        Span::ProfileLaunch {
            launch: g.u32(0, 1 << 20),
        }
    } else {
        Span::SimulateLaunch {
            launch: g.u32(0, 1 << 20),
        }
    }
}

fn arbitrary_kind(g: &mut Gen) -> EventKind {
    match g.u64(0, 16) {
        0 => EventKind::SpanStart {
            span: arbitrary_span(g),
        },
        1 => EventKind::SpanEnd {
            span: arbitrary_span(g),
        },
        2 => EventKind::TbDispatched {
            tb: g.u32(0, 1 << 24),
            sm: g.u32(0, 64),
        },
        3 => EventKind::TbSkipped {
            tb: g.u32(0, 1 << 24),
        },
        4 => EventKind::TbRetired {
            tb: g.u32(0, 1 << 24),
            sm: g.u32(0, 64),
        },
        5 => EventKind::IdleJump {
            cycles: g.any_u64(),
        },
        6 => EventKind::MshrStall {
            sm: g.u32(0, 64),
            cycles: g.any_u64(),
        },
        7 => EventKind::DramAccess {
            sm: g.u32(0, 64),
            row_hit: g.u64(0, 2) == 0,
        },
        8 => EventKind::RegionEntered {
            region: g.u32(0, 1 << 16),
        },
        9 => EventKind::RegionExited,
        10 => EventKind::UnitClosed {
            ipc: g.f64(0.0, 64.0),
        },
        11 => EventKind::FastForwardStarted {
            region: g.u32(0, 1 << 16),
            ipc: g.f64(0.0, 64.0),
        },
        12 => EventKind::LiveEpochDetected {
            epoch: g.u32(0, 1 << 20),
            cluster: g.u32(0, 1 << 16),
        },
        13 => EventKind::LiveFastForward {
            cluster: g.u32(0, 1 << 16),
            ipc: g.f64(0.0, 64.0),
        },
        14 => EventKind::LiveDestabilised {
            cluster: g.u32(0, 1 << 16),
        },
        _ => EventKind::BlockSkipped {
            tb: g.u32(0, 1 << 24),
            warp_insts: g.any_u64(),
        },
    }
}

/// Property: any event survives `event_line` -> `parse_event` exactly.
#[test]
fn arbitrary_events_round_trip_through_json_lines() {
    for case in 0..500 {
        let mut g = Gen::new(0x0b5e_7001, case);
        let ev = Event {
            cycle: g.any_u64(),
            kind: arbitrary_kind(&mut g),
        };
        let ln = event_line(&ev);
        let back = parse_event(&ln).unwrap_or_else(|e| panic!("case {case}: {e:?} in {ln}"));
        assert_eq!(back, ev, "case {case}: line was {ln}");
    }
}

/// Property: any well-formed bundle (sorted counters/gauges, as every
/// recorder produces) survives `to_jsonl` -> `from_jsonl` exactly.
#[test]
fn arbitrary_bundles_round_trip_through_json_lines() {
    for case in 0..100 {
        let mut g = Gen::new(0x0b5e_7002, case);
        let events = (0..g.usize(0, 40))
            .map(|_| Event {
                cycle: g.any_u64(),
                kind: arbitrary_kind(&mut g),
            })
            .collect();
        let names = ["dram_row_hit", "issued_warp_insts", "l1_hit", "l2_miss"];
        let counters = names
            .iter()
            .take(g.usize(0, names.len() + 1))
            .map(|n| Counter {
                name: (*n).to_string(),
                value: g.any_u64(),
            })
            .collect();
        let gauges = (0..g.u32(0, 4))
            .map(|index| {
                let last = g.any_u64();
                GaugeSummary {
                    name: "sm_resident_blocks".to_string(),
                    index,
                    last,
                    max: last.max(g.any_u64()),
                    samples: g.u64(1, 1 << 32),
                }
            })
            .collect();
        let bundle = TraceBundle {
            events,
            counters,
            gauges,
        };
        let text = bundle.to_jsonl();
        let back = TraceBundle::from_jsonl(&text).unwrap_or_else(|e| panic!("case {case}: {e:?}"));
        assert_eq!(back, bundle, "case {case}");
    }
}

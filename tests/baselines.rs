//! Integration tests for the Random / Ideal-SimPoint baselines against
//! the real simulator (unit-level behaviour is covered inside the
//! baselines crate; here the full collection pipeline runs).

use tbpoint::baselines::{
    collect_units, ideal_simpoint, random_sampling, IdealSimpointConfig, RandomConfig,
};
use tbpoint::sim::GpuConfig;
use tbpoint::workloads::{benchmark_by_name, Scale};

#[test]
fn unit_collection_conserves_instructions() {
    let bench = benchmark_by_name("conv", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let (units, full_ipc) = collect_units(&bench.run, &gpu, 3_000, true);
    assert!(!units.is_empty());
    assert!(full_ipc > 0.0);
    // Unit BBV totals equal unit instruction counts.
    for u in &units {
        let bbv_total: u64 = u.bbv.iter().sum();
        assert_eq!(bbv_total, u.warp_insts);
    }
}

#[test]
fn baselines_predict_regular_kernel_accurately() {
    // A uniform kernel is the easy case: both baselines must land close.
    let bench = benchmark_by_name("kmeans", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let (units, full_ipc) = collect_units(&bench.run, &gpu, 3_000, true);
    let rnd = random_sampling(&units, &RandomConfig::default());
    let isp = ideal_simpoint(&units, &IdealSimpointConfig::default());
    assert!(
        rnd.error_vs(full_ipc) < 10.0,
        "random err {:.2}%",
        rnd.error_vs(full_ipc)
    );
    assert!(
        isp.error_vs(full_ipc) < 10.0,
        "ideal err {:.2}%",
        isp.error_vs(full_ipc)
    );
    // Ideal-SimPoint needs far fewer units than Random's fixed 10%.
    assert!(isp.num_selected < rnd.num_selected.max(2) * 3);
}

#[test]
fn random_sample_size_is_ten_percent() {
    let bench = benchmark_by_name("cfd", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let (units, _) = collect_units(&bench.run, &gpu, 2_000, false);
    let rnd = random_sampling(&units, &RandomConfig::default());
    assert!(
        (rnd.sample_size - 0.10).abs() < 0.05,
        "sample {:.3}",
        rnd.sample_size
    );
}

#[test]
fn ideal_simpoint_sample_shrinks_on_uniform_workload() {
    // Uniform BBVs collapse to very few clusters.
    let bench = benchmark_by_name("lbm", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let (units, _) = collect_units(&bench.run, &gpu, 3_000, true);
    let isp = ideal_simpoint(&units, &IdealSimpointConfig::default());
    assert!(
        isp.sample_size < 0.30,
        "uniform workload should need few points, got {:.2}",
        isp.sample_size
    );
}

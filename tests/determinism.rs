//! Cross-crate determinism: the entire stack — workload generation,
//! profiling (serial and parallel), timing simulation, clustering and
//! prediction — must be bit-reproducible. Reproducibility is what makes
//! profile-once-simulate-anywhere sound.

use tbpoint::baselines::{collect_units, ideal_simpoint, IdealSimpointConfig};
use tbpoint::core::predict::{run_tbpoint, run_tbpoint_plan, TbpointConfig};
use tbpoint::emu::{profile_launch, profile_run};
use tbpoint::pool::ExecPlan;
use tbpoint::sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint::workloads::{benchmark_by_name, Scale};

#[test]
fn workload_generation_is_stable() {
    let a = benchmark_by_name("bfs", Scale::Tiny).unwrap();
    let b = benchmark_by_name("bfs", Scale::Tiny).unwrap();
    assert_eq!(a.run, b.run);
}

#[test]
fn profiling_is_thread_count_invariant() {
    let bench = benchmark_by_name("sssp", Scale::Tiny).unwrap();
    let spec = bench
        .run
        .launches
        .iter()
        .max_by_key(|l| l.num_blocks)
        .unwrap();
    let serial = profile_launch(&bench.run.kernel, spec, 1);
    let parallel = profile_launch(&bench.run.kernel, spec, 8);
    assert_eq!(serial, parallel);
}

#[test]
fn simulation_is_run_to_run_deterministic() {
    let bench = benchmark_by_name("mst", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let a = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
    let b = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
    assert_eq!(a, b);
}

#[test]
fn tbpoint_prediction_is_deterministic() {
    let bench = benchmark_by_name("spmv", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let profile = profile_run(&bench.run, 4);
    let a = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu).unwrap();
    let b = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu).unwrap();
    assert_eq!(a, b);
}

#[test]
fn tbpoint_is_worker_count_invariant() {
    // Parallel representative simulation must not change any number.
    let bench = benchmark_by_name("cfd", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let profile = profile_run(&bench.run, 4);
    let serial = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu).unwrap();
    let parallel = run_tbpoint_plan(
        &bench.run,
        &profile,
        &TbpointConfig::default(),
        &gpu,
        ExecPlan {
            sim_jobs: 2,
            pool_workers: 8,
        },
    )
    .unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn baseline_unit_collection_is_deterministic() {
    let bench = benchmark_by_name("kmeans", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let (units_a, ipc_a) = collect_units(&bench.run, &gpu, 5_000, true);
    let (units_b, ipc_b) = collect_units(&bench.run, &gpu, 5_000, true);
    assert_eq!(units_a, units_b);
    assert_eq!(ipc_a, ipc_b);
    let isp_a = ideal_simpoint(&units_a, &IdealSimpointConfig::default());
    let isp_b = ideal_simpoint(&units_b, &IdealSimpointConfig::default());
    assert_eq!(isp_a, isp_b);
}

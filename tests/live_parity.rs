//! The live-sampling parity contract, per workload:
//!
//! * live single-pass estimates track the two-phase pipeline within a
//!   fixed tolerance on every Tiny roster workload and on seeded
//!   random kernels — fusing profiling into the timing pass must not
//!   change what the pipeline concludes, only how often it runs;
//! * live errors against the full simulation stay inside the same
//!   clean-baseline envelope `tbpoint bench --check` enforces;
//! * live results are **bit-identical** across both [`ExecPlan`] axes
//!   (`sim_jobs` and `pool_workers`) — the online detector consumes
//!   the retire stream in launch order, so scheduling must be
//!   invisible.
//!
//! Inputs come from seeded deterministic generators (see `common::Gen`)
//! rather than `proptest`, which is unavailable in the offline build
//! environment; each case reproduces exactly from its loop index.

mod common;

use common::Gen;
use tbpoint::core::{
    run_tbpoint_live_plan, run_tbpoint_plan, SamplingMode, TbpointConfig, TbpointResult,
};
use tbpoint::emu::profile_run;
use tbpoint::ir::KernelRun;
use tbpoint::pool::ExecPlan;
use tbpoint::sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint::workloads::{all_benchmarks, PhaseSpec, Scale, SyntheticSpec};

/// Relative IPC gap allowed between the two sampling modes. They make
/// different (both defensible) sampling decisions, so exact equality is
/// not the contract — agreement on the answer is.
const MODE_TOLERANCE: f64 = 0.10;

/// Sampled-vs-full error envelope, matching `bench::ERROR_BOUND_PCT`
/// (the resilience suite's clean-baseline anchor).
const ERROR_BOUND_PCT: f64 = 10.0;

/// The plan grid both satellites run: every combination of the two
/// parallelism axes at 1 and 2.
const PLANS: [(usize, usize); 4] = [(1, 1), (2, 1), (1, 2), (2, 2)];

fn live_cfg() -> TbpointConfig {
    TbpointConfig {
        mode: SamplingMode::Live,
        ..TbpointConfig::default()
    }
}

fn plan(sim_jobs: usize, pool_workers: usize) -> ExecPlan {
    ExecPlan {
        sim_jobs,
        pool_workers,
    }
}

/// Live vs two-phase vs full on one run; panics with `label` context
/// when the modes disagree beyond tolerance or live leaves the error
/// envelope.
fn assert_live_tracks_two_phase(label: &str, run: &KernelRun, gpu: &GpuConfig) {
    let profile = profile_run(run, 1);
    let cfg = TbpointConfig::default();
    let two_phase =
        run_tbpoint_plan(run, &profile, &cfg, gpu, ExecPlan::serial()).expect("two-phase pipeline");
    let live =
        run_tbpoint_live_plan(run, &live_cfg(), gpu, ExecPlan::serial()).expect("live pipeline");

    let rel = if two_phase.predicted_ipc > 0.0 {
        ((live.predicted_ipc - two_phase.predicted_ipc) / two_phase.predicted_ipc).abs()
    } else {
        0.0
    };
    assert!(
        rel <= MODE_TOLERANCE,
        "{label}: live IPC {:.4} vs two-phase {:.4} — {:.2}% apart (tolerance {:.0}%)",
        live.predicted_ipc,
        two_phase.predicted_ipc,
        rel * 100.0,
        MODE_TOLERANCE * 100.0
    );

    let full_ipc = simulate_run(run, gpu, &mut NullSampling, None).overall_ipc();
    let live_err = live.error_vs(full_ipc);
    assert!(
        live_err <= ERROR_BOUND_PCT,
        "{label}: live sampled-vs-full error {live_err:.2}% breaches the \
         {ERROR_BOUND_PCT}% envelope (two-phase: {:.2}%)",
        two_phase.error_vs(full_ipc)
    );
}

/// Live results at every plan-grid point; panics with `label` context
/// when any differs from the serial result.
fn assert_live_plan_invariant(label: &str, run: &KernelRun, gpu: &GpuConfig) {
    let mut reference: Option<TbpointResult> = None;
    for (jobs, workers) in PLANS {
        let r = run_tbpoint_live_plan(run, &live_cfg(), gpu, plan(jobs, workers))
            .expect("live pipeline");
        match &reference {
            None => reference = Some(r),
            Some(serial) => assert_eq!(
                &r, serial,
                "{label}: live result at jobs={jobs} pool-workers={workers} \
                 differs from the serial run"
            ),
        }
    }
}

#[test]
fn live_tracks_two_phase_on_every_tiny_workload() {
    let gpu = GpuConfig::fermi();
    for bench in all_benchmarks(Scale::Tiny) {
        assert_live_tracks_two_phase(bench.name, &bench.run, &gpu);
    }
}

#[test]
fn live_results_are_bit_identical_across_both_plan_axes() {
    let gpu = GpuConfig::fermi();
    for bench in all_benchmarks(Scale::Tiny) {
        assert_live_plan_invariant(bench.name, &bench.run, &gpu);
    }
}

fn random_spec(g: &mut Gen) -> SyntheticSpec {
    let phases = if g.usize(0, 2) == 0 {
        PhaseSpec::None
    } else {
        PhaseSpec::Phased {
            phase_len: g.u32(4, 32),
            max_mult: g.u32(2, 5),
        }
    };
    SyntheticSpec {
        name: "live-parity".into(),
        seed: g.any_u64(),
        threads_per_block: 64,
        launches: g.u32(2, 5),
        blocks_per_launch: g.u32(8, 48),
        iterations: g.u32(1, 8),
        alu_per_iter: g.u32(0, 4).max(1),
        loads_per_iter: g.u32(0, 3),
        gather_fraction: g.f64(0.0, 1.0),
        divergence_spread: g.u32(0, 8),
        phases,
        branch_prob: g.f64(0.0, 0.6),
    }
}

#[test]
fn live_parity_holds_on_seeded_random_kernels() {
    const CASES: u64 = 8;
    let gpu = GpuConfig::fermi();
    for case in 0..CASES {
        let mut g = Gen::new(0x1b, case);
        let run = random_spec(&mut g).build();
        let label = format!("case {case}");
        assert_live_tracks_two_phase(&label, &run, &gpu);
        assert_live_plan_invariant(&label, &run, &gpu);
    }
}

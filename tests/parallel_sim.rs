//! Bit-identity suite for the sharded parallel simulator.
//!
//! `SimOptions::jobs > 1` routes `simulate_launch` through
//! `crates/sim/src/parallel.rs`: SMs sharded across worker threads,
//! advanced in bounded cycle windows, with all cross-SM coupling (MSHRs,
//! L2, DRAM, dispatch, retirement) applied at the window barriers in a
//! canonical order. That design claims the parallel result is a pure
//! function of the input — independent of thread count and OS
//! scheduling — and *equal to the serial result*. This suite pins the
//! claim from four angles:
//!
//! 1. **Workload equality**: Table-VI workloads at Tiny scale simulate
//!    to byte-identical serialised results under serial and parallel
//!    modes (the golden suite additionally cross-checks parallel modes
//!    against the committed pre-optimisation goldens).
//! 2. **Seeded property**: random kernels that mix every address
//!    pattern, trip-count class, and branch class — heavy on the shared
//!    memory path, the part parallelism actually reorders — match
//!    serial for every `jobs` x `SimOptions` combination.
//! 3. **Observability totals**: counter totals and gauge summaries from
//!    a `CollectingRecorder` match serial exactly (event *order* within
//!    a cycle and `IdleJump` granularity may differ by design; totals
//!    may not).
//! 4. **Clamping**: `jobs == 0` and `jobs > num_sms` degrade to the
//!    nearest valid configuration rather than misbehaving.

mod common;

use common::Gen;
use tbpoint::ir::{
    AddrPattern, Cond, Dist, Kernel, KernelBuilder, LaunchId, LaunchSpec, Op, TripCount,
};
use tbpoint::obs::CollectingRecorder;
use tbpoint::sim::{
    simulate_launch, simulate_launch_obs_with_options, simulate_launch_with_options, GpuConfig,
    NullSampling, SimOptions,
};
use tbpoint::workloads::{all_benchmarks, Scale};

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("sim results serialise")
}

/// Every `SimOptions` mode the serial simulator supports, at `jobs`.
fn modes(jobs: usize) -> [SimOptions; 4] {
    [true, false]
        .into_iter()
        .flat_map(|intern| {
            [true, false].map(|horizon| SimOptions {
                intern_traces: intern,
                event_horizon: horizon,
                jobs,
            })
        })
        .collect::<Vec<_>>()
        .try_into()
        .expect("2x2 option grid")
}

/// Layer 1: real workloads. Each Tiny benchmark's first launch is
/// simulated serially and under `jobs in {2, 8}` in both the default
/// (interned + event horizon) and fully de-optimised (fresh traces,
/// cycle-stepped) modes; results must serialise identically. The golden
/// suite covers more launches per workload; this one covers more of the
/// jobs axis.
#[test]
fn parallel_matches_serial_on_tiny_workloads() {
    let cfg = GpuConfig::fermi();
    let opt_modes = [(true, true), (false, false)];
    for bench in all_benchmarks(Scale::Tiny) {
        let spec = &bench.run.launches[0];
        for (intern_traces, event_horizon) in opt_modes {
            let serial = simulate_launch_with_options(
                &bench.run.kernel,
                spec,
                &cfg,
                &mut NullSampling,
                None,
                SimOptions {
                    intern_traces,
                    event_horizon,
                    jobs: 1,
                },
            );
            let serial_json = to_json(&serial);
            for jobs in [2usize, 8] {
                let par = simulate_launch_with_options(
                    &bench.run.kernel,
                    spec,
                    &cfg,
                    &mut NullSampling,
                    None,
                    SimOptions {
                        intern_traces,
                        event_horizon,
                        jobs,
                    },
                );
                assert_eq!(
                    serial_json,
                    to_json(&par),
                    "{}: jobs={jobs} intern={intern_traces} horizon={event_horizon} \
                     diverges from serial",
                    bench.name
                );
            }
        }
    }
}

/// A random kernel biased toward the shared memory path: global loads
/// and stores in every address pattern, mixed with ALU/SFU work,
/// shared-memory traffic, barriers, and divergent control flow — the
/// instruction mix most likely to expose a window-protocol ordering bug.
fn random_mem_kernel(g: &mut Gen, case: u64) -> Kernel {
    let tpb = g.u32(16, 160);
    let mut b = KernelBuilder::new(&format!("par{case}"), g.u64(1, 1 << 20), tpb);
    let mut nodes = Vec::new();
    for _ in 0..g.usize(2, 5) {
        let region = g.u32(0, 4);
        let pattern = match g.u32(0, 4) {
            0 => AddrPattern::Coalesced { region, stride: 4 },
            1 => AddrPattern::Strided {
                region,
                stride: 128 + g.u32(0, 3) * 64,
            },
            2 => AddrPattern::Random {
                region,
                bytes: 1 << g.u32(12, 18),
            },
            _ => AddrPattern::Broadcast { region },
        };
        let mut ops = vec![Op::LdGlobal(pattern), Op::IAlu, Op::FAlu];
        match g.u32(0, 4) {
            0 => ops.push(Op::StGlobal(pattern)),
            1 => {
                ops.push(Op::LdShared);
                ops.push(Op::StShared);
            }
            2 => ops.push(Op::Sfu),
            _ => ops.push(Op::Barrier),
        }
        let body = b.block(&ops);
        let site = b.fresh_site();
        let trips = match g.u32(0, 3) {
            0 => TripCount::Const(g.u32(1, 5)),
            1 => TripCount::PerBlock {
                base: g.u32(1, 4),
                spread: g.u32(0, 6),
                dist: Dist::Uniform,
                site,
            },
            _ => TripCount::PerThread {
                base: g.u32(1, 4),
                spread: g.u32(0, 6),
                dist: Dist::Uniform,
                site,
            },
        };
        let looped = b.loop_(trips, body);
        match g.u32(0, 3) {
            0 => nodes.push(looped),
            1 => {
                let cond = Cond::ThreadProb {
                    p: g.f64(0.2, 0.9),
                    site: b.fresh_site(),
                };
                nodes.push(b.if_(cond, looped, None));
            }
            _ => {
                let cond = Cond::LaneLt(g.u32(1, 32));
                nodes.push(b.if_(cond, looped, None));
            }
        }
    }
    let root = b.seq(nodes);
    b.finish(root)
}

/// Layer 2: seeded property. Random memory-heavy kernels match serial
/// under every `jobs x SimOptions` combination.
#[test]
fn parallel_matches_serial_on_seeded_memory_kernels() {
    const CASES: u64 = 10;
    let cfg = GpuConfig::fermi();
    for case in 0..CASES {
        let mut g = Gen::new(0x5a7, case);
        let kernel = random_mem_kernel(&mut g, case);
        let spec = LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: g.u32(8, 64),
            work_scale: 1.0,
        };
        for opts in modes(1) {
            let serial =
                simulate_launch_with_options(&kernel, &spec, &cfg, &mut NullSampling, None, opts);
            let serial_json = to_json(&serial);
            for jobs in [2usize, 3, 8] {
                let par = simulate_launch_with_options(
                    &kernel,
                    &spec,
                    &cfg,
                    &mut NullSampling,
                    None,
                    SimOptions { jobs, ..opts },
                );
                assert_eq!(
                    serial_json,
                    to_json(&par),
                    "case {case}: jobs={jobs} opts={opts:?} diverges from serial"
                );
            }
        }
    }
}

/// Layer 3: observability totals. The parallel simulator's shard
/// recorders merge back into the caller's recorder; counter totals and
/// gauge summaries must equal serial's exactly. (Event order within a
/// cycle and idle-jump granularity are allowed to differ — windows cut
/// machine-wide idle spans where serial jumps them whole — so events
/// are compared only on their deterministic per-cycle retirement
/// stream.)
#[test]
fn parallel_observability_totals_match_serial() {
    let cfg = GpuConfig::fermi();
    let bench = &all_benchmarks(Scale::Tiny)[0];
    let spec = &bench.run.launches[0];
    let collect = |jobs: usize| {
        let rec = CollectingRecorder::new();
        simulate_launch_obs_with_options(
            &bench.run.kernel,
            spec,
            &cfg,
            &mut NullSampling,
            None,
            SimOptions {
                jobs,
                ..SimOptions::default()
            },
            &rec,
        );
        rec.finish()
    };
    let serial = collect(1);
    let par = collect(3);
    assert_eq!(serial.counters, par.counters, "counter totals diverge");
    assert_eq!(serial.gauges, par.gauges, "gauge summaries diverge");
    let retires = |bundle: &tbpoint::obs::TraceBundle| {
        bundle
            .events
            .iter()
            .filter(|e| matches!(e.kind, tbpoint::obs::EventKind::TbRetired { .. }))
            .map(|e| (e.cycle, e.kind))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        retires(&serial),
        retires(&par),
        "retirement streams diverge"
    );
}

/// Layer 5 (`--features shadow-check`): the runtime phase sanitizer
/// accepts every Tiny workload and a seeded batch of memory-heavy random
/// kernels at `jobs in {1, 2, 4}` — every shared-path access is tagged
/// with the current window phase and `debug_assert`ed to not come from a
/// shard — while results stay bit-identical to serial. The final
/// assertion proves the sanitizer actually ran on this thread (barrier
/// replay happens on the coordinator, which is the test thread).
#[cfg(feature = "shadow-check")]
#[test]
fn shadow_checker_accepts_tiny_workloads_and_seeded_kernels() {
    use tbpoint::sim::shadow;
    let cfg = GpuConfig::fermi();
    let before = shadow::checks_on_this_thread();
    for bench in all_benchmarks(Scale::Tiny) {
        let spec = &bench.run.launches[0];
        let serial = simulate_launch(&bench.run.kernel, spec, &cfg, &mut NullSampling, None);
        let serial_json = to_json(&serial);
        for jobs in [1usize, 2, 4] {
            let par = simulate_launch_with_options(
                &bench.run.kernel,
                spec,
                &cfg,
                &mut NullSampling,
                None,
                SimOptions {
                    jobs,
                    ..SimOptions::default()
                },
            );
            assert_eq!(
                serial_json,
                to_json(&par),
                "{}: jobs={jobs} diverges under shadow-check",
                bench.name
            );
        }
    }
    for case in 0..4u64 {
        let mut g = Gen::new(0xfade, case);
        let kernel = random_mem_kernel(&mut g, case);
        let spec = LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: g.u32(8, 48),
            work_scale: 1.0,
        };
        let serial = simulate_launch(&kernel, &spec, &cfg, &mut NullSampling, None);
        let serial_json = to_json(&serial);
        for jobs in [1usize, 2, 4] {
            let par = simulate_launch_with_options(
                &kernel,
                &spec,
                &cfg,
                &mut NullSampling,
                None,
                SimOptions {
                    jobs,
                    ..SimOptions::default()
                },
            );
            assert_eq!(
                serial_json,
                to_json(&par),
                "case {case}: jobs={jobs} diverges under shadow-check"
            );
        }
    }
    assert!(
        shadow::checks_on_this_thread() > before,
        "sanitizer never ran; shared-path accesses were not phase-checked"
    );
}

/// Layer 4: out-of-range `jobs` values clamp instead of misbehaving —
/// `0` falls back to serial, and more jobs than SMs behaves like
/// one-SM-per-shard.
#[test]
fn out_of_range_jobs_clamp_to_valid_range() {
    let cfg = GpuConfig::fermi();
    let bench = &all_benchmarks(Scale::Tiny)[0];
    let spec = &bench.run.launches[0];
    let run = |jobs: usize| {
        to_json(&simulate_launch_with_options(
            &bench.run.kernel,
            spec,
            &cfg,
            &mut NullSampling,
            None,
            SimOptions {
                jobs,
                ..SimOptions::default()
            },
        ))
    };
    let serial = to_json(&simulate_launch(
        &bench.run.kernel,
        spec,
        &cfg,
        &mut NullSampling,
        None,
    ));
    assert_eq!(serial, run(0), "jobs=0 must alias the serial path");
    assert_eq!(serial, run(1), "jobs=1 must alias the serial path");
    assert_eq!(serial, run(64), "jobs > num_sms must clamp to num_sms");
}

//! Golden bit-identity suite for the simulator hot-path optimisations.
//!
//! The trace interner and the event-horizon cycle skipping (see
//! DESIGN.md, "Performance") are pure optimisations: they must not
//! change a single bit of any simulation result. Three layers of tests
//! pin that down:
//!
//! 1. **Committed golden**: every Table-VI workload at Tiny scale is
//!    simulated in full and the serialised [`tbpoint::sim::RunSimResult`]
//!    compared byte-for-byte against `tests/goldens/launch_sim_tiny.json`,
//!    which was generated *before* the optimisations landed (see
//!    `examples/gen_goldens.rs` and EXPERIMENTS.md, "Bit-identity
//!    goldens"). This catches drift against history, not just against a
//!    reference mode that might share a bug.
//! 2. **Mode cross-check**: each launch is re-simulated with interning
//!    off (fresh re-emulation per warp), with the event horizon off
//!    (cycle-by-cycle stepping), and with both off; all four mode
//!    combinations must serialise identically.
//! 3. **Interner key property**: over seeded random kernels spanning
//!    every trip-count/condition dependence class, two (block, warp)
//!    coordinates that map to the same `TraceKey` must produce equal
//!    traces — the invariant the whole interner rests on.

mod common;

use common::Gen;
use tbpoint::emu::{trace_warp, TraceArena, TraceKey};
use tbpoint::ir::{Cond, Dist, ExecCtx, Kernel, KernelBuilder, LaunchId, Op, TripCount};
use tbpoint::sim::{
    simulate_launch, simulate_launch_with_options, simulate_run, GpuConfig, NullSampling,
    SimOptions,
};
use tbpoint::workloads::{all_benchmarks, Scale};

/// The committed pre-optimisation reference output.
const GOLDEN: &str = include_str!("goldens/launch_sim_tiny.json");

/// Extract the JSON object committed for one workload. The golden file
/// is line-oriented (`"name": {...},` per workload) precisely so tests
/// and reviews can address one workload at a time.
fn golden_entry(name: &str) -> &'static str {
    let prefix = format!("\"{name}\": ");
    for line in GOLDEN.lines() {
        if let Some(rest) = line.strip_prefix(&prefix) {
            return rest.strip_suffix(',').unwrap_or(rest);
        }
    }
    panic!(
        "tests/goldens/launch_sim_tiny.json has no entry for `{name}`; \
         regenerate with `cargo run --release --example gen_goldens`"
    );
}

/// Byte-exact comparison with a readable failure: print the window
/// around the first diverging byte instead of two full JSON dumps.
fn assert_same_json(what: &str, expected: &str, actual: &str) {
    if expected == actual {
        return;
    }
    let diff = expected
        .bytes()
        .zip(actual.bytes())
        .position(|(e, a)| e != a)
        .unwrap_or_else(|| expected.len().min(actual.len()));
    // The golden is ASCII JSON, so byte windows are valid char boundaries.
    let window = |s: &str| {
        let lo = diff.saturating_sub(80);
        let hi = (diff + 80).min(s.len());
        s[lo..hi].to_string()
    };
    panic!(
        "{what}: results diverge at byte {diff} \
         (expected {} bytes, got {})\n  expected: …{}…\n  actual:   …{}…",
        expected.len(),
        actual.len(),
        window(expected),
        window(actual),
    );
}

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("sim results serialise")
}

/// The golden file covers exactly the current roster, in roster order.
#[test]
fn golden_covers_every_workload() {
    let names: Vec<&str> = all_benchmarks(Scale::Tiny).iter().map(|b| b.name).collect();
    assert_eq!(names.len(), 12, "Table VI roster is twelve benchmarks");
    for name in names {
        golden_entry(name); // panics with a regeneration hint if absent
    }
}

/// Layer 1: full-detail simulation of every Tiny workload reproduces the
/// committed pre-optimisation output byte-for-byte.
#[test]
fn tiny_runs_match_committed_golden() {
    let cfg = GpuConfig::fermi();
    for bench in all_benchmarks(Scale::Tiny) {
        let r = simulate_run(&bench.run, &cfg, &mut NullSampling, None);
        assert_same_json(bench.name, golden_entry(bench.name), &to_json(&r));
    }
}

/// Layer 2: the optimised default (interned traces + event horizon)
/// serialises identically to the three reference modes that disable
/// either or both optimisations. Every workload is covered; within a
/// workload the cross-check runs on representative launches (first,
/// widest grid, last) — the reference modes are an order of magnitude
/// slower by design, and layer 1 already pins the default mode on every
/// launch against committed history.
#[test]
fn interning_and_event_horizon_are_bit_identical() {
    let modes = [
        (
            "fresh traces",
            SimOptions {
                intern_traces: false,
                event_horizon: true,
                jobs: 1,
            },
        ),
        (
            "cycle-stepped",
            SimOptions {
                intern_traces: true,
                event_horizon: false,
                jobs: 1,
            },
        ),
        (
            "fresh traces + cycle-stepped",
            SimOptions {
                intern_traces: false,
                event_horizon: false,
                jobs: 1,
            },
        ),
        (
            "parallel jobs=3",
            SimOptions {
                intern_traces: true,
                event_horizon: true,
                jobs: 3,
            },
        ),
        (
            "parallel jobs=4 cycle-stepped",
            SimOptions {
                intern_traces: true,
                event_horizon: false,
                jobs: 4,
            },
        ),
    ];
    let cfg = GpuConfig::fermi();
    for bench in all_benchmarks(Scale::Tiny) {
        let launches = &bench.run.launches;
        let widest = launches
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.num_blocks)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut picks = vec![0, widest, launches.len() - 1];
        picks.sort_unstable();
        picks.dedup();
        for spec in picks.into_iter().map(|i| &launches[i]) {
            let base = simulate_launch(&bench.run.kernel, spec, &cfg, &mut NullSampling, None);
            let base_json = to_json(&base);
            for (label, opts) in modes {
                let alt = simulate_launch_with_options(
                    &bench.run.kernel,
                    spec,
                    &cfg,
                    &mut NullSampling,
                    None,
                    opts,
                );
                assert_same_json(
                    &format!("{} launch {} vs {label}", bench.name, spec.launch_id.0),
                    &base_json,
                    &to_json(&alt),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 3: seeded interner-key collision property
// ---------------------------------------------------------------------------

/// A random kernel mixing the dependence classes the key derivation has
/// to distinguish: constant, per-block, per-thread and phase-sliced trip
/// counts, plus divergent / block-uniform / lane-structured branches.
fn random_kernel(g: &mut Gen, case: u64) -> Kernel {
    // Odd thread counts produce partial trailing warps (mask variation).
    let tpb = g.u32(16, 200);
    let mut b = KernelBuilder::new(&format!("prop{case}"), g.u64(1, 1 << 20), tpb);
    let mut nodes = Vec::new();
    for _ in 0..g.usize(1, 4) {
        let body = b.block(&[Op::IAlu, Op::FAlu]);
        let site = b.fresh_site();
        let base = g.u32(1, 6);
        let spread = g.u32(0, 8);
        let trips = match g.u32(0, 4) {
            0 => TripCount::Const(base),
            1 => TripCount::PerBlock {
                base,
                spread,
                dist: Dist::Uniform,
                site,
            },
            2 => TripCount::PerThread {
                base,
                spread,
                dist: Dist::Uniform,
                site,
            },
            _ => TripCount::PerBlockPhase {
                base,
                spread,
                phase_len: g.u32(1, 6),
                dist: Dist::Uniform,
                site,
            },
        };
        let looped = b.loop_(trips, body);
        match g.u32(0, 4) {
            0 => nodes.push(looped),
            1 => {
                let cond = Cond::ThreadProb {
                    p: g.f64(0.1, 0.9),
                    site: b.fresh_site(),
                };
                nodes.push(b.if_(cond, looped, None));
            }
            2 => {
                let cond = Cond::BlockProb {
                    p: g.f64(0.1, 0.9),
                    site: b.fresh_site(),
                };
                nodes.push(b.if_(cond, looped, None));
            }
            _ => {
                let cond = Cond::LaneLt(g.u32(1, 32));
                nodes.push(b.if_(cond, looped, None));
            }
        }
    }
    let root = b.seq(nodes);
    b.finish(root)
}

/// The invariant the interner rests on: within one launch, if two
/// (block, warp) coordinates map to the same [`TraceKey`], their freshly
/// emulated traces are equal — a key collision between two *differing*
/// traces would silently corrupt the simulation. Also cross-checks that
/// the arena itself serves exactly the fresh trace at every coordinate
/// (including its block-local and bypass routes).
#[test]
fn interner_key_never_collides_differing_traces() {
    const CASES: u64 = 48;
    for case in 0..CASES {
        let mut g = Gen::new(0x9d, case);
        let kernel = random_kernel(&mut g, case);
        let num_blocks = g.u32(4, 24);
        let ctx = |block_id: u32| ExecCtx {
            kernel_seed: kernel.seed,
            launch_id: LaunchId(g_launch(case)),
            block_id,
            num_blocks,
            work_scale: 1.0,
        };
        let warps_per_block = kernel.threads_per_block.div_ceil(32);
        let mut arena = TraceArena::new(&kernel);
        let mut by_key: Vec<(TraceKey, Vec<tbpoint::emu::TraceInst>, u32, u32)> = Vec::new();
        // Visit blocks in dispatch order (the arena's block-local cache
        // assumes back-to-back warps of one block, like the simulator).
        for block_id in 0..num_blocks {
            for warp_id in 0..warps_per_block {
                let c = ctx(block_id);
                let fresh = trace_warp(&kernel, &c, warp_id);
                let interned = arena.warp_trace(&kernel, &c, warp_id);
                assert_eq!(
                    &*interned,
                    &fresh[..],
                    "case {case}: arena trace differs from fresh emulation \
                     at block {block_id} warp {warp_id}"
                );
                let key = arena.key(&kernel, &c, warp_id);
                match by_key.iter().find(|(k, ..)| *k == key) {
                    Some((_, seen, b0, w0)) => assert_eq!(
                        seen, &fresh,
                        "case {case}: key collision — block {block_id} warp {warp_id} \
                         and block {b0} warp {w0} share a key but trace differently"
                    ),
                    None => by_key.push((key, fresh, block_id, warp_id)),
                }
            }
        }
    }
}

/// Launch index for a case: varied so the property is not accidentally
/// proved only for launch 0, deterministic so failures reproduce.
fn g_launch(case: u64) -> u32 {
    (case % 5) as u32
}

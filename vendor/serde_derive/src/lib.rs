//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (value-tree based, see `vendor/serde`) for plain **non-generic**
//! structs, tuple structs and enums — the only shapes the TBPoint workspace
//! uses. Parsing is done directly over `proc_macro::TokenStream` because the
//! build environment has no crates.io access for `syn`/`quote`.
//!
//! Unsupported shapes (generics, unions, `#[serde(...)]` attributes) produce
//! a `compile_error!` rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The parsed shape of the deriving type.
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — number of fields.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            let escaped = msg.replace('"', "\\\"");
            return format!("compile_error!(\"{escaped}\");")
                .parse()
                .unwrap_or_default();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&name, &shape),
        Mode::Deserialize => gen_deserialize(&name, &shape),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(_) => format!("compile_error!(\"serde_derive: internal codegen error for `{name}`\");")
            .parse()
            .unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<(String, Shape), String> {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracketed attribute body.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive: generic type `{name}` is not supported by the vendored serde"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Named(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::Tuple(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::Unit)),
            other => Err(format!(
                "serde_derive: unsupported struct body for `{name}`: {other:?}"
            )),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!(
                "serde_derive: unsupported enum body for `{name}`: {other:?}"
            )),
        },
        other => Err(format!("serde_derive: cannot derive for `{other}` items")),
    }
}

/// Parse `a: T, b: U, ...` returning the field names. Types are skipped by
/// consuming tokens until a comma at angle-bracket depth zero.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde_derive: expected `:` after `{name}`, got {other:?}"
                ))
            }
        }
        skip_type(&mut toks);
        fields.push(name);
    }
    Ok(fields)
}

/// Consume a type, stopping after the comma that terminates it (or at the
/// end of the stream). Tracks `<`/`>` depth so commas inside generic
/// arguments don't end the field early.
fn skip_type(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Count the fields of a tuple struct/variant body (`T, U, ...`).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut toks = body.into_iter().peekable();
    let mut count = 0;
    loop {
        if toks.peek().is_none() {
            break;
        }
        // Skip attributes and visibility on the field, then the type.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        if toks.peek().is_none() {
            break;
        }
        skip_type(&mut toks);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde_derive: expected variant name, got {other:?}"
                ))
            }
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                toks.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = toks.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    toks.next();
                    break;
                }
                _ => {}
            }
            toks.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Obj(vec![{}])", pairs.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Value::Obj(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
        }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                .collect();
            format!(
                "let obj = v.as_obj().ok_or_else(|| ::serde::Error::msg(\
                     format!(\"expected object for {name}, found {{}}\", v.kind())))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_arr().ok_or_else(|| ::serde::Error::msg(\
                     format!(\"expected array for {name}, found {{}}\", v.kind())))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::Error::msg(format!(\
                         \"expected {n} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{\n\
                                 let items = inner.as_arr().ok_or_else(|| ::serde::Error::msg(\
                                     \"expected array for variant {vn}\"))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::Error::msg(\
                                         \"wrong arity for variant {vn}\"));\n\
                                 }}\n\
                                 Ok({name}::{vn}({}))\n\
                             }}",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{\n\
                                 let obj = inner.as_obj().ok_or_else(|| ::serde::Error::msg(\
                                     \"expected object for variant {vn}\"))?;\n\
                                 Ok({name}::{vn} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::Error::msg(format!(\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }},",
                    unit_arms.join("\n")
                )
            };
            let data_match = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }},",
                    data_arms.join("\n")
                )
            };
            format!(
                "match v {{\n\
                     {unit_match}\n\
                     {data_match}\n\
                     other => Err(::serde::Error::msg(format!(\
                         \"expected variant of {name}, found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                {body}\n\
            }}\n\
        }}"
    )
}

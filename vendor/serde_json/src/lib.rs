//! Offline stand-in for the `serde_json` crate.
//!
//! JSON text printing and parsing over the vendored `serde` value tree
//! (see `vendor/serde`). Supports the workspace's usage: `to_string`,
//! `to_string_into`, `to_string_pretty`, `to_vec`, `from_str`,
//! `from_slice`.
//!
//! Output is deterministic: object keys keep struct-field order and floats
//! print via Rust's shortest-round-trip formatting, so equal values always
//! produce byte-identical JSON.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value as compact JSON appended to `out`, reusing the
/// caller's buffer instead of allocating a fresh `String` per value.
/// Hot serialization loops (e.g. JSON-lines sinks) call this with one
/// long-lived, pre-sized buffer. Produces byte-identical text to
/// [`to_string`].
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    write_value(out, &value.to_value(), None, 0);
    Ok(())
}

/// Serialize a value to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&itoa(*n)),
        Value::I64(n) => {
            if *n < 0 {
                out.push('-');
                out.push_str(&itoa(n.unsigned_abs()));
            } else {
                out.push_str(&itoa(*n as u64));
            }
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_str(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn itoa(n: u64) -> String {
    n.to_string()
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity literal; mirror JavaScript and emit null.
        out.push_str("null");
        return;
    }
    let formatted = format!("{x}");
    out.push_str(&formatted);
    // Keep floats distinguishable from integers on re-parse so a f64 value
    // round-trips through Value::F64, not Value::U64.
    if !formatted.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid UTF-8 in number: {e}")))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if n == 0 {
                        return Ok(Value::U64(0));
                    }
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::I64(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("malformed number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(parse("42").expect("u64"), Value::U64(42));
        assert_eq!(parse("-7").expect("i64"), Value::I64(-7));
        assert_eq!(parse("1.5").expect("f64"), Value::F64(1.5));
        assert_eq!(parse("\"a\\nb\"").expect("str"), Value::Str("a\nb".into()));
        assert_eq!(parse("true").expect("bool"), Value::Bool(true));
        assert_eq!(parse("null").expect("null"), Value::Null);
    }

    #[test]
    fn to_string_into_appends_identically() {
        let v = Value::Obj(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Str("x\"y".into())),
        ]);
        let mut buf = String::from("prefix:");
        to_string_into(&v, &mut buf).expect("serialize");
        let direct = to_string(&v).expect("serialize");
        assert_eq!(buf, format!("prefix:{direct}"));
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        let text = to_string(&big).expect("serialize");
        let back: u64 = from_str(&text).expect("parse");
        assert_eq!(back, big);
    }

    #[test]
    fn float_stays_float() {
        let text = to_string(&1.0f64).expect("serialize");
        assert_eq!(text, "1.0");
        let back: f64 = from_str(&text).expect("parse");
        assert_eq!(back.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn nested_pretty_print() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::U64(1), Value::U64(2)])),
            ("b".into(), Value::Str("x".into())),
        ]);
        let pretty = to_string_pretty(&v).expect("pretty");
        let reparsed = parse(&pretty).expect("reparse");
        assert_eq!(reparsed, v);
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal value-tree serialization framework under the same
//! package name. It supports exactly the subset the TBPoint workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain (non-generic)
//! structs, tuple structs and enums, driven through `serde_json`'s
//! `to_string`/`from_str`-style entry points.
//!
//! Unlike real serde there is no zero-copy visitor machinery: `Serialize`
//! lowers a value to a [`Value`] tree and `Deserialize` rebuilds it from
//! one. That is entirely sufficient for the workspace's profile/result
//! persistence, and it keeps the vendored code small and auditable.
//!
//! Determinism note: object keys keep their insertion order (struct field
//! order), so serializing the same value twice yields byte-identical
//! output — a property the workspace's reproducibility tests rely on.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Integers are kept in dedicated `U64`/`I64` arms (not lossy `f64`) so
/// 64-bit cycle counters survive a serialize/deserialize round trip
/// bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (preserves full u64 precision).
    U64(u64),
    /// Negative integer (preserves full i64 precision).
    I64(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; pairs keep insertion order for reproducible output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, if this value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message, optionally wrapped by
/// `serde_json` with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lower `self` to a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a struct field in an object and deserialize it (derive helper).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(|_| {
                        Error::msg(format!("integer {n} out of range for i64"))
                    })?,
                    ref other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = i64::from_value(v)?;
        isize::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range for isize")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            // Non-finite floats serialize as null (JSON has no NaN literal);
            // accept the round trip back as NaN.
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::msg(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_arr()
            .ok_or_else(|| Error::msg(format!("expected array, found {}", v.kind())))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_arr().ok_or_else(|| {
                    Error::msg(format!("expected tuple array, found {}", v.kind()))
                })?;
                let expect = [$($n),+].len();
                if items.len() != expect {
                    return Err(Error::msg(format!(
                        "expected tuple of length {expect}, found {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: fmt::Display,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| Error::msg(format!("expected object, found {}", v.kind())))?;
        obj.iter()
            .map(|(k, v)| {
                let key = k
                    .parse()
                    .map_err(|_| Error::msg(format!("bad map key `{k}`")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API subset the workspace benches use — benchmark
//! groups, `bench_with_input`/`bench_function`, `BenchmarkId`,
//! `Throughput::Elements`, `black_box`, `criterion_group!`/
//! `criterion_main!` — over a plain wall-clock harness: a short warm-up,
//! then `sample_size` timed samples, reporting min/median/mean per bench.
//!
//! It has none of real criterion's statistics (no outlier analysis, no
//! HTML reports), but it keeps every bench target compiling and runnable
//! in an environment without crates.io access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (recorded for display parity; the stand-in prints
/// elements/second for `Elements`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Record the per-iteration throughput of subsequent benches.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Finish the group (prints nothing extra in the stand-in).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time the routine: one untimed warm-up call, then `sample_size`
    /// timed calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{label:<50} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            self.samples.len()
        );
    }
}

/// Bundle benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Tamper-evident JSON-lines: a checksummed trailer over the raw text.
//!
//! The lenient [`crate::TraceBundle::from_jsonl`] parser has a structural
//! blind spot: JSON-lines truncated exactly at a newline boundary parse
//! as a *valid, shorter* bundle, and a bit flip inside a numeric literal
//! can yield different-but-well-formed JSON. Both corruptions pass
//! undetected through any purely syntactic parser.
//!
//! [`seal`] closes the gap by appending one trailer line carrying the
//! non-empty line count and an FNV-1a-64 checksum of every preceding
//! byte. [`verify`] refuses text whose trailer is missing, whose line
//! count disagrees, or whose checksum does not match — so *any* byte
//! damage (truncation, bit flip, record splice, reordering) surfaces as
//! a [`TraceError`] instead of silently dropped or altered records.
//!
//! The trailer is itself a JSON line (`{"trailer":{...}}`), so sealed
//! text remains line-oriented and greppable; the checksum is rendered as
//! fixed-width hex to stay byte-stable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`. Deterministic, dependency-free, and
/// fast enough to checksum multi-megabyte traces; used for trace
/// trailers here and for artifact manifests in the CLI sweep runner.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why sealed text failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The text has no parseable trailer line (missing, truncated, or
    /// corrupted beyond recognition).
    MissingTrailer,
    /// The trailer parsed but its checksum disagrees with the body.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: String,
        /// Checksum recomputed over the received body.
        actual: String,
    },
    /// The trailer parsed but its line count disagrees with the body.
    LineCountMismatch {
        /// Line count recorded in the trailer.
        expected: u64,
        /// Non-empty lines actually present in the body.
        actual: u64,
    },
    /// The body verified but failed to parse as trace records.
    Parse(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MissingTrailer => {
                write!(f, "sealed trace has no integrity trailer (truncated?)")
            }
            TraceError::ChecksumMismatch { expected, actual } => write!(
                f,
                "trace checksum mismatch: trailer says {expected}, body hashes to {actual}"
            ),
            TraceError::LineCountMismatch { expected, actual } => write!(
                f,
                "trace line count mismatch: trailer says {expected}, body has {actual}"
            ),
            TraceError::Parse(msg) => write!(f, "sealed trace body failed to parse: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// The trailer payload.
#[derive(Serialize, Deserialize)]
struct Trailer {
    /// Non-empty body lines preceding the trailer.
    lines: u64,
    /// FNV-1a-64 of every body byte, as 16 hex digits.
    fnv64: String,
}

/// Wrapper giving the trailer its `{"trailer":...}` line shape, which no
/// event/counter/gauge line can collide with.
#[derive(Serialize, Deserialize)]
struct TrailerLine {
    trailer: Trailer,
}

fn count_lines(body: &str) -> u64 {
    body.lines().filter(|l| !l.trim().is_empty()).count() as u64
}

/// Append an integrity trailer line to JSON-lines `body` (which may be
/// empty). The result ends with a newline.
pub fn seal(body: &str) -> String {
    let trailer = TrailerLine {
        trailer: Trailer {
            lines: count_lines(body),
            fnv64: format!("{:016x}", fnv1a64(body.as_bytes())),
        },
    };
    let mut out = String::with_capacity(body.len() + 64);
    out.push_str(body);
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    // The trailer types contain only u64 and String, which the vendored
    // serde_json always serialises; an empty line would fail verification
    // downstream rather than pass silently.
    out.push_str(&serde_json::to_string(&trailer).unwrap_or_default());
    out.push('\n');
    out
}

/// Verify text produced by [`seal`], returning the body slice (without
/// the trailer line) on success.
///
/// # Errors
///
/// [`TraceError::MissingTrailer`] when the last non-empty line is not a
/// trailer; [`TraceError::LineCountMismatch`] /
/// [`TraceError::ChecksumMismatch`] when the body disagrees with it.
pub fn verify(text: &str) -> Result<&str, TraceError> {
    // Locate the last non-empty line and where it starts.
    let trimmed = text.trim_end_matches(['\n', '\r']);
    if trimmed.is_empty() {
        return Err(TraceError::MissingTrailer);
    }
    let start = trimmed.rfind('\n').map_or(0, |i| i + 1);
    let last = &trimmed[start..];
    let parsed: TrailerLine = serde_json::from_str(last).map_err(|_| TraceError::MissingTrailer)?;
    let body = &text[..start];
    let actual_lines = count_lines(body);
    if actual_lines != parsed.trailer.lines {
        return Err(TraceError::LineCountMismatch {
            expected: parsed.trailer.lines,
            actual: actual_lines,
        });
    }
    let actual_fnv = format!("{:016x}", fnv1a64(body.as_bytes()));
    if actual_fnv != parsed.trailer.fnv64 {
        return Err(TraceError::ChecksumMismatch {
            expected: parsed.trailer.fnv64,
            actual: actual_fnv,
        });
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seal_verify_round_trip() {
        for body in ["", "{\"x\":1}\n", "{\"x\":1}\n{\"y\":2}\n"] {
            let sealed = seal(body);
            assert_eq!(verify(&sealed).unwrap(), body, "body was {body:?}");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let sealed = seal("{\"x\":1}\n{\"y\":2}\n");
        // Cut at every interior byte: all must fail verification.
        for cut in 1..sealed.len() - 1 {
            assert!(
                verify(&sealed[..cut]).is_err(),
                "truncation at byte {cut} passed"
            );
        }
    }

    #[test]
    fn newline_boundary_truncation_is_detected() {
        // The exact case the lenient parser misses.
        let sealed = seal("{\"x\":1}\n{\"y\":2}\n");
        let first_line_end = sealed.find('\n').unwrap() + 1;
        assert!(verify(&sealed[..first_line_end]).is_err());
    }

    #[test]
    fn bit_flip_is_detected() {
        let sealed = seal("{\"cycle\":5,\"kind\":\"RegionExited\"}\n");
        let mut bytes = sealed.clone().into_bytes();
        // Flip a low bit of the digit '5' -> '4': still valid JSON.
        let pos = sealed.find('5').unwrap();
        bytes[pos] ^= 1;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(verify(&flipped).is_err());
    }

    #[test]
    fn unsealed_text_is_missing_trailer() {
        assert_eq!(verify("{\"x\":1}\n"), Err(TraceError::MissingTrailer));
        assert_eq!(verify(""), Err(TraceError::MissingTrailer));
    }

    #[test]
    fn errors_display_useful_messages() {
        let e = TraceError::LineCountMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("2"));
        assert!(TraceError::MissingTrailer.to_string().contains("trailer"));
    }
}

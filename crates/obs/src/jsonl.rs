//! Deterministic JSON-lines encoding of trace records.
//!
//! Three line shapes, distinguishable by their single top-level key
//! layout (the vendored `serde_json` keeps struct-field order, so the
//! encoding is byte-stable for equal values):
//!
//! - event:   `{"cycle":123,"kind":{"TbDispatched":{"tb":1,"sm":0}}}`
//! - counter: `{"counter":{"name":"l1_hit","value":42}}`
//! - gauge:   `{"gauge":{"name":"sm_resident_blocks","index":3,...}}`

use crate::event::{Counter, Event, GaugeSummary, TraceBundle};
use serde::{Deserialize, Serialize};

/// Wrapper giving counter lines their `{"counter":...}` shape.
#[derive(Serialize, Deserialize)]
struct CounterLine {
    counter: Counter,
}

/// Wrapper giving gauge lines their `{"gauge":...}` shape.
#[derive(Serialize, Deserialize)]
struct GaugeLine {
    gauge: GaugeSummary,
}

/// Rough bytes-per-line estimate used to pre-size serialization buffers.
/// A typical event line (`{"cycle":123,"kind":{"TbDispatched":{"tb":1,
/// "sm":0}}}`) runs 45–70 bytes; counter and gauge summary lines are in
/// the same range. Oversizing slightly beats regrowing a multi-megabyte
/// buffer several times.
pub(crate) const EST_LINE_BYTES: usize = 72;

/// Append one JSON line (newline included) for `value` to `out`.
///
/// The vendored `serde_json` only fails on unrepresentable values, which
/// the trace types cannot contain (non-finite floats degrade to `null`);
/// degrade to an empty line rather than panicking in a library crate.
fn push_line<T: Serialize>(out: &mut String, value: &T) {
    // On the (unreachable) error path nothing was appended and the blank
    // line keeps the stream parseable.
    serde_json::to_string_into(value, out).unwrap_or_default();
    out.push('\n');
}

/// One JSON line (no trailing newline) for an event.
pub fn event_line(ev: &Event) -> String {
    let mut out = String::with_capacity(EST_LINE_BYTES);
    serde_json::to_string_into(ev, &mut out).unwrap_or_default();
    out
}

/// Append an event line (newline included) to `out`.
pub(crate) fn push_event_line(out: &mut String, ev: &Event) {
    push_line(out, ev);
}

/// Append a counter summary line (newline included) to `out`.
pub(crate) fn push_counter_line(out: &mut String, c: &Counter) {
    push_line(out, &CounterLine { counter: c.clone() });
}

/// Append a gauge summary line (newline included) to `out`.
pub(crate) fn push_gauge_line(out: &mut String, g: &GaugeSummary) {
    push_line(out, &GaugeLine { gauge: g.clone() })
}

/// Parse a single event line produced by [`event_line`].
pub fn parse_event(text: &str) -> Result<Event, serde_json::Error> {
    serde_json::from_str(text)
}

/// Parse a full JSON-lines trace back into a [`TraceBundle`].
pub(crate) fn parse_bundle(text: &str) -> Result<TraceBundle, serde_json::Error> {
    let mut bundle = TraceBundle::default();
    for raw in text.lines() {
        let ln = raw.trim();
        if ln.is_empty() {
            continue;
        }
        // Counter/gauge wrappers have a unique top-level key, so probing
        // them first cannot misparse an event line (whose top-level keys
        // are `cycle`/`kind`).
        if let Ok(c) = serde_json::from_str::<CounterLine>(ln) {
            bundle.counters.push(c.counter);
        } else if let Ok(g) = serde_json::from_str::<GaugeLine>(ln) {
            bundle.gauges.push(g.gauge);
        } else {
            bundle.events.push(serde_json::from_str::<Event>(ln)?);
        }
    }
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Span};

    #[test]
    fn event_lines_round_trip() {
        let evs = [
            Event {
                cycle: 0,
                kind: EventKind::SpanStart {
                    span: Span::ProfileLaunch { launch: 7 },
                },
            },
            Event {
                cycle: 12,
                kind: EventKind::DramAccess {
                    sm: 3,
                    row_hit: true,
                },
            },
            Event {
                cycle: 99,
                kind: EventKind::UnitClosed { ipc: 1.625 },
            },
            Event {
                cycle: 100,
                kind: EventKind::RegionExited,
            },
        ];
        for ev in evs {
            let ln = event_line(&ev);
            assert_eq!(parse_event(&ln).unwrap(), ev, "line was: {ln}");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let ev = Event {
            cycle: 5,
            kind: EventKind::MshrStall { sm: 1, cycles: 40 },
        };
        assert_eq!(event_line(&ev), event_line(&ev.clone()));
        assert_eq!(
            event_line(&ev),
            "{\"cycle\":5,\"kind\":{\"MshrStall\":{\"sm\":1,\"cycles\":40}}}"
        );
    }

    #[test]
    fn bundle_round_trips_through_jsonl() {
        let bundle = TraceBundle {
            events: vec![
                Event {
                    cycle: 1,
                    kind: EventKind::TbDispatched { tb: 0, sm: 0 },
                },
                Event {
                    cycle: 8,
                    kind: EventKind::TbRetired { tb: 0, sm: 0 },
                },
            ],
            counters: vec![Counter {
                name: "l1_hit".into(),
                value: 2,
            }],
            gauges: vec![GaugeSummary {
                name: "sm_resident_blocks".into(),
                index: 0,
                last: 0,
                max: 1,
                samples: 2,
            }],
        };
        let text = bundle.to_jsonl();
        assert_eq!(TraceBundle::from_jsonl(&text).unwrap(), bundle);
    }

    #[test]
    fn garbage_lines_are_an_error() {
        assert!(TraceBundle::from_jsonl("{\"nope\":1}\n").is_err());
    }
}

//! Deterministic JSON-lines encoding of trace records.
//!
//! Three line shapes, distinguishable by their single top-level key
//! layout (the vendored `serde_json` keeps struct-field order, so the
//! encoding is byte-stable for equal values):
//!
//! - event:   `{"cycle":123,"kind":{"TbDispatched":{"tb":1,"sm":0}}}`
//! - counter: `{"counter":{"name":"l1_hit","value":42}}`
//! - gauge:   `{"gauge":{"name":"sm_resident_blocks","index":3,...}}`

use crate::event::{Counter, Event, GaugeSummary, TraceBundle};
use serde::{Deserialize, Serialize};

/// Wrapper giving counter lines their `{"counter":...}` shape.
#[derive(Serialize, Deserialize)]
struct CounterLine {
    counter: Counter,
}

/// Wrapper giving gauge lines their `{"gauge":...}` shape.
#[derive(Serialize, Deserialize)]
struct GaugeLine {
    gauge: GaugeSummary,
}

/// The vendored `serde_json` only fails on unrepresentable values, which
/// the trace types cannot contain (non-finite floats degrade to `null`);
/// degrade to an empty line rather than panicking in a library crate.
fn line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_default()
}

/// One JSON line (no trailing newline) for an event.
pub fn event_line(ev: &Event) -> String {
    line(ev)
}

/// One JSON line for a counter summary.
pub(crate) fn counter_line(c: &Counter) -> String {
    line(&CounterLine { counter: c.clone() })
}

/// One JSON line for a gauge summary.
pub(crate) fn gauge_line(g: &GaugeSummary) -> String {
    line(&GaugeLine { gauge: g.clone() })
}

/// Parse a single event line produced by [`event_line`].
pub fn parse_event(text: &str) -> Result<Event, serde_json::Error> {
    serde_json::from_str(text)
}

/// Parse a full JSON-lines trace back into a [`TraceBundle`].
pub(crate) fn parse_bundle(text: &str) -> Result<TraceBundle, serde_json::Error> {
    let mut bundle = TraceBundle::default();
    for raw in text.lines() {
        let ln = raw.trim();
        if ln.is_empty() {
            continue;
        }
        // Counter/gauge wrappers have a unique top-level key, so probing
        // them first cannot misparse an event line (whose top-level keys
        // are `cycle`/`kind`).
        if let Ok(c) = serde_json::from_str::<CounterLine>(ln) {
            bundle.counters.push(c.counter);
        } else if let Ok(g) = serde_json::from_str::<GaugeLine>(ln) {
            bundle.gauges.push(g.gauge);
        } else {
            bundle.events.push(serde_json::from_str::<Event>(ln)?);
        }
    }
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Span};

    #[test]
    fn event_lines_round_trip() {
        let evs = [
            Event {
                cycle: 0,
                kind: EventKind::SpanStart {
                    span: Span::ProfileLaunch { launch: 7 },
                },
            },
            Event {
                cycle: 12,
                kind: EventKind::DramAccess {
                    sm: 3,
                    row_hit: true,
                },
            },
            Event {
                cycle: 99,
                kind: EventKind::UnitClosed { ipc: 1.625 },
            },
            Event {
                cycle: 100,
                kind: EventKind::RegionExited,
            },
        ];
        for ev in evs {
            let ln = event_line(&ev);
            assert_eq!(parse_event(&ln).unwrap(), ev, "line was: {ln}");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let ev = Event {
            cycle: 5,
            kind: EventKind::MshrStall { sm: 1, cycles: 40 },
        };
        assert_eq!(event_line(&ev), event_line(&ev.clone()));
        assert_eq!(
            event_line(&ev),
            "{\"cycle\":5,\"kind\":{\"MshrStall\":{\"sm\":1,\"cycles\":40}}}"
        );
    }

    #[test]
    fn bundle_round_trips_through_jsonl() {
        let bundle = TraceBundle {
            events: vec![
                Event {
                    cycle: 1,
                    kind: EventKind::TbDispatched { tb: 0, sm: 0 },
                },
                Event {
                    cycle: 8,
                    kind: EventKind::TbRetired { tb: 0, sm: 0 },
                },
            ],
            counters: vec![Counter {
                name: "l1_hit".into(),
                value: 2,
            }],
            gauges: vec![GaugeSummary {
                name: "sm_resident_blocks".into(),
                index: 0,
                last: 0,
                max: 1,
                samples: 2,
            }],
        };
        let text = bundle.to_jsonl();
        assert_eq!(TraceBundle::from_jsonl(&text).unwrap(), bundle);
    }

    #[test]
    fn garbage_lines_are_an_error() {
        assert!(TraceBundle::from_jsonl("{\"nope\":1}\n").is_err());
    }
}

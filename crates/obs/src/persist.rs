//! Crash-safe artifact persistence: atomic tmp+fsync+rename writes.
//!
//! Every durable artifact in the workspace — sweep unit files, sealed
//! manifests, serve cache entries, bench baselines — goes through
//! [`write_atomic`]. The protocol:
//!
//! 1. create the parent directory;
//! 2. write a hidden `.<name>.tmp` sibling and `fsync` it;
//! 3. atomically `rename` it over the destination;
//! 4. `fsync` the **parent directory**, so the rename itself (a
//!    directory-entry update) is durable — without step 4 a power loss
//!    after the rename can still roll the directory back to the old
//!    entry, or to no entry at all for a fresh file.
//!
//! A crash between steps 2 and 3 leaves a stale `.<name>.tmp` behind.
//! Readers must never parse those: [`is_stale_tmp`] identifies them and
//! [`clean_stale_tmps`] sweeps a directory on startup (the serve cache
//! and the sweep resume loader both do).

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The hidden sibling [`write_atomic`] stages into: `.<name>.tmp`.
fn tmp_sibling(path: &Path, name: &std::ffi::OsStr) -> PathBuf {
    path.with_file_name(format!(".{}.tmp", name.to_string_lossy()))
}

/// Flush a directory's entry table to disk. Directory fds are a
/// unix-ism; elsewhere the rename is as durable as the platform makes
/// it.
#[cfg(unix)]
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> std::io::Result<()> {
    Ok(())
}

/// Write bytes crash-safely: create the parent, write a hidden
/// `.<name>.tmp` sibling, fsync it, atomically rename it over the
/// destination, then fsync the parent directory so the rename is
/// durable. A crash at any point leaves either the old file or the new
/// file — never a torn artifact — plus possibly a stale `.tmp` sibling,
/// which readers ignore (see [`is_stale_tmp`]).
///
/// # Errors
///
/// Any I/O error from the steps above; a path with no file name is
/// rejected.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let Some(name) = path.file_name() else {
        return Err(std::io::Error::other(format!(
            "cannot write {}: path has no file name",
            path.display()
        )));
    };
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            std::fs::create_dir_all(p)?;
            Some(p)
        }
        _ => None,
    };
    let tmp = tmp_sibling(path, name);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = parent {
        sync_dir(parent)?;
    }
    Ok(())
}

/// Whether a file name is a staging sibling left by an interrupted
/// [`write_atomic`] (hidden, `.tmp`-suffixed). Readers that scan a
/// directory must skip these — they are possibly-torn bytes that were
/// never committed.
pub fn is_stale_tmp(name: &str) -> bool {
    name.starts_with('.') && name.ends_with(".tmp")
}

/// Remove stale [`write_atomic`] staging files from `dir`, returning
/// the removed paths (sorted, for deterministic reporting). Call on
/// startup before trusting a directory of durable artifacts. A missing
/// directory cleans nothing.
///
/// # Errors
///
/// I/O errors from listing or removing, except `NotFound` on the
/// directory itself.
pub fn clean_stale_tmps(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut removed = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        if is_stale_tmp(&name.to_string_lossy()) && entry.file_type()?.is_file() {
            std::fs::remove_file(entry.path())?;
            removed.push(entry.path());
        }
    }
    removed.sort();
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Fresh scratch directory per test (std-only; no tempfile crate).
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tbpoint_persist_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn writes_and_replaces_without_leftovers() {
        let dir = scratch("basic");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"{\"v\":1}").expect("first write");
        write_atomic(&path, b"{\"v\":2}").expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("read back"), b"{\"v\":2}");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("list")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["artifact.json"], "no staging files remain");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_parents() {
        let dir = scratch("parents");
        let path = dir.join("a/b/c.txt");
        write_atomic(&path, b"deep").expect("write with missing parents");
        assert_eq!(std::fs::read(&path).expect("read back"), b"deep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_from_pre_rename_crash_is_cleaned_not_parsed() {
        // Simulate a crash between the tmp fsync and the rename: the
        // destination never appeared, only the hidden staging sibling —
        // holding torn bytes that must never be read as an artifact.
        let dir = scratch("crash");
        let stale = dir.join(".entry.json.tmp");
        std::fs::write(&stale, b"{\"torn\":").expect("plant stale tmp");

        assert!(is_stale_tmp(".entry.json.tmp"));
        assert!(!is_stale_tmp("entry.json"));
        assert!(!is_stale_tmp(".hidden-but-not-tmp"));
        assert!(!is_stale_tmp("archive.tmp")); // not our hidden staging shape

        let removed = clean_stale_tmps(&dir).expect("clean");
        assert_eq!(removed, vec![stale.clone()]);
        assert!(!stale.exists(), "stale tmp swept");
        assert!(
            !dir.join("entry.json").exists(),
            "never promoted to artifact"
        );

        // Idempotent, and a missing dir is fine.
        assert!(clean_stale_tmps(&dir).expect("re-clean").is_empty());
        assert!(clean_stale_tmps(&dir.join("nope"))
            .expect("missing dir")
            .is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_spares_real_artifacts() {
        let dir = scratch("spare");
        write_atomic(&dir.join("keep.json"), b"{}").expect("write artifact");
        std::fs::write(dir.join(".gone.json.tmp"), b"x").expect("plant stale tmp");
        let removed = clean_stale_tmps(&dir).expect("clean");
        assert_eq!(removed.len(), 1);
        assert!(dir.join("keep.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_path_without_file_name() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}

//! Event vocabulary shared by every instrumented layer.
//!
//! Events are plain `Copy` data — constructing one never allocates, so
//! call sites can build the payload unconditionally and let a
//! `NullRecorder` discard it for free. Anything that would be expensive
//! to gather is guarded by `Recorder::enabled` at the call site instead.

use serde::{Deserialize, Serialize};

/// A paired region of work, opened by [`EventKind::SpanStart`] and closed
/// by [`EventKind::SpanEnd`] carrying the same payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Span {
    /// Functional profiling of one launch (`tbpoint-emu`). Profiling has
    /// no simulated clock, so these events carry cycle 0.
    ProfileLaunch {
        /// Launch index within the run.
        launch: u32,
    },
    /// Cycle-level simulation of one representative launch
    /// (`tbpoint-core`). `SpanEnd` is stamped with the final cycle.
    SimulateLaunch {
        /// Launch index within the run.
        launch: u32,
    },
}

/// What happened. Variant names double as the "kind" label in the CLI
/// trace summary (`EventKind::name`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opened.
    SpanStart {
        /// The span being opened.
        span: Span,
    },
    /// A span closed.
    SpanEnd {
        /// The span being closed.
        span: Span,
    },

    // --- dispatcher / cycle loop (tbpoint-sim) ---
    /// A thread block became resident on an SM.
    TbDispatched {
        /// Flat thread-block id.
        tb: u32,
        /// SM index it landed on.
        sm: u32,
    },
    /// The sampling hook told the dispatcher to skip this block.
    TbSkipped {
        /// Flat thread-block id.
        tb: u32,
    },
    /// A resident thread block retired.
    TbRetired {
        /// Flat thread-block id.
        tb: u32,
        /// SM index it retired from.
        sm: u32,
    },
    /// The cycle loop found nothing issueable and jumped forward.
    IdleJump {
        /// Cycles skipped in one jump.
        cycles: u64,
    },

    // --- memory system (tbpoint-sim) ---
    /// A load missed L1 and waited for a miss-status register to free up.
    MshrStall {
        /// SM whose load stalled.
        sm: u32,
        /// Cycles the request waited before it could even issue.
        cycles: u64,
    },
    /// An access reached DRAM (L2 miss).
    DramAccess {
        /// SM that originated the access.
        sm: u32,
        /// Whether it hit an open row buffer.
        row_hit: bool,
    },

    // --- region sampler (tbpoint-core) ---
    /// The sampler crossed into a new homogeneous region and started
    /// warming.
    RegionEntered {
        /// Region index.
        region: u32,
    },
    /// The sampler left the launch (all blocks dispatched).
    RegionExited,
    /// A warming unit closed with the given observed IPC.
    UnitClosed {
        /// IPC over the closed unit.
        ipc: f64,
    },
    /// Warming converged; subsequent blocks in the region fast-forward.
    FastForwardStarted {
        /// Region index.
        region: u32,
        /// The stabilised IPC used to extrapolate the region.
        ipc: f64,
    },
    /// A block was skipped (fast-forwarded) instead of simulated.
    BlockSkipped {
        /// Flat thread-block id.
        tb: u32,
        /// Warp instructions the block would have issued.
        warp_insts: u64,
    },

    // --- live single-pass sampler (tbpoint-core) ---
    /// The online detector completed an epoch of retired blocks and
    /// assigned it to a behaviour cluster.
    LiveEpochDetected {
        /// Epoch index within the launch.
        epoch: u32,
        /// Cluster the epoch's mean stall probability landed in.
        cluster: u32,
    },
    /// A cluster's warming converged during the single pass; subsequent
    /// blocks of the cluster fast-forward at the given IPC.
    LiveFastForward {
        /// Cluster index.
        cluster: u32,
        /// The stabilised IPC used to extrapolate skipped blocks.
        ipc: f64,
    },
    /// A guard block's statistics deviated from its cluster's running
    /// representative: fast-forwarding stopped and the sampler fell back
    /// to detailed simulation.
    LiveDestabilised {
        /// Cluster index that destabilised.
        cluster: u32,
    },

    // --- resilience (tbpoint-core) ---
    /// The pipeline fell back to detailed simulation instead of
    /// fast-forwarding on untrustworthy data.
    DegradedMode {
        /// What triggered the fallback.
        reason: DegradeReason,
    },

    // --- execution planning (tbpoint-pool) ---
    /// A parallelism axis was adjusted while resolving the execution
    /// plan: the requested worker count was zero or unparseable, so the
    /// axis fell back to serial. This is the single structured
    /// replacement for the ad-hoc clamp warnings the CLI used to print
    /// as free-form stderr text.
    ExecPlanAdjusted {
        /// Which parallelism axis was adjusted.
        axis: PlanAxis,
        /// The requested worker count (0 when the request did not parse
        /// as a number at all).
        requested: u64,
        /// The worker count actually used.
        used: u64,
    },

    // --- request service (tbpoint-serve) ---
    // Requests are identified by their arrival sequence number (`seq`),
    // not their caller-chosen id string: event payloads stay `Copy`.
    /// A request passed admission control and was queued for execution.
    RequestAdmitted {
        /// Arrival sequence number within the service run.
        seq: u64,
    },
    /// A request was load-shed at admission (bounded queue full). The
    /// caller still gets a structured `rejected` response — rejection
    /// is never a silent drop.
    RequestRejected {
        /// Arrival sequence number within the service run.
        seq: u64,
    },
    /// A request's unit failed transiently (worker panic contained by
    /// the pool) and was re-run under the deterministic retry policy.
    RequestRetried {
        /// Arrival sequence number within the service run.
        seq: u64,
        /// Which re-attempt this is (1 = first retry).
        attempt: u32,
    },
    /// A request exceeded its cycle budget and was answered with a
    /// structured deadline error instead of a result.
    DeadlineExceeded {
        /// Arrival sequence number within the service run.
        seq: u64,
    },
    /// A request was answered from the content-addressed result cache.
    CacheHit {
        /// Arrival sequence number within the service run.
        seq: u64,
    },
    /// A cache entry failed its checksum re-verification on read and
    /// was quarantined (renamed aside) before recomputation — corrupt
    /// bytes are never deserialized into a response.
    CacheQuarantined {
        /// Arrival sequence number within the service run.
        seq: u64,
    },
}

/// One parallelism axis of the two-axis execution plan (payload of
/// [`EventKind::ExecPlanAdjusted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanAxis {
    /// Intra-launch SM sharding (`--jobs` / `TBPOINT_JOBS`).
    SimJobs,
    /// Cross-launch pool workers (`--pool-workers` /
    /// `TBPOINT_POOL_WORKERS`).
    PoolWorkers,
}

/// Why the pipeline degraded to detailed simulation (payload of
/// [`EventKind::DegradedMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// A representative launch's profile failed validation (wrong block
    /// count, misnumbered blocks, or non-finite features): the launch is
    /// simulated in full and its IPC taken from the simulator, not the
    /// profile.
    ProfileInvalid,
    /// A region's per-unit IPC failed to stabilise within the configured
    /// warming budget: the region is abandoned and its remaining blocks
    /// simulated in detail.
    WarmingBudgetExceeded {
        /// The abandoned region's index.
        region: u32,
    },
}

impl EventKind {
    /// Stable label for summaries ("events by kind").
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SpanStart { .. } => "SpanStart",
            EventKind::SpanEnd { .. } => "SpanEnd",
            EventKind::TbDispatched { .. } => "TbDispatched",
            EventKind::TbSkipped { .. } => "TbSkipped",
            EventKind::TbRetired { .. } => "TbRetired",
            EventKind::IdleJump { .. } => "IdleJump",
            EventKind::MshrStall { .. } => "MshrStall",
            EventKind::DramAccess { .. } => "DramAccess",
            EventKind::RegionEntered { .. } => "RegionEntered",
            EventKind::RegionExited => "RegionExited",
            EventKind::UnitClosed { .. } => "UnitClosed",
            EventKind::FastForwardStarted { .. } => "FastForwardStarted",
            EventKind::BlockSkipped { .. } => "BlockSkipped",
            EventKind::LiveEpochDetected { .. } => "LiveEpochDetected",
            EventKind::LiveFastForward { .. } => "LiveFastForward",
            EventKind::LiveDestabilised { .. } => "LiveDestabilised",
            EventKind::DegradedMode { .. } => "DegradedMode",
            EventKind::ExecPlanAdjusted { .. } => "ExecPlanAdjusted",
            EventKind::RequestAdmitted { .. } => "RequestAdmitted",
            EventKind::RequestRejected { .. } => "RequestRejected",
            EventKind::RequestRetried { .. } => "RequestRetried",
            EventKind::DeadlineExceeded { .. } => "DeadlineExceeded",
            EventKind::CacheHit { .. } => "CacheHit",
            EventKind::CacheQuarantined { .. } => "CacheQuarantined",
        }
    }
}

/// A cycle-stamped event. `cycle` is the simulated cycle when the layer
/// has a clock (the simulator and sampler) and 0 where it does not
/// (functional profiling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Final value of one named monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    /// Counter name (e.g. `l1_hit`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Summary of one indexed gauge (e.g. resident blocks on SM 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSummary {
    /// Gauge name (e.g. `sm_resident_blocks`).
    pub name: String,
    /// Instance index (e.g. the SM id).
    pub index: u32,
    /// Last value set.
    pub last: u64,
    /// Maximum value observed.
    pub max: u64,
    /// Number of samples recorded.
    pub samples: u64,
}

/// Everything one recorder saw, in a serialisable, mergeable form.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Events in record order.
    pub events: Vec<Event>,
    /// Counters, name-sorted.
    pub counters: Vec<Counter>,
    /// Gauge summaries, (name, index)-sorted.
    pub gauges: Vec<GaugeSummary>,
}

impl TraceBundle {
    /// Fold `other` into `self`: events append in order, counters sum,
    /// gauges take the later `last`, the larger `max`, and sum samples.
    /// Used to merge per-launch traces into a run-level trace in a
    /// deterministic (launch-index) order.
    pub fn merge(&mut self, other: TraceBundle) {
        self.events.extend(other.events);
        for c in other.counters {
            match self.counters.binary_search_by(|p| p.name.cmp(&c.name)) {
                Ok(i) => self.counters[i].value += c.value,
                Err(i) => self.counters.insert(i, c),
            }
        }
        for g in other.gauges {
            let key = |p: &GaugeSummary| (p.name.clone(), p.index);
            match self
                .gauges
                .binary_search_by(|p| key(p).cmp(&(g.name.clone(), g.index)))
            {
                Ok(i) => {
                    let cur = &mut self.gauges[i];
                    cur.last = g.last;
                    cur.max = cur.max.max(g.max);
                    cur.samples += g.samples;
                }
                Err(i) => self.gauges.insert(i, g),
            }
        }
    }

    /// Serialise to deterministic JSON-lines text: one line per event in
    /// record order, then one per counter, then one per gauge summary.
    ///
    /// The output buffer is sized up front from the record count (big
    /// traces reach millions of events, and repeated doubling of a
    /// multi-megabyte `String` copies the whole prefix each time), and
    /// each line is serialised directly into it rather than through a
    /// per-record temporary.
    pub fn to_jsonl(&self) -> String {
        let records = self.events.len() + self.counters.len() + self.gauges.len();
        let mut out = String::with_capacity(records * crate::jsonl::EST_LINE_BYTES);
        for ev in &self.events {
            crate::jsonl::push_event_line(&mut out, ev);
        }
        for c in &self.counters {
            crate::jsonl::push_counter_line(&mut out, c);
        }
        for g in &self.gauges {
            crate::jsonl::push_gauge_line(&mut out, g);
        }
        out
    }

    /// Parse text produced by [`TraceBundle::to_jsonl`] (or by
    /// `JsonlRecorder::finish`). Unknown line shapes are an error;
    /// blank lines are skipped.
    ///
    /// This parser is *lenient*: text truncated exactly at a newline
    /// boundary parses as a valid shorter bundle, and a bit flip that
    /// stays within JSON syntax goes unnoticed. Durable artifacts should
    /// use [`TraceBundle::to_jsonl_checked`] /
    /// [`TraceBundle::from_jsonl_checked`] instead.
    pub fn from_jsonl(text: &str) -> Result<TraceBundle, serde_json::Error> {
        crate::jsonl::parse_bundle(text)
    }

    /// [`TraceBundle::to_jsonl`] followed by an integrity trailer line
    /// (non-empty line count + FNV-1a-64 checksum of the body). The
    /// sealed text is still line-oriented JSON; parse it back with
    /// [`TraceBundle::from_jsonl_checked`].
    pub fn to_jsonl_checked(&self) -> String {
        crate::integrity::seal(&self.to_jsonl())
    }

    /// Strict parse of text produced by [`TraceBundle::to_jsonl_checked`]:
    /// the trailer is required, and any byte damage to the body —
    /// truncation (even at a newline boundary), bit flips, spliced or
    /// dropped records — fails verification before parsing begins.
    ///
    /// # Errors
    ///
    /// [`crate::TraceError`] describing the first integrity violation, or
    /// wrapping the parse error when the verified body is not a trace.
    pub fn from_jsonl_checked(text: &str) -> Result<TraceBundle, crate::TraceError> {
        let body = crate::integrity::verify(text)?;
        crate::jsonl::parse_bundle(body).map_err(|e| crate::TraceError::Parse(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::RegionExited.name(), "RegionExited");
        assert_eq!(
            EventKind::TbDispatched { tb: 0, sm: 0 }.name(),
            "TbDispatched"
        );
        assert_eq!(
            EventKind::ExecPlanAdjusted {
                axis: PlanAxis::SimJobs,
                requested: 0,
                used: 1,
            }
            .name(),
            "ExecPlanAdjusted"
        );
    }

    #[test]
    fn serve_events_round_trip_through_jsonl() {
        let kinds = [
            EventKind::RequestAdmitted { seq: 7 },
            EventKind::RequestRejected { seq: 8 },
            EventKind::RequestRetried { seq: 7, attempt: 2 },
            EventKind::DeadlineExceeded { seq: 9 },
            EventKind::CacheHit { seq: 10 },
            EventKind::CacheQuarantined { seq: 11 },
        ];
        for kind in kinds {
            let ev = Event { cycle: 0, kind };
            let line = crate::jsonl::event_line(&ev);
            let back = crate::jsonl::parse_event(&line).expect("round trip");
            assert_eq!(back, ev, "{}", kind.name());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn live_events_round_trip_through_jsonl() {
        let kinds = [
            EventKind::LiveEpochDetected {
                epoch: 3,
                cluster: 1,
            },
            EventKind::LiveFastForward {
                cluster: 1,
                ipc: 12.5,
            },
            EventKind::LiveDestabilised { cluster: 1 },
        ];
        for kind in kinds {
            let ev = Event { cycle: 42, kind };
            let line = crate::jsonl::event_line(&ev);
            let back = crate::jsonl::parse_event(&line).expect("round trip");
            assert_eq!(back, ev, "{}", kind.name());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn exec_plan_adjusted_round_trips_through_jsonl() {
        let ev = Event {
            cycle: 0,
            kind: EventKind::ExecPlanAdjusted {
                axis: PlanAxis::PoolWorkers,
                requested: 0,
                used: 1,
            },
        };
        let line = crate::jsonl::event_line(&ev);
        let back = crate::jsonl::parse_event(&line).expect("round trip");
        assert_eq!(back, ev);
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = TraceBundle {
            events: vec![Event {
                cycle: 1,
                kind: EventKind::RegionEntered { region: 0 },
            }],
            counters: vec![Counter {
                name: "l1_hit".into(),
                value: 3,
            }],
            gauges: vec![GaugeSummary {
                name: "occ".into(),
                index: 0,
                last: 2,
                max: 4,
                samples: 5,
            }],
        };
        let b = TraceBundle {
            events: vec![Event {
                cycle: 2,
                kind: EventKind::RegionExited,
            }],
            counters: vec![
                Counter {
                    name: "l1_hit".into(),
                    value: 2,
                },
                Counter {
                    name: "l1_miss".into(),
                    value: 1,
                },
            ],
            gauges: vec![GaugeSummary {
                name: "occ".into(),
                index: 0,
                last: 1,
                max: 3,
                samples: 2,
            }],
        };
        a.merge(b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.counters[0].value, 5);
        assert_eq!(a.counters[1].name, "l1_miss");
        assert_eq!(a.gauges[0].last, 1);
        assert_eq!(a.gauges[0].max, 4);
        assert_eq!(a.gauges[0].samples, 7);
    }
}

//! Observability layer for the TBPoint workspace.
//!
//! The paper's evaluation hinges on understanding *why* a sampled run
//! diverges — which regions were warmed vs fast-forwarded, where IPC
//! failed to stabilise, which SMs sat behind the memory system. This
//! crate provides the plumbing every layer shares:
//!
//! - [`Recorder`]: a trait with cycle-stamped **events**, monotonic
//!   **counters**, indexed **gauges**, and paired **spans**. All methods
//!   take `&self` (implementations use interior mutability) so a single
//!   recorder can be shared by the sampler and the simulator within one
//!   launch without aliasing conflicts.
//! - [`NullRecorder`]: the default. Every method is an empty inline
//!   `&self` no-op on a zero-sized type, so when the simulator is
//!   monomorphised over it the instrumentation compiles away entirely.
//! - [`CollectingRecorder`]: in-memory collection, drained into a
//!   [`TraceBundle`].
//! - [`JsonlRecorder`]: a deterministic JSON-lines sink — each event is
//!   serialised through the vendored `serde_json` the moment it is
//!   recorded, counters and gauges are appended as summary lines by
//!   [`JsonlRecorder::finish`].
//!
//! Recording must never perturb results: recorders only *observe*, and
//! the workspace golden test asserts that a `NullRecorder` run and a
//! JSON-sink run produce bit-identical `TbpointResult`s.
//!
//! Determinism note: nothing here reads wall-clock time or any other
//! ambient state. Event order is exactly call order; counter and gauge
//! summaries are emitted in `BTreeMap` (name, index) order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod event;
mod integrity;
mod jsonl;
mod persist;
mod recorder;

pub use event::{
    Counter, DegradeReason, Event, EventKind, GaugeSummary, PlanAxis, Span, TraceBundle,
};
pub use integrity::{fnv1a64, seal, verify, TraceError};
pub use jsonl::{event_line, parse_event};
pub use persist::{clean_stale_tmps, is_stale_tmp, write_atomic};
pub use recorder::{CollectingRecorder, JsonlRecorder, NullRecorder, Recorder};

//! The `Recorder` trait and its three implementations.

use crate::event::{Counter, Event, EventKind, GaugeSummary, Span, TraceBundle};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Observation sink threaded through the simulator, profiler and
/// sampler.
///
/// Methods take `&self` so one recorder can be shared by several
/// components of a single launch (the sampler holds it while the
/// simulator drives it); implementations use interior mutability.
/// Recorders observe only — a correct implementation never influences
/// the computation it watches, and the workspace golden test checks
/// that swapping recorders leaves `TbpointResult` bit-identical.
///
/// Hot paths should guard payload *gathering* with [`Recorder::enabled`];
/// building an [`EventKind`] itself is allocation-free and needs no
/// guard.
pub trait Recorder {
    /// False for [`NullRecorder`]; lets hot paths skip gathering data
    /// that exists only to be recorded.
    fn enabled(&self) -> bool;

    /// Record a cycle-stamped event.
    fn record(&self, cycle: u64, kind: EventKind);

    /// Add `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64);

    /// Set the gauge `name[index]` to `value` (e.g. resident blocks on
    /// one SM).
    fn gauge(&self, name: &'static str, index: u32, value: u64);

    /// Open a span at `cycle`.
    fn span_start(&self, cycle: u64, span: Span) {
        self.record(cycle, EventKind::SpanStart { span });
    }

    /// Close a span at `cycle`.
    fn span_end(&self, cycle: u64, span: Span) {
        self.record(cycle, EventKind::SpanEnd { span });
    }
}

/// The default recorder: a zero-sized type whose methods are empty
/// inline no-ops. Code monomorphised over `NullRecorder` compiles the
/// instrumentation away entirely (the `obs_overhead` bench in
/// `tbpoint-bench` keeps this honest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&self, _cycle: u64, _kind: EventKind) {}

    #[inline(always)]
    fn counter(&self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn gauge(&self, _name: &'static str, _index: u32, _value: u64) {}
}

#[derive(Debug, Default)]
struct GaugeCell {
    last: u64,
    max: u64,
    samples: u64,
}

#[derive(Debug, Default)]
struct Collected {
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<(&'static str, u32), GaugeCell>,
}

impl Collected {
    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.events.push(Event { cycle, kind });
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&mut self, name: &'static str, index: u32, value: u64) {
        let cell = self.gauges.entry((name, index)).or_default();
        cell.last = value;
        cell.max = cell.max.max(value);
        cell.samples += 1;
    }

    fn into_bundle(self) -> TraceBundle {
        TraceBundle {
            events: self.events,
            counters: self
                .counters
                .into_iter()
                .map(|(name, value)| Counter {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .into_iter()
                .map(|((name, index), cell)| GaugeSummary {
                    name: name.to_string(),
                    index,
                    last: cell.last,
                    max: cell.max,
                    samples: cell.samples,
                })
                .collect(),
        }
    }
}

/// In-memory recorder: keeps every event in record order plus aggregated
/// counters and gauges; drain with [`CollectingRecorder::finish`].
#[derive(Debug, Default)]
pub struct CollectingRecorder {
    inner: RefCell<Collected>,
}

impl CollectingRecorder {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the events recorded so far (in record order).
    pub fn events(&self) -> Vec<Event> {
        self.inner.borrow().events.clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consume the recorder, yielding everything it saw.
    pub fn finish(self) -> TraceBundle {
        self.inner.into_inner().into_bundle()
    }

    /// Absorb everything `other` recorded, deterministically:
    ///
    /// * events end up ordered by cycle; within a cycle, `self`'s events
    ///   keep their emit order and precede `other`'s (the sort is
    ///   stable), so merging shard recorders in shard order yields one
    ///   canonical stream regardless of thread scheduling;
    /// * counters sum;
    /// * gauges sum their sample counts, keep the max of the maxima, and
    ///   take `other`'s `last` whenever `other` actually sampled the
    ///   gauge (its writes are treated as later than `self`'s).
    pub fn merge(&mut self, other: CollectingRecorder) {
        let mut mine = self.inner.borrow_mut();
        let theirs = other.inner.into_inner();
        mine.events.extend(theirs.events);
        mine.events.sort_by_key(|e| e.cycle);
        for (name, delta) in theirs.counters {
            *mine.counters.entry(name).or_insert(0) += delta;
        }
        for (key, cell) in theirs.gauges {
            let merged = mine.gauges.entry(key).or_default();
            if cell.samples > 0 {
                merged.last = cell.last;
            }
            merged.max = merged.max.max(cell.max);
            merged.samples += cell.samples;
        }
    }

    /// Re-emit everything collected into another recorder, in collected
    /// order: events first (by `record`), then counters, then gauges.
    /// Gauges collapse to a single `gauge` call carrying the last value —
    /// the intermediate samples are summarised away, exactly as
    /// [`CollectingRecorder::finish`] would report them.
    pub fn replay_into<R: Recorder + ?Sized>(&self, rec: &R) {
        let inner = self.inner.borrow();
        for e in &inner.events {
            rec.record(e.cycle, e.kind);
        }
        for (name, value) in &inner.counters {
            rec.counter(name, *value);
        }
        for (&(name, index), cell) in &inner.gauges {
            if cell.samples > 0 {
                rec.gauge(name, index, cell.last);
            }
        }
    }
}

impl Recorder for CollectingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, cycle: u64, kind: EventKind) {
        self.inner.borrow_mut().record(cycle, kind);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.inner.borrow_mut().counter(name, delta);
    }

    fn gauge(&self, name: &'static str, index: u32, value: u64) {
        self.inner.borrow_mut().gauge(name, index, value);
    }
}

/// Deterministic JSON-lines sink: every event is serialised the moment
/// it is recorded (so the text *is* the event stream, in order), while
/// counters and gauges aggregate and are appended as summary lines by
/// [`JsonlRecorder::finish`]. The output parses back with
/// [`TraceBundle::from_jsonl`].
#[derive(Debug, Default)]
pub struct JsonlRecorder {
    lines: RefCell<String>,
    summary: RefCell<Collected>,
}

impl JsonlRecorder {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the sink, yielding the full JSON-lines text (events in
    /// record order, then counter and gauge summary lines).
    pub fn finish(self) -> String {
        let mut out = self.lines.into_inner();
        let bundle = self.summary.into_inner().into_bundle();
        for c in &bundle.counters {
            crate::jsonl::push_counter_line(&mut out, c);
        }
        for g in &bundle.gauges {
            crate::jsonl::push_gauge_line(&mut out, g);
        }
        out
    }
}

impl Recorder for JsonlRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, cycle: u64, kind: EventKind) {
        // Serialise straight into the long-lived buffer: no per-event
        // `String`, and amortised growth instead of one allocation per
        // record.
        let ev = Event { cycle, kind };
        crate::jsonl::push_event_line(&mut self.lines.borrow_mut(), &ev);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.summary.borrow_mut().counter(name, delta);
    }

    fn gauge(&self, name: &'static str, index: u32, value: u64) {
        self.summary.borrow_mut().gauge(name, index, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<R: Recorder>(rec: &R) {
        rec.span_start(0, Span::SimulateLaunch { launch: 2 });
        rec.record(3, EventKind::TbDispatched { tb: 0, sm: 1 });
        rec.counter("l1_hit", 2);
        rec.counter("l1_hit", 3);
        rec.gauge("sm_resident_blocks", 1, 4);
        rec.gauge("sm_resident_blocks", 1, 2);
        rec.span_end(9, Span::SimulateLaunch { launch: 2 });
    }

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
        drive(&rec); // must not panic, must not do anything observable
    }

    #[test]
    fn collecting_recorder_keeps_order_and_aggregates() {
        let rec = CollectingRecorder::new();
        assert!(rec.is_empty());
        drive(&rec);
        assert_eq!(rec.len(), 3);
        let bundle = rec.finish();
        assert_eq!(
            bundle.events[0].kind,
            EventKind::SpanStart {
                span: Span::SimulateLaunch { launch: 2 }
            }
        );
        assert_eq!(bundle.events[2].cycle, 9);
        assert_eq!(
            bundle.counters,
            vec![Counter {
                name: "l1_hit".into(),
                value: 5
            }]
        );
        assert_eq!(bundle.gauges.len(), 1);
        assert_eq!(bundle.gauges[0].index, 1);
        assert_eq!(bundle.gauges[0].last, 2);
        assert_eq!(bundle.gauges[0].max, 4);
        assert_eq!(bundle.gauges[0].samples, 2);
    }

    #[test]
    fn merge_orders_by_cycle_and_keeps_self_first_on_ties() {
        let a = CollectingRecorder::new();
        let b = CollectingRecorder::new();
        a.record(5, EventKind::TbDispatched { tb: 0, sm: 0 });
        a.record(5, EventKind::TbRetired { tb: 0, sm: 0 });
        a.record(9, EventKind::TbDispatched { tb: 2, sm: 0 });
        b.record(3, EventKind::TbDispatched { tb: 1, sm: 1 });
        b.record(5, EventKind::TbRetired { tb: 1, sm: 1 });
        let mut a = a;
        a.merge(b);
        let ev = a.finish().events;
        assert_eq!(ev.len(), 5);
        assert_eq!(
            ev.iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![3, 5, 5, 5, 9]
        );
        // Stable sort: within cycle 5, self's two events keep their emit
        // order and precede other's.
        assert_eq!(ev[1].kind, EventKind::TbDispatched { tb: 0, sm: 0 });
        assert_eq!(ev[2].kind, EventKind::TbRetired { tb: 0, sm: 0 });
        assert_eq!(ev[3].kind, EventKind::TbRetired { tb: 1, sm: 1 });
    }

    #[test]
    fn merge_sums_counters_and_combines_gauges() {
        let mut a = CollectingRecorder::new();
        let b = CollectingRecorder::new();
        a.counter("l1_hit", 2);
        b.counter("l1_hit", 3);
        b.counter("l2_miss", 7);
        a.gauge("g", 0, 10); // max 10, last 10
        b.gauge("g", 0, 4); // other sampled: last becomes 4
        a.gauge("only_a", 1, 5);
        b.gauge("only_b", 2, 6);
        a.merge(b);
        let bundle = a.finish();
        let get = |n: &str| {
            bundle
                .counters
                .iter()
                .find(|c| c.name == n)
                .map(|c| c.value)
        };
        assert_eq!(get("l1_hit"), Some(5));
        assert_eq!(get("l2_miss"), Some(7));
        let g = |n: &str, i: u32| {
            bundle
                .gauges
                .iter()
                .find(|g| g.name == n && g.index == i)
                .cloned()
        };
        let merged = g("g", 0).unwrap();
        assert_eq!((merged.last, merged.max, merged.samples), (4, 10, 2));
        assert_eq!(g("only_a", 1).unwrap().last, 5);
        assert_eq!(g("only_b", 2).unwrap().last, 6);
    }

    #[test]
    fn merge_is_associative_on_disjoint_cycles() {
        // Three shards, disjoint cycles: merging in shard order is the
        // same as collecting serially in cycle order.
        let shards: Vec<CollectingRecorder> = (0u32..3)
            .map(|s| {
                let r = CollectingRecorder::new();
                r.record(
                    u64::from(s) * 2 + 1,
                    EventKind::TbDispatched { tb: s, sm: s },
                );
                r
            })
            .collect();
        let mut merged = CollectingRecorder::new();
        for s in shards {
            merged.merge(s);
        }
        let cycles: Vec<u64> = merged.finish().events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 3, 5]);
    }

    #[test]
    fn replay_into_reproduces_counters_events_and_last_gauges() {
        let src = CollectingRecorder::new();
        drive(&src);
        let dst = CollectingRecorder::new();
        src.replay_into(&dst);
        let a = src.finish();
        let b = dst.finish();
        assert_eq!(a.events, b.events);
        assert_eq!(a.counters, b.counters);
        // Gauges collapse to one sample carrying the last value.
        assert_eq!(b.gauges.len(), 1);
        assert_eq!(b.gauges[0].last, a.gauges[0].last);
        assert_eq!(b.gauges[0].samples, 1);
    }

    #[test]
    fn jsonl_recorder_matches_collecting_recorder() {
        let collect = CollectingRecorder::new();
        let sink = JsonlRecorder::new();
        drive(&collect);
        drive(&sink);
        let bundle = collect.finish();
        let text = sink.finish();
        assert_eq!(bundle.to_jsonl(), text);
        assert_eq!(TraceBundle::from_jsonl(&text).ok(), Some(bundle));
    }
}

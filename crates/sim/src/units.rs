//! Fixed-size sampling-unit collection for the baselines.
//!
//! Random sampling and Ideal-SimPoint are both defined on sampling units
//! of a fixed number of instructions (one million in the paper,
//! Section V-A). During a *full* timing simulation this collector slices
//! the aggregate issued-instruction stream into units and records each
//! unit's cycle span (hence IPC) and, optionally, its BBV. The paper is
//! explicit that collecting BBVs this way requires full timing simulation
//! — "Ideal-SimPoint is not a viable solution for the GPGPU platform" —
//! which is exactly why it is a baseline and not a competitor.

use serde::{Deserialize, Serialize};

/// Collection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitsConfig {
    /// Warp instructions per sampling unit (paper: 1,000,000).
    pub unit_warp_insts: u64,
    /// Whether to accumulate a BBV per unit (needed by Ideal-SimPoint,
    /// wasted work for Random).
    pub collect_bbv: bool,
}

/// One completed sampling unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitRecord {
    /// Cycle at which the unit began.
    pub start_cycle: u64,
    /// Cycles the unit spanned.
    pub cycles: u64,
    /// Warp instructions in the unit (== config size except the last).
    pub warp_insts: u64,
    /// Per-basic-block warp-instruction counts (empty when not collected).
    pub bbv: Vec<u64>,
}

impl UnitRecord {
    /// Aggregate IPC of the unit.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_insts as f64 / self.cycles as f64
        }
    }
}

/// Streaming collector: feed issued instructions, harvest unit records.
#[derive(Debug, Clone)]
pub struct UnitCollector {
    cfg: UnitsConfig,
    num_bbs: usize,
    records: Vec<UnitRecord>,
    unit_start_cycle: u64,
    unit_insts: u64,
    bbv: Vec<u64>,
}

impl UnitCollector {
    /// New collector for a kernel with `num_bbs` basic blocks.
    pub fn new(cfg: UnitsConfig, num_bbs: usize) -> Self {
        assert!(cfg.unit_warp_insts > 0, "unit size must be positive");
        UnitCollector {
            cfg,
            num_bbs,
            records: vec![],
            unit_start_cycle: 0,
            unit_insts: 0,
            bbv: if cfg.collect_bbv {
                vec![0; num_bbs]
            } else {
                vec![]
            },
        }
    }

    /// Record one issued warp instruction at `cycle` from basic block `bb`.
    pub fn on_issue(&mut self, cycle: u64, bb: u16) {
        if self.unit_insts == 0 {
            self.unit_start_cycle = cycle;
        }
        self.unit_insts += 1;
        if self.cfg.collect_bbv {
            self.bbv[bb as usize] += 1;
        }
        if self.unit_insts >= self.cfg.unit_warp_insts {
            self.close_unit(cycle + 1);
        }
    }

    fn close_unit(&mut self, end_cycle: u64) {
        let bbv = if self.cfg.collect_bbv {
            std::mem::replace(&mut self.bbv, vec![0; self.num_bbs])
        } else {
            vec![]
        };
        self.records.push(UnitRecord {
            start_cycle: self.unit_start_cycle,
            cycles: end_cycle.saturating_sub(self.unit_start_cycle).max(1),
            warp_insts: self.unit_insts,
            bbv,
        });
        self.unit_insts = 0;
    }

    /// Flush a trailing partial unit (end of launch) and return all
    /// records.
    pub fn finish(mut self, end_cycle: u64) -> Vec<UnitRecord> {
        if self.unit_insts > 0 {
            self.close_unit(end_cycle);
        }
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_stream_into_units() {
        let mut c = UnitCollector::new(
            UnitsConfig {
                unit_warp_insts: 10,
                collect_bbv: false,
            },
            1,
        );
        for i in 0..25u64 {
            c.on_issue(i * 2, 0); // one inst every 2 cycles
        }
        let recs = c.finish(50);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].warp_insts, 10);
        assert_eq!(recs[1].warp_insts, 10);
        assert_eq!(recs[2].warp_insts, 5); // trailing partial
                                           // IPC of the full units: 10 insts over ~20 cycles = 0.5.
        assert!((recs[0].ipc() - 0.5).abs() < 0.06);
    }

    #[test]
    fn bbv_accumulates_per_unit() {
        let mut c = UnitCollector::new(
            UnitsConfig {
                unit_warp_insts: 4,
                collect_bbv: true,
            },
            3,
        );
        for (i, bb) in [0u16, 0, 1, 2, 1, 1, 1, 1].iter().enumerate() {
            c.on_issue(i as u64, *bb);
        }
        let recs = c.finish(8);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].bbv, vec![2, 1, 1]);
        assert_eq!(recs[1].bbv, vec![0, 4, 0]);
    }

    #[test]
    fn no_bbv_when_disabled() {
        let mut c = UnitCollector::new(
            UnitsConfig {
                unit_warp_insts: 2,
                collect_bbv: false,
            },
            5,
        );
        c.on_issue(0, 3);
        c.on_issue(1, 3);
        let recs = c.finish(2);
        assert!(recs[0].bbv.is_empty());
    }

    #[test]
    fn empty_stream_yields_no_units() {
        let c = UnitCollector::new(
            UnitsConfig {
                unit_warp_insts: 10,
                collect_bbv: false,
            },
            1,
        );
        assert!(c.finish(100).is_empty());
    }

    #[test]
    #[should_panic(expected = "unit size must be positive")]
    fn zero_unit_size_rejected() {
        UnitCollector::new(
            UnitsConfig {
                unit_warp_insts: 0,
                collect_bbv: false,
            },
            1,
        );
    }
}

//! Set-associative LRU cache model.
//!
//! Tag-only (no data), true-LRU replacement via a monotone access stamp.
//! Used for both the per-SM L1s and the shared L2. Stores are modelled as
//! write-through no-allocate: they probe the cache (updating LRU on hit)
//! but never install lines, which is how Fermi's L1 treats global stores.

use crate::config::CacheConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Line>, // num_sets * assoc, row-major by set
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        // Cache geometry (sets x assoc) is far below usize::MAX on any
        // supported target.
        #[allow(clippy::cast_possible_truncation)]
        let n = (cfg.num_sets() as usize) * cfg.assoc as usize;
        Cache {
            cfg,
            sets: vec![Line::default(); n],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_range(&self, line_addr: u64) -> (usize, u64) {
        let set_idx = (line_addr / self.cfg.line_bytes) % self.cfg.num_sets();
        let tag = line_addr / self.cfg.line_bytes / self.cfg.num_sets();
        // set_idx < num_sets, which fits usize (see `new`).
        #[allow(clippy::cast_possible_truncation)]
        (set_idx as usize * self.cfg.assoc as usize, tag)
    }

    /// Probe-and-fill for a load: returns `true` on hit; on miss the line
    /// is installed, evicting the LRU way.
    pub fn access_load(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let (base, tag) = self.set_range(line_addr);
        let assoc = self.cfg.assoc as usize;
        // Hit path.
        for w in 0..assoc {
            let l = &mut self.sets[base + w];
            if l.valid && l.tag == tag {
                l.stamp = self.tick;
                self.hits += 1;
                return true;
            }
        }
        // Miss: fill LRU way.
        self.misses += 1;
        // `assoc >= 1` always, so min_by_key is Some; way 0 is the
        // (unreachable) fallback.
        let victim = (0..assoc)
            .min_by_key(|&w| {
                let l = &self.sets[base + w];
                if l.valid {
                    l.stamp
                } else {
                    0
                }
            })
            .unwrap_or(0);
        self.sets[base + victim] = Line {
            tag,
            valid: true,
            stamp: self.tick,
        };
        false
    }

    /// Probe for a store (write-through no-allocate): returns `true` on
    /// hit (LRU refreshed); a miss leaves the cache unchanged.
    pub fn access_store(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let (base, tag) = self.set_range(line_addr);
        for w in 0..self.cfg.assoc as usize {
            let l = &mut self.sets[base + w];
            if l.valid && l.tag == tag {
                l.stamp = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Invalidate everything (between launches; kernels share no data in
    /// our workloads, and flushing makes runs independent).
    pub fn flush(&mut self) {
        for l in &mut self.sets {
            l.valid = false;
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in [0, 1]; 0 when untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 128B lines = 1 KiB.
        Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 128,
            assoc: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access_load(0));
        assert!(c.access_load(0));
        assert!(c.access_load(64)); // same 128B line
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        assert!(!c.access_load(0)); // set 0
        assert!(!c.access_load(128)); // set 1
        assert!(c.access_load(0));
        assert!(c.access_load(128));
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = 4 sets * 128B = 512B).
        c.access_load(0);
        c.access_load(512);
        c.access_load(1024); // evicts line 0 (LRU)
        assert!(!c.access_load(0), "line 0 must have been evicted");
        assert!(c.access_load(1024));
    }

    #[test]
    fn lru_refresh_on_hit_changes_victim() {
        let mut c = tiny();
        c.access_load(0);
        c.access_load(512);
        c.access_load(0); // refresh line 0; 512 is now LRU
        c.access_load(1024); // evicts 512
        assert!(c.access_load(0));
        assert!(!c.access_load(512));
    }

    #[test]
    fn store_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.access_store(0));
        assert!(!c.access_load(0), "store miss must not install the line");
        // But a store hit refreshes LRU.
        c.access_load(512); // set 0 now has {0(load-installed), 512}
        assert!(c.access_store(0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access_load(0);
        c.flush();
        assert!(!c.access_load(0));
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access_load(0);
        c.access_load(0);
        c.access_load(0);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 8 lines capacity
                            // 64 distinct lines, two passes: second pass still mostly misses.
        for pass in 0..2 {
            for i in 0..64u64 {
                let hit = c.access_load(i * 128);
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        let (hits, misses) = c.stats();
        assert!(
            misses > hits,
            "streaming working set must thrash: {hits} hits {misses} misses"
        );
    }
}

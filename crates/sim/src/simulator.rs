//! Top-level launch/run simulation: the global thread-block dispatcher,
//! the cycle loop, and result aggregation.

use crate::config::GpuConfig;
use crate::dispatch::{DispatchDecision, SamplingHook};
use crate::memory::MemorySystem;
use crate::sm::SmCore;
use crate::units::{UnitCollector, UnitRecord, UnitsConfig};
use serde::{Deserialize, Serialize};
use std::borrow::BorrowMut;
use tbpoint_emu::{InternStats, TbStats, TraceArena};
use tbpoint_ir::{ExecCtx, Kernel, KernelRun, LaunchSpec, TbId};
use tbpoint_obs::{EventKind, NullRecorder, Recorder};

/// Hot-path switches for [`simulate_launch_with_options`]. The boolean
/// switches default to on; turning one off selects the slow reference
/// implementation the bit-identity golden suite compares against.
/// Results are identical under every combination — only wall time
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Serve dispatch traces from a per-launch [`TraceArena`] instead of
    /// re-emulating every warp.
    pub intern_traces: bool,
    /// Use cached per-SM `ready_hint`s to skip provably-idle scheduling
    /// scans and to jump the cycle loop across machine-wide idle spans
    /// in one step (instead of stepping cycle by cycle).
    pub event_horizon: bool,
    /// Worker threads simulating SM shards inside this launch. Clamped
    /// to `[1, num_sms]`; `1` (the default) runs the serial cycle loop
    /// unchanged, larger values run the SM-sharded windowed simulator
    /// (see DESIGN.md, "Deterministic parallel simulation") whose
    /// [`LaunchSimResult`] is bit-identical to serial for every value.
    pub jobs: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            intern_traces: true,
            event_horizon: true,
            jobs: 1,
        }
    }
}

/// Hot-path effectiveness counters for one simulated launch, returned by
/// [`simulate_launch_perf`]. Kept out of [`LaunchSimResult`] so the
/// result's serialised form (pinned by golden files) is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimPerf {
    /// Warp traces served from the interner.
    pub intern_hits: u64,
    /// Warp traces emulated and cached.
    pub intern_misses: u64,
    /// Warp traces emulated with caching bypassed (thread-varying
    /// kernels have per-warp-unique traces by construction).
    pub intern_uncacheable: u64,
    /// Trace instructions whose emulation the interner avoided.
    pub reused_warp_insts: u64,
    /// Trace instructions actually emulated.
    pub traced_warp_insts: u64,
    /// Machine-wide idle spans crossed in a single jump.
    pub idle_jumps: u64,
    /// Cycles those jumps skipped.
    pub idle_cycles_skipped: u64,
    /// Thread-block retirements whose feature counters were streamed to
    /// the sampling hook (every simulated TB generates exactly one).
    pub stat_retires: u64,
    /// Thread blocks the sampling hook skipped at dispatch — the
    /// fast-forward periods of a sampling run.
    pub hook_skips: u64,
}

impl SimPerf {
    pub(crate) fn absorb_intern(&mut self, s: &InternStats) {
        self.intern_hits = s.hits;
        self.intern_misses = s.misses;
        self.intern_uncacheable = s.uncacheable;
        self.reused_warp_insts = s.reused_warp_insts;
        self.traced_warp_insts = s.traced_warp_insts;
    }

    /// Merge counters from another launch (for run-level totals).
    pub fn accumulate(&mut self, other: &SimPerf) {
        self.intern_hits += other.intern_hits;
        self.intern_misses += other.intern_misses;
        self.intern_uncacheable += other.intern_uncacheable;
        self.reused_warp_insts += other.reused_warp_insts;
        self.traced_warp_insts += other.traced_warp_insts;
        self.idle_jumps += other.idle_jumps;
        self.idle_cycles_skipped += other.idle_cycles_skipped;
        self.stat_retires += other.stat_retires;
        self.hook_skips += other.hook_skips;
    }
}

/// Result of simulating one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchSimResult {
    /// Which launch.
    pub launch_id: tbpoint_ir::LaunchId,
    /// Total cycles from first dispatch to last retirement.
    pub cycles: u64,
    /// Warp instructions actually issued (skipped blocks excluded).
    pub issued_warp_insts: u64,
    /// Thread instructions actually issued.
    pub issued_thread_insts: u64,
    /// Thread blocks simulated.
    pub simulated_tbs: u32,
    /// Thread blocks skipped by the sampling hook.
    pub skipped_tbs: u32,
    /// Aggregate L1 hit rate.
    pub l1_hit_rate: f64,
    /// L2 hit rate.
    pub l2_hit_rate: f64,
    /// DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
    /// Mean DRAM wait per access (cycles) — the empirical "M".
    pub dram_avg_wait: f64,
    /// Fixed-size sampling units (only when requested).
    pub units: Vec<UnitRecord>,
    /// Per-SM statistics (mix, residency, retirements).
    pub sm_stats: Vec<crate::stats::SmStats>,
}

impl LaunchSimResult {
    /// Aggregate IPC over the simulated portion: issued warp instructions
    /// per cycle, summed across SMs (the paper's Fig. 9 definition
    /// collapses to this because every SM spans the same cycle count).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued_warp_insts as f64 / self.cycles as f64
        }
    }
}

/// Result of simulating a whole benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSimResult {
    /// Kernel name.
    pub kernel_name: String,
    /// Per-launch results in launch order.
    pub launches: Vec<LaunchSimResult>,
}

impl RunSimResult {
    /// Total cycles across launches.
    pub fn total_cycles(&self) -> u64 {
        self.launches.iter().map(|l| l.cycles).sum()
    }

    /// Total issued warp instructions across launches.
    pub fn total_issued_warp_insts(&self) -> u64 {
        self.launches.iter().map(|l| l.issued_warp_insts).sum()
    }

    /// Overall IPC: total issued warp instructions / total cycles.
    pub fn overall_ipc(&self) -> f64 {
        let c = self.total_cycles();
        if c == 0 {
            0.0
        } else {
            self.total_issued_warp_insts() as f64 / c as f64
        }
    }
}

/// Simulate one launch of `kernel` under `cfg`, with `hook` controlling
/// thread-block skipping and `units` optionally collecting fixed-size
/// sampling units (pass `None` for normal runs).
pub fn simulate_launch(
    kernel: &Kernel,
    spec: &LaunchSpec,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
) -> LaunchSimResult {
    simulate_launch_obs(kernel, spec, cfg, hook, units, &NullRecorder)
}

/// [`simulate_launch`] with observability: dispatch/skip/retire events,
/// idle-jump and memory-stall events, cache/DRAM counters, and a
/// per-SM `sm_resident_blocks` occupancy gauge, all emitted into `rec`.
///
/// The function is monomorphised over the recorder, so the
/// `NullRecorder` path (what [`simulate_launch`] uses) compiles the
/// instrumentation away; recording never influences the simulation, and
/// the result is bit-identical for every recorder.
pub fn simulate_launch_obs<R: Recorder + ?Sized>(
    kernel: &Kernel,
    spec: &LaunchSpec,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
    rec: &R,
) -> LaunchSimResult {
    simulate_launch_core(kernel, spec, cfg, hook, units, SimOptions::default(), rec).0
}

/// [`simulate_launch`] plus the hot-path counters ([`SimPerf`]) the
/// `tbpoint bench` command reports, at a chosen intra-launch parallelism
/// (`jobs` worker threads over SM shards; `1` is the serial path). The
/// simulated result is identical to [`simulate_launch`]'s for every
/// `jobs` value.
pub fn simulate_launch_perf(
    kernel: &Kernel,
    spec: &LaunchSpec,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
    jobs: usize,
) -> (LaunchSimResult, SimPerf) {
    simulate_launch_core(
        kernel,
        spec,
        cfg,
        hook,
        units,
        SimOptions {
            jobs,
            ..SimOptions::default()
        },
        &NullRecorder,
    )
}

/// [`simulate_launch`] with explicit [`SimOptions`] — exists so the
/// golden test suite can pin interned==fresh and skipped==stepped
/// bit-identity; not part of the supported API surface.
#[doc(hidden)]
pub fn simulate_launch_with_options(
    kernel: &Kernel,
    spec: &LaunchSpec,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
    opts: SimOptions,
) -> LaunchSimResult {
    simulate_launch_core(kernel, spec, cfg, hook, units, opts, &NullRecorder).0
}

/// [`simulate_launch_obs`] with explicit [`SimOptions`] — the fully
/// general entry point: observability *and* hot-path switches, including
/// intra-launch parallelism via [`SimOptions::jobs`]. This is what
/// `tbpoint-core` uses to thread its configured job count into the
/// per-launch detailed simulations.
pub fn simulate_launch_obs_with_options<R: Recorder + ?Sized>(
    kernel: &Kernel,
    spec: &LaunchSpec,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
    opts: SimOptions,
    rec: &R,
) -> LaunchSimResult {
    simulate_launch_core(kernel, spec, cfg, hook, units, opts, rec).0
}

/// Dispatch-side progress counters, shared between the serial cycle loop
/// and the parallel coordinator.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct DispatchState {
    /// Next thread-block id to consult the hook about.
    pub next_tb: u32,
    /// Dispatched-and-simulating TBs.
    pub outstanding: u32,
    /// TBs the hook chose to simulate.
    pub simulated: u32,
    /// TBs the hook skipped.
    pub skipped: u32,
}

/// Greedy dispatch: fill every free slot, consulting the hook per TB.
/// Breadth-first over SMs (fewest-resident first, lowest index on ties)
/// so that consecutive TB ids spread across SMs — the behaviour the
/// paper's epoch construction assumes ("thread blocks having closer
/// thread block IDs are likely to be running concurrently").
///
/// Generic over `BorrowMut<SmCore>` so the serial loop passes its own
/// `Vec<SmCore>` and the parallel coordinator passes a view of
/// `&mut SmCore`s gathered from the shard mutexes — one dispatcher, one
/// behaviour.
// The dispatcher's full per-launch context; bundling more would just
// move the same fields.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedy_fill<R: Recorder + ?Sized, S: BorrowMut<SmCore>>(
    sms: &mut [S],
    arena: &mut TraceArena,
    kernel: &Kernel,
    spec: &LaunchSpec,
    stagger: u64,
    ds: &mut DispatchState,
    hook: &mut dyn SamplingHook,
    cycle: u64,
    issued_total: u64,
    rec: &R,
) {
    let total_tbs = spec.num_blocks;
    let make_ctx = |block_id: u32| ExecCtx {
        kernel_seed: kernel.seed,
        launch_id: spec.launch_id,
        block_id,
        num_blocks: spec.num_blocks,
        work_scale: spec.work_scale,
    };
    loop {
        if ds.next_tb >= total_tbs {
            return;
        }
        // Find the SM with a free slot that currently hosts the fewest
        // blocks (breadth-first fill), and grab the slot while at it so
        // dispatch below cannot fail.
        let target = sms
            .iter()
            .enumerate()
            .filter_map(|(i, sm)| {
                let sm: &SmCore = sm.borrow();
                sm.free_slot().map(|s| (i, s, sm.resident_blocks()))
            })
            .min_by_key(|&(_, _, r)| r)
            .map(|(i, s, _)| (i, s));
        let Some((sm_idx, slot)) = target else { return };
        // SM indices are config-bounded (tens), far below u32::MAX.
        let sm_u32 = u32::try_from(sm_idx).unwrap_or(u32::MAX);
        let tb = TbId(ds.next_tb);
        ds.next_tb += 1;
        match hook.on_dispatch(tb, cycle, issued_total) {
            DispatchDecision::Skip => {
                ds.skipped += 1;
                rec.record(cycle, EventKind::TbSkipped { tb: tb.0 });
                // Skipped blocks vanish: no resources, no sim events.
                continue;
            }
            DispatchDecision::Simulate => {
                ds.simulated += 1;
                // Serial dispatch: during the initial fill every block
                // starts `stagger` cycles after the previous one.
                // Mid-launch refills inherit natural staggering from
                // retirement times, so no extra delay is added there.
                let start = if cycle == 0 {
                    ds.simulated as u64 * stagger
                } else {
                    cycle
                };
                let target_sm: &mut SmCore = sms[sm_idx].borrow_mut();
                let insta_retire =
                    target_sm.dispatch(slot, kernel, make_ctx(tb.0), tb, cycle, start, arena);
                rec.record(
                    cycle,
                    EventKind::TbDispatched {
                        tb: tb.0,
                        sm: sm_u32,
                    },
                );
                if let Some(rtb) = insta_retire {
                    rec.record(
                        cycle,
                        EventKind::TbRetired {
                            tb: rtb.0,
                            sm: sm_u32,
                        },
                    );
                    // A degenerate (all-empty-trace) block issues nothing,
                    // so its streamed profile is the all-zero one — exactly
                    // what the profiler would have recorded for it.
                    hook.on_retire_stats(rtb, cycle, issued_total, TbStats::default());
                } else {
                    ds.outstanding += 1;
                    if rec.enabled() {
                        let filled: &SmCore = sms[sm_idx].borrow();
                        let resident = u64::try_from(filled.resident_blocks()).unwrap_or(u64::MAX);
                        rec.gauge("sm_resident_blocks", sm_u32, resident);
                    }
                }
            }
        }
    }
}

// tbpoint-phase: coordinator
fn simulate_launch_core<R: Recorder + ?Sized>(
    kernel: &Kernel,
    spec: &LaunchSpec,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
    opts: SimOptions,
    rec: &R,
) -> (LaunchSimResult, SimPerf) {
    let jobs = opts.jobs.clamp(1, cfg.num_sms.max(1) as usize);
    if jobs > 1 {
        return crate::parallel::simulate_launch_sharded(
            kernel, spec, cfg, hook, units, opts, jobs, rec,
        );
    }
    let occupancy = cfg.sm_occupancy(kernel);
    let mut sms: Vec<SmCore> = (0..cfg.num_sms)
        .map(|i| {
            let mut sm = SmCore::new(i as usize, occupancy, cfg);
            sm.set_event_horizon(opts.event_horizon);
            sm
        })
        .collect();
    let mut arena = TraceArena::with_caching(kernel, opts.intern_traces);
    let mut perf = SimPerf::default();
    let mut mem = MemorySystem::new(cfg);
    let mut collector = units.map(|u| UnitCollector::new(u, kernel.num_basic_blocks as usize));

    let total_tbs = spec.num_blocks;
    let mut ds = DispatchState::default();
    let mut cycle: u64 = 0;
    let mut issued_total: u64 = 0;
    let stagger = cfg.dispatch_stagger_cycles as u64;

    greedy_fill(
        &mut sms,
        &mut arena,
        kernel,
        spec,
        stagger,
        &mut ds,
        hook,
        cycle,
        issued_total,
        rec,
    );

    while ds.outstanding > 0 || ds.next_tb < total_tbs {
        let mut any_issued = false;
        let mut any_retired = false;
        for (sm_idx, sm) in sms.iter_mut().enumerate() {
            let r = sm.try_issue_obs(cycle, &mut mem, rec);
            if let Some(bb) = r.issued_bb {
                any_issued = true;
                issued_total += 1;
                if let Some(c) = collector.as_mut() {
                    c.on_issue(cycle, bb);
                }
            }
            if let Some(tb) = r.retired {
                ds.outstanding -= 1;
                any_retired = true;
                if rec.enabled() {
                    let sm_u32 = u32::try_from(sm_idx).unwrap_or(u32::MAX);
                    rec.record(
                        cycle,
                        EventKind::TbRetired {
                            tb: tb.0,
                            sm: sm_u32,
                        },
                    );
                    let resident = u64::try_from(sm.resident_blocks()).unwrap_or(u64::MAX);
                    rec.gauge("sm_resident_blocks", sm_u32, resident);
                }
                hook.on_retire_stats(tb, cycle, issued_total, r.retired_stats);
            }
        }
        if any_retired {
            greedy_fill(
                &mut sms,
                &mut arena,
                kernel,
                spec,
                stagger,
                &mut ds,
                hook,
                cycle,
                issued_total,
                rec,
            );
        }
        if ds.outstanding == 0 && ds.next_tb >= total_tbs {
            break;
        }
        if any_issued {
            for sm in &mut sms {
                sm.credit_resident_cycles(1);
            }
            cycle += 1;
        } else {
            // Nothing issueable this cycle: jump to the next wake-up.
            // With the event horizon on, every SM's last scheduling scan
            // failed this cycle (issuing would have set `any_issued`), so
            // each `ready_hint` is the exact per-SM minimum and their min
            // is the machine-wide wake cycle — no rescan needed. The
            // stepped reference recomputes it by scanning every warp and
            // then advances one cycle at a time.
            let next = if opts.event_horizon {
                sms.iter()
                    .map(SmCore::ready_hint)
                    .min()
                    .filter(|&t| t != u64::MAX)
            } else {
                sms.iter().filter_map(SmCore::next_ready).min()
            };
            match next {
                Some(t) if t > cycle && opts.event_horizon => {
                    rec.record(cycle, EventKind::IdleJump { cycles: t - cycle });
                    for sm in &mut sms {
                        sm.credit_resident_cycles(t - cycle);
                    }
                    perf.idle_jumps += 1;
                    perf.idle_cycles_skipped += t - cycle;
                    cycle = t;
                }
                Some(_) => {
                    for sm in &mut sms {
                        sm.credit_resident_cycles(1);
                    }
                    cycle += 1;
                }
                None => {
                    // No warp can ever become ready: only legal when all
                    // remaining TBs are skippable (outstanding == 0 was
                    // handled above), so this is a deadlock — the simulator
                    // itself is broken, not the input. Aborting loudly beats
                    // returning a silently wrong cycle count.
                    // tbpoint-lint: allow(no-panic-in-library)
                    panic!(
                        "simulator deadlock at cycle {cycle}: outstanding={}, \
                         next_tb={}/{total_tbs}",
                        ds.outstanding, ds.next_tb
                    );
                }
            }
        }
    }

    perf.stat_retires += u64::from(ds.simulated);
    perf.hook_skips += u64::from(ds.skipped);
    perf.absorb_intern(&arena.stats);
    if rec.enabled() {
        // Aggregate interner traffic, once per launch (per-dispatch
        // events would swamp the stream for 100k-block launches).
        rec.counter("trace_intern_hits", perf.intern_hits);
        rec.counter("trace_intern_misses", perf.intern_misses);
        rec.counter("trace_intern_uncacheable", perf.intern_uncacheable);
    }
    let issued_warp_insts: u64 = sms.iter().map(|s| s.issued_warp_insts).sum();
    let issued_thread_insts: u64 = sms.iter().map(|s| s.issued_thread_insts).sum();
    let result = LaunchSimResult {
        launch_id: spec.launch_id,
        cycles: cycle,
        issued_warp_insts,
        issued_thread_insts,
        simulated_tbs: ds.simulated,
        skipped_tbs: ds.skipped,
        l1_hit_rate: mem.l1_hit_rate(),
        l2_hit_rate: mem.l2_hit_rate(),
        dram_row_hit_rate: mem.dram_row_hit_rate(),
        dram_avg_wait: mem.dram_avg_wait(),
        units: collector.map(|c| c.finish(cycle)).unwrap_or_default(),
        sm_stats: sms.iter().map(|s| s.stats).collect(),
    };
    (result, perf)
}

/// Simulate every launch of a run with the same hook (e.g. Full
/// simulation with `NullSampling`).
pub fn simulate_run(
    run: &KernelRun,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
) -> RunSimResult {
    RunSimResult {
        kernel_name: run.kernel.name.clone(),
        launches: run
            .launches
            .iter()
            .map(|spec| simulate_launch(&run.kernel, spec, cfg, hook, units))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{NullSampling, SkipList};
    use tbpoint_ir::{AddrPattern, Cond, Dist, KernelBuilder, LaunchId, Op, TripCount};

    fn launch(n: u32) -> LaunchSpec {
        LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: n,
            work_scale: 1.0,
        }
    }

    fn compute_kernel() -> Kernel {
        // Long enough that the staggered initial dispatch (which trades a
        // little startup utilisation for realistic desynchronisation) is
        // amortised away.
        let mut b = KernelBuilder::new("compute", 7, 128);
        let body = b.block(&[Op::IAlu, Op::FAlu, Op::IAlu, Op::FAlu]);
        let n = b.loop_(TripCount::Const(100), body);
        b.finish(n)
    }

    fn memory_kernel() -> Kernel {
        let mut b = KernelBuilder::new("membound", 7, 128);
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Random {
                region: 0,
                bytes: 64 << 20,
            }),
        ]);
        let n = b.loop_(TripCount::Const(20), body);
        b.finish(n)
    }

    #[test]
    fn all_blocks_retire() {
        let k = compute_kernel();
        let r = simulate_launch(
            &k,
            &launch(30),
            &GpuConfig::fermi(),
            &mut NullSampling,
            None,
        );
        assert_eq!(r.simulated_tbs, 30);
        assert_eq!(r.skipped_tbs, 0);
        assert!(r.cycles > 0);
        // 30 TBs * 4 warps * 100 iters * 4 insts.
        assert_eq!(r.issued_warp_insts, 30 * 4 * 100 * 4);
        assert_eq!(r.issued_thread_insts, r.issued_warp_insts * 32);
    }

    #[test]
    fn compute_kernel_reaches_decent_ipc() {
        let k = compute_kernel();
        let cfg = GpuConfig::fermi();
        let r = simulate_launch(&k, &launch(cfg.num_sms * 8), &cfg, &mut NullSampling, None);
        // Pure-ALU with many warps: latency fully hidden, IPC ~ num_sms.
        let per_sm = r.ipc() / cfg.num_sms as f64;
        assert!(
            per_sm > 0.8,
            "per-SM IPC {per_sm} too low for compute-bound"
        );
    }

    #[test]
    fn memory_kernel_is_slower_than_compute() {
        let cfg = GpuConfig::fermi();
        let rc = simulate_launch(
            &compute_kernel(),
            &launch(28),
            &cfg,
            &mut NullSampling,
            None,
        );
        let rm = simulate_launch(&memory_kernel(), &launch(28), &cfg, &mut NullSampling, None);
        assert!(
            rm.ipc() < rc.ipc() * 0.8,
            "memory-bound IPC {} should trail compute-bound {}",
            rm.ipc(),
            rc.ipc()
        );
        assert!(rm.dram_avg_wait > 0.0);
    }

    #[test]
    fn skipping_blocks_reduces_work() {
        let k = compute_kernel();
        let mut hook = SkipList::default();
        for i in 10..30 {
            hook.skip.insert(i);
        }
        let r = simulate_launch(&k, &launch(30), &GpuConfig::fermi(), &mut hook, None);
        assert_eq!(r.simulated_tbs, 10);
        assert_eq!(r.skipped_tbs, 20);
        assert_eq!(r.issued_warp_insts, 10 * 4 * 100 * 4);
        assert_eq!(hook.dispatched.len(), 30);
        assert_eq!(hook.retired.len(), 10);
    }

    #[test]
    fn skip_everything_is_legal() {
        let k = compute_kernel();
        let mut hook = SkipList::default();
        for i in 0..10 {
            hook.skip.insert(i);
        }
        let r = simulate_launch(&k, &launch(10), &GpuConfig::fermi(), &mut hook, None);
        assert_eq!(r.simulated_tbs, 0);
        assert_eq!(r.issued_warp_insts, 0);
    }

    #[test]
    fn cycle_budget_hook_bounds_a_run() {
        let k = compute_kernel();
        let cfg = GpuConfig::fermi();
        // Enough blocks that dispatch continues well past the first wave
        // (a budget can only trip on a dispatch event).
        let n = cfg.num_sms * 40;
        let full = simulate_launch(&k, &launch(n), &cfg, &mut NullSampling, None);

        // A generous budget never trips and changes nothing.
        let mut inner = NullSampling;
        let mut hook = crate::dispatch::CycleBudgetHook::new(&mut inner, full.cycles * 2);
        let r = simulate_launch(&k, &launch(n), &cfg, &mut hook, None);
        assert!(!hook.exceeded());
        assert_eq!(r.issued_warp_insts, full.issued_warp_insts);

        // A tiny budget trips and drains the launch quickly.
        let mut inner = NullSampling;
        let mut hook = crate::dispatch::CycleBudgetHook::new(&mut inner, 1);
        let r = simulate_launch(&k, &launch(n), &cfg, &mut hook, None);
        assert!(hook.exceeded());
        assert!(r.cycles < full.cycles, "drained run must finish early");
        assert!(r.skipped_tbs > 0);
    }

    #[test]
    fn determinism_across_runs() {
        let k = memory_kernel();
        let cfg = GpuConfig::fermi();
        let a = simulate_launch(&k, &launch(40), &cfg, &mut NullSampling, None);
        let b = simulate_launch(&k, &launch(40), &cfg, &mut NullSampling, None);
        assert_eq!(a, b);
    }

    #[test]
    fn barrier_kernel_completes() {
        let mut b = KernelBuilder::new("bar", 7, 128);
        let pre = b.block(&[Op::IAlu, Op::StShared, Op::Barrier]);
        let post = b.block(&[Op::LdShared, Op::IAlu]);
        let n = b.seq(vec![pre, post]);
        let k = b.finish(n);
        k.validate().unwrap();
        let r = simulate_launch(&k, &launch(8), &GpuConfig::fermi(), &mut NullSampling, None);
        assert_eq!(r.simulated_tbs, 8);
        assert_eq!(r.issued_warp_insts, 8 * 4 * 5);
    }

    #[test]
    fn divergent_kernel_completes() {
        let mut b = KernelBuilder::new("div", 7, 64);
        let s1 = b.fresh_site();
        let s2 = b.fresh_site();
        let heavy = b.block(&[Op::IAlu, Op::IAlu, Op::IAlu]);
        let light = b.block(&[Op::IAlu]);
        let iffy = b.if_(Cond::ThreadProb { p: 0.3, site: s1 }, heavy, Some(light));
        let n = b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 6,
                dist: Dist::Uniform,
                site: s2,
            },
            iffy,
        );
        let k = b.finish(n);
        let r = simulate_launch(
            &k,
            &launch(20),
            &GpuConfig::fermi(),
            &mut NullSampling,
            None,
        );
        assert_eq!(r.simulated_tbs, 20);
        assert!(r.issued_warp_insts > 0);
        // Divergence: thread insts strictly below lanes * warp insts.
        assert!(r.issued_thread_insts < r.issued_warp_insts * 32);
    }

    #[test]
    fn unit_collection_covers_all_issues() {
        let k = compute_kernel();
        let r = simulate_launch(
            &k,
            &launch(20),
            &GpuConfig::fermi(),
            &mut NullSampling,
            Some(UnitsConfig {
                unit_warp_insts: 5000,
                collect_bbv: true,
            }),
        );
        let unit_insts: u64 = r.units.iter().map(|u| u.warp_insts).sum();
        assert_eq!(unit_insts, r.issued_warp_insts);
        // BBVs sum to the same total.
        let bbv_insts: u64 = r.units.iter().flat_map(|u| u.bbv.iter()).sum();
        assert_eq!(bbv_insts, r.issued_warp_insts);
        // 20 TBs * 4 warps * 400 insts = 32000 -> 6 full units + 1 partial.
        assert_eq!(r.units.len(), 7);
    }

    #[test]
    fn gto_and_rr_both_complete_with_similar_totals() {
        let k = memory_kernel();
        let mut cfg = GpuConfig::fermi();
        let rr = simulate_launch(&k, &launch(28), &cfg, &mut NullSampling, None);
        cfg.sched = crate::config::SchedPolicy::Gto;
        let gto = simulate_launch(&k, &launch(28), &cfg, &mut NullSampling, None);
        assert_eq!(rr.issued_warp_insts, gto.issued_warp_insts);
        assert!(gto.cycles > 0);
    }

    #[test]
    fn more_sms_speed_up_the_launch() {
        let k = compute_kernel();
        let slow = simulate_launch(
            &k,
            &launch(56),
            &GpuConfig::with_occupancy(48, 2),
            &mut NullSampling,
            None,
        );
        let fast = simulate_launch(
            &k,
            &launch(56),
            &GpuConfig::with_occupancy(48, 14),
            &mut NullSampling,
            None,
        );
        assert!(
            fast.cycles * 3 < slow.cycles,
            "14 SMs ({}) should be much faster than 2 ({})",
            fast.cycles,
            slow.cycles
        );
    }

    /// Record every retire-streamed [`TbStats`] for comparison against
    /// the profiler.
    #[derive(Debug, Default)]
    struct StatRecorder {
        stats: Vec<(u32, TbStats)>,
    }

    impl SamplingHook for StatRecorder {
        fn on_dispatch(&mut self, _tb: TbId, _cycle: u64, _issued: u64) -> DispatchDecision {
            DispatchDecision::Simulate
        }

        fn on_retire(&mut self, _tb: TbId, _cycle: u64, _issued: u64) {}

        fn on_retire_stats(&mut self, tb: TbId, _cycle: u64, _issued: u64, stats: TbStats) {
            self.stats.push((tb.0, stats));
        }
    }

    #[test]
    fn retire_streamed_stats_match_the_profiler() {
        let k = memory_kernel();
        let spec = launch(30);
        let cfg = GpuConfig::fermi();
        let prof = tbpoint_emu::profile_launch(&k, &spec, 1);
        for jobs in [1usize, 2] {
            let mut hook = StatRecorder::default();
            let (r, perf) = simulate_launch_perf(&k, &spec, &cfg, &mut hook, None, jobs);
            assert_eq!(hook.stats.len(), 30);
            assert_eq!(perf.stat_retires, 30);
            assert_eq!(perf.hook_skips, 0);
            let mut by_tb = hook.stats.clone();
            by_tb.sort_by_key(|&(tb, _)| tb);
            for (tb, stats) in by_tb {
                assert_eq!(
                    stats,
                    prof.tbs[tb as usize].features(),
                    "tb {tb} jobs {jobs}"
                );
            }
            let streamed: u64 = hook.stats.iter().map(|&(_, s)| s.warp_insts).sum();
            assert_eq!(streamed, r.issued_warp_insts);
        }
    }

    #[test]
    fn run_simulation_aggregates_launches() {
        let k = compute_kernel();
        let run = KernelRun {
            kernel: k,
            launches: vec![
                LaunchSpec {
                    launch_id: LaunchId(0),
                    num_blocks: 10,
                    work_scale: 1.0,
                },
                LaunchSpec {
                    launch_id: LaunchId(1),
                    num_blocks: 10,
                    work_scale: 2.0,
                },
            ],
        };
        let r = simulate_run(&run, &GpuConfig::fermi(), &mut NullSampling, None);
        assert_eq!(r.launches.len(), 2);
        assert!(r.launches[1].issued_warp_insts > r.launches[0].issued_warp_insts);
        assert_eq!(
            r.total_issued_warp_insts(),
            r.launches[0].issued_warp_insts + r.launches[1].issued_warp_insts
        );
        assert!(r.overall_ipc() > 0.0);
    }
}

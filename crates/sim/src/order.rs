//! Canonical orderings for cross-SM event buffers.
//!
//! The parallel window protocol's determinism contract is that buffered
//! cross-SM traffic is replayed at the barrier in `(cycle, sm)` order —
//! cycle-major, SM-ascending — which reconstructs the exact call
//! sequence the serial simulator would have made. Every sort that
//! realises that order must key through [`cycle_sm_key`]: two call sites
//! with hand-written key tuples could drift apart (swap the fields, drop
//! the tiebreaker) while each remaining locally "deterministic". The
//! `canonical-order-sort` lint rule enforces the routing.

/// The one blessed sort key for `(cycle, sm)`-ordered event buffers:
/// cycle-major, then ascending global SM id.
#[inline]
pub(crate) fn cycle_sm_key(cycle: u64, sm: usize) -> (u64, usize) {
    (cycle, sm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_major_sm_breaks_ties() {
        let mut v = [(9u64, 0usize), (1, 7), (1, 2), (0, 5)];
        v.sort_unstable_by_key(|&(cycle, sm)| cycle_sm_key(cycle, sm));
        assert_eq!(v, [(0, 5), (1, 2), (1, 7), (9, 0)]);
    }
}

//! DRAM timing model: channels, banks, row buffers, queuing delay.
//!
//! A request is mapped to a (channel, bank) by line-address interleaving.
//! Each bank serialises its requests (a busy-until clock) and keeps one
//! open row: a request to the open row occupies the bank for
//! `row_hit_cycles`, anything else pays `row_miss_cycles` (precharge +
//! activate) and switches the open row. The returned completion time folds
//! in the queuing delay — this is exactly the paper's source of *variable
//! stall latency M* ("resource contention and/or queuing delay",
//! Section IV-A), and is what makes a fixed-M model (the prior work the
//! paper criticises) unrealistic.
//!
//! FR-FCFS fidelity note: a real FR-FCFS scheduler reorders the queue to
//! prefer row hits. With the analytic busy-until model requests are served
//! in arrival order against the open row (FCFS + open-row). The first-ready
//! reordering mainly *reduces* average latency under heavy row locality; it
//! does not change the contention-driven variance the sampling experiments
//! depend on. Recorded as a substitution in DESIGN.md.

use crate::config::GpuConfig;

/// Rows a bank can serve at row-hit cost. A real FR-FCFS scheduler holds a
/// queue and *reorders* it to batch same-row requests; the analytic model
/// has no queue, so we approximate the batching with a small LRU set of
/// recently-open rows per bank. One row (a bare open-row policy) punishes
/// any interleaving of streams permanently — far more pessimistic than
/// FR-FCFS — while a small set recovers the locality FR-FCFS would.
const OPEN_ROWS: usize = 4;

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    busy_until: u64,
    open_rows: [u64; OPEN_ROWS],
    valid: u8,
    next_victim: u8,
}

impl Bank {
    /// True (and refreshed) if `row` hits the open-row set; otherwise the
    /// oldest entry is replaced.
    fn access_row(&mut self, row: u64) -> bool {
        for i in 0..self.valid as usize {
            if self.open_rows[i] == row {
                return true;
            }
        }
        if (self.valid as usize) < OPEN_ROWS {
            self.open_rows[self.valid as usize] = row;
            self.valid += 1;
        } else {
            self.open_rows[self.next_victim as usize] = row;
            // OPEN_ROWS is a small constant (< 256).
            #[allow(clippy::cast_possible_truncation)]
            let wrap = OPEN_ROWS as u8;
            self.next_victim = (self.next_victim + 1) % wrap;
        }
        false
    }
}

/// The DRAM subsystem: `channels x banks` independent banks.
#[derive(Debug, Clone)]
pub struct Dram {
    banks: Vec<Bank>,
    channels: u64,
    banks_per_channel: u64,
    page_bytes: u64,
    line_bytes: u64,
    row_hit: u64,
    row_miss: u64,
    accesses: u64,
    row_hits: u64,
    total_wait: u64,
}

impl Dram {
    /// Build from the machine config.
    // tbpoint-phase: coordinator
    pub fn new(cfg: &GpuConfig) -> Self {
        let channels = cfg.dram_channels as u64;
        let banks_per_channel = cfg.dram_banks_per_channel as u64;
        // Bank count is config-bounded (tens), far below usize::MAX.
        #[allow(clippy::cast_possible_truncation)]
        Dram {
            banks: vec![Bank::default(); (channels * banks_per_channel) as usize],
            channels,
            banks_per_channel,
            page_bytes: cfg.dram_page_bytes,
            line_bytes: cfg.l2.line_bytes,
            row_hit: cfg.dram_row_hit_cycles as u64,
            row_miss: cfg.dram_row_miss_cycles as u64,
            accesses: 0,
            row_hits: 0,
            total_wait: 0,
        }
    }

    /// Map a line address to `(bank index, row)`.
    ///
    /// Channels interleave at line granularity (maximises channel
    /// parallelism for coalesced streams); within a channel, consecutive
    /// lines fill one 2 KB row before moving to the next bank, so
    /// streaming accesses enjoy row-buffer hits while scattered accesses
    /// thrash rows — the locality behaviour FR-FCFS exists to exploit.
    fn map(&self, line_addr: u64) -> (usize, u64) {
        let line = line_addr / self.line_bytes;
        let channel = line % self.channels;
        let chan_local_line = line / self.channels;
        let lines_per_page = (self.page_bytes / self.line_bytes).max(1);
        let page_idx = chan_local_line / lines_per_page;
        let bank = page_idx % self.banks_per_channel;
        let row = page_idx / self.banks_per_channel;
        // Bank index < channels * banks_per_channel == banks.len().
        #[allow(clippy::cast_possible_truncation)]
        ((channel * self.banks_per_channel + bank) as usize, row)
    }

    /// Issue a request at cycle `now`; returns the cycle at which the bank
    /// has produced the data (excluding the fixed interconnect latency,
    /// which the memory system adds).
    pub fn access(&mut self, line_addr: u64, now: u64) -> u64 {
        self.access_traced(line_addr, now).0
    }

    /// Like [`Dram::access`], but also reports whether the request hit an
    /// open row buffer (for observability; see `tbpoint-obs`).
    pub fn access_traced(&mut self, line_addr: u64, now: u64) -> (u64, bool) {
        let (idx, row) = self.map(line_addr);
        let bank = &mut self.banks[idx];
        let start = now.max(bank.busy_until);
        let hit = bank.access_row(row);
        let service = if hit {
            self.row_hits += 1;
            self.row_hit
        } else {
            self.row_miss
        };
        bank.busy_until = start + service;
        self.accesses += 1;
        self.total_wait += bank.busy_until - now;
        (bank.busy_until, hit)
    }

    /// Reset bank state between launches.
    pub fn flush(&mut self) {
        for b in &mut self.banks {
            *b = Bank::default();
        }
    }

    /// Row-buffer hit rate so far.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Average total wait (queuing + service) per access, in cycles.
    pub fn avg_wait(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.accesses as f64
        }
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&GpuConfig::fermi())
    }

    #[test]
    fn row_hit_is_cheaper_than_miss() {
        let mut d = dram();
        let t1 = d.access(0, 0); // row miss (cold)
                                 // Next line of the same channel (line index 6 -> channel 0,
                                 // channel-local line 1): same 2 KB row -> hit.
        let t2 = d.access(6 * 128, t1);
        assert_eq!(t1, 60);
        assert_eq!(t2 - t1, 20);
        assert!((d.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_bank_requests_serialise() {
        let mut d = dram();
        // Two simultaneous requests to the same line: second waits.
        let t1 = d.access(0, 100);
        let t2 = d.access(0, 100);
        assert!(t2 > t1, "bank must serialise: {t1} vs {t2}");
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut d = dram();
        // Lines 0 and 1 interleave to different channels.
        let t1 = d.access(0, 0);
        let t2 = d.access(128, 0);
        assert_eq!(t1, t2, "independent banks should not serialise");
    }

    #[test]
    fn queuing_delay_grows_under_load() {
        // Hammer one bank: average wait must exceed the bare service time
        // — the "variable M" effect the paper models (queuing delay).
        let mut d = dram();
        for _ in 0..32 {
            d.access(0, 0);
        }
        assert!(d.avg_wait() > d.row_hit as f64, "queuing must accumulate");
    }

    #[test]
    fn row_conflict_switches_open_row() {
        let mut d = dram();
        // Channel 0, bank 0, row 0.
        let t1 = d.access(0, 0);
        // Channel 0, bank 0, row 1: 16 pages later in the channel-local
        // space = 16 banks * 16 lines/page * 6 channels * 128 B.
        let same_bank_next_row = 16u64 * 16 * 6 * 128;
        let t2 = d.access(same_bank_next_row, t1);
        assert!(t2 - t1 >= 60, "row conflict should pay the miss penalty");
        assert_eq!(d.row_hit_rate(), 0.0);
    }

    #[test]
    fn flush_resets_banks() {
        let mut d = dram();
        d.access(0, 0);
        d.flush();
        let t = d.access(128, 0);
        assert_eq!(t, 60, "after flush the open row is forgotten");
    }
}

//! One streaming multiprocessor: resident blocks, warp scheduling, issue.

use crate::config::{GpuConfig, SchedPolicy};
use crate::memory::MemorySystem;
use crate::stats::SmStats;
use tbpoint_emu::{trace_warp, WarpTrace};
use tbpoint_ir::{ExecCtx, Kernel, LatencyClass, Op, TbId};
use tbpoint_obs::{NullRecorder, Recorder};

/// Runtime state of one resident warp.
#[derive(Debug)]
struct WarpRt {
    trace: WarpTrace,
    pc: usize,
    ready_at: u64,
    at_barrier: bool,
    done: bool,
    gtid_base: u64,
    birth: u64,
}

/// A thread block resident on the SM.
#[derive(Debug)]
struct ResidentBlock {
    tb_id: TbId,
    ctx: ExecCtx,
    warps: Vec<WarpRt>,
    live: u32,
    at_barrier: u32,
}

/// Outcome of one issue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueResult {
    /// Basic block of the issued instruction, if one issued.
    pub issued_bb: Option<u16>,
    /// Active-lane count of the issued instruction (thread instructions).
    pub issued_lanes: u32,
    /// A thread block that retired as a result of this issue.
    pub retired: Option<TbId>,
}

/// One SM core.
pub struct SmCore {
    /// This SM's index (selects its L1/MSHRs in the memory system).
    pub id: usize,
    slots: Vec<Option<ResidentBlock>>,
    rr_cursor: usize,
    gto_current: Option<(usize, usize)>,
    sched: SchedPolicy,
    alu_latency: u64,
    sfu_latency: u64,
    smem_latency: u64,
    /// Warp instructions issued by this SM.
    pub issued_warp_insts: u64,
    /// Thread instructions issued by this SM.
    pub issued_thread_insts: u64,
    /// Full per-SM statistics (mix, residency, retirements).
    pub stats: SmStats,
}

impl SmCore {
    /// An empty SM with `occupancy` block slots.
    pub fn new(id: usize, occupancy: u32, cfg: &GpuConfig) -> Self {
        SmCore {
            id,
            slots: (0..occupancy).map(|_| None).collect(),
            rr_cursor: 0,
            gto_current: None,
            sched: cfg.sched,
            alu_latency: cfg.alu_latency as u64,
            sfu_latency: cfg.sfu_latency as u64,
            smem_latency: cfg.smem_latency as u64,
            issued_warp_insts: 0,
            issued_thread_insts: 0,
            stats: SmStats::default(),
        }
    }

    /// Index of a free block slot, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.slots.iter().position(Option::is_none)
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Materialise traces for `tb_id` and install it in `slot`; the
    /// block's warps first become ready at `start` (>= now), letting the
    /// dispatcher stagger the initial fill.
    ///
    /// Returns `Some(tb_id)` immediately if every warp's trace is empty
    /// (the block retires without issuing anything).
    pub fn dispatch(
        &mut self,
        slot: usize,
        kernel: &Kernel,
        ctx: ExecCtx,
        tb_id: TbId,
        now: u64,
        start: u64,
    ) -> Option<TbId> {
        assert!(self.slots[slot].is_none(), "dispatch into occupied slot");
        let mut warps = Vec::with_capacity(kernel.warps_per_block() as usize);
        for w in 0..kernel.warps_per_block() {
            let trace = trace_warp(kernel, &ctx, w);
            let done = trace.is_empty();
            warps.push(WarpRt {
                trace,
                pc: 0,
                ready_at: now.max(start),
                at_barrier: false,
                done,
                gtid_base: ctx.block_id as u64 * kernel.threads_per_block as u64 + w as u64 * 32,
                birth: now,
            });
        }
        // warps.len() <= warps_per_block: u32 by construction.
        #[allow(clippy::cast_possible_truncation)]
        let live = warps.iter().filter(|w| !w.done).count() as u32;
        if live == 0 {
            return Some(tb_id); // degenerate block, retires instantly
        }
        self.slots[slot] = Some(ResidentBlock {
            tb_id,
            ctx,
            warps,
            live,
            at_barrier: 0,
        });
        None
    }

    fn pick_warp(&mut self, now: u64) -> Option<(usize, usize)> {
        let ready = |w: &WarpRt| !w.done && !w.at_barrier && w.ready_at <= now;
        // Flatten candidates as (slot, warp) pairs.
        match self.sched {
            SchedPolicy::RoundRobin => {
                // Walk (slot, warp) pairs starting from the cursor; the
                // cursor advances past each issued warp, giving loose
                // round-robin. Fixed-capacity scratch avoids allocating on
                // the issue path (resident warps <= max_warps_per_sm).
                let mut order = [(0u16, 0u16); 128];
                let mut len = 0usize;
                for (s, blk) in self.slots.iter().enumerate() {
                    if let Some(b) = blk {
                        for w in 0..b.warps.len() {
                            if len < order.len() {
                                // Slot and warp counts are both < 128.
                                #[allow(clippy::cast_possible_truncation)]
                                {
                                    order[len] = (s as u16, w as u16);
                                }
                                len += 1;
                            }
                        }
                    }
                }
                if len == 0 {
                    return None;
                }
                let start = self.rr_cursor % len;
                for k in 0..len {
                    let (s, w) = order[(start + k) % len];
                    let (s, w) = (s as usize, w as usize);
                    // `order` only names occupied slots.
                    let Some(b) = self.slots[s].as_ref() else {
                        continue;
                    };
                    if ready(&b.warps[w]) {
                        self.rr_cursor = (start + k + 1) % len;
                        return Some((s, w));
                    }
                }
                None
            }
            SchedPolicy::Gto => {
                // Stick with the current warp while it is ready.
                if let Some((s, w)) = self.gto_current {
                    if let Some(b) = self.slots[s].as_ref() {
                        if w < b.warps.len() && ready(&b.warps[w]) {
                            return Some((s, w));
                        }
                    }
                }
                // Otherwise the oldest ready warp.
                let mut best: Option<(u64, usize, usize)> = None;
                for (s, blk) in self.slots.iter().enumerate() {
                    if let Some(b) = blk {
                        for (w, warp) in b.warps.iter().enumerate() {
                            if ready(warp) && best.is_none_or(|(bb, _, _)| warp.birth < bb) {
                                best = Some((warp.birth, s, w));
                            }
                        }
                    }
                }
                let pick = best.map(|(_, s, w)| (s, w));
                self.gto_current = pick;
                pick
            }
        }
    }

    /// Attempt to issue one warp instruction at cycle `now`.
    pub fn try_issue(&mut self, now: u64, mem: &mut MemorySystem) -> IssueResult {
        self.try_issue_obs(now, mem, &NullRecorder)
    }

    /// [`SmCore::try_issue`] with observability: issue counters plus the
    /// cache/DRAM events the memory system emits. Monomorphised over the
    /// recorder, so `NullRecorder` compiles the instrumentation away.
    pub fn try_issue_obs<R: Recorder + ?Sized>(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        rec: &R,
    ) -> IssueResult {
        let Some((s, w)) = self.pick_warp(now) else {
            return IssueResult {
                issued_bb: None,
                issued_lanes: 0,
                retired: None,
            };
        };
        // pick_warp only returns occupied slots; an empty one issues nothing.
        let Some(block) = self.slots[s].as_mut() else {
            return IssueResult {
                issued_bb: None,
                issued_lanes: 0,
                retired: None,
            };
        };
        let ctx = block.ctx;
        let warp = &mut block.warps[w];
        let inst = warp.trace[warp.pc];
        warp.pc += 1;
        self.issued_warp_insts += 1;
        let lanes = inst.mask.count_ones();
        self.issued_thread_insts += lanes as u64;
        self.stats.issued_warp_insts += 1;
        self.stats.issued_thread_insts += lanes as u64;
        self.stats.mix.record(inst.op.latency_class());
        rec.counter("issued_warp_insts", 1);

        match inst.op.latency_class() {
            LatencyClass::Alu => warp.ready_at = now + self.alu_latency,
            LatencyClass::Sfu => warp.ready_at = now + self.sfu_latency,
            LatencyClass::SharedMem => warp.ready_at = now + self.smem_latency,
            LatencyClass::GlobalMem => {
                // Every GlobalMem op carries a pattern by construction of
                // the IR; a missing one degrades to ALU latency instead of
                // aborting the simulation.
                if let Some(pat) = inst.op.addr_pattern() {
                    let lines = pat.coalesced_lines(
                        &ctx,
                        warp.gtid_base,
                        inst.mask,
                        inst.iter_key,
                        inst.site,
                    );
                    let is_store = matches!(inst.op, Op::StGlobal(_));
                    if is_store {
                        for line in lines.iter() {
                            mem.store_obs(self.id, line, now, rec);
                        }
                        // Fire-and-forget: the warp only pays issue latency.
                        warp.ready_at = now + self.alu_latency;
                    } else {
                        let mut done_at = now + self.alu_latency;
                        for line in lines.iter() {
                            done_at = done_at.max(mem.load_obs(self.id, line, now, rec));
                        }
                        warp.ready_at = done_at;
                        self.stats.load_latency_sum += done_at - now;
                        self.stats.loads_waited += 1;
                        rec.counter("load_wait_cycles", done_at - now);
                    }
                } else {
                    warp.ready_at = now + self.alu_latency;
                }
            }
            LatencyClass::Barrier => {
                warp.at_barrier = true;
                warp.ready_at = now + 1;
                block.at_barrier += 1;
            }
        }

        // Trace exhausted?
        let mut retired = None;
        if warp.pc >= warp.trace.len() {
            warp.done = true;
            // A warp cannot end on an unreleased barrier (validated IR),
            // but guard the accounting anyway.
            if warp.at_barrier {
                warp.at_barrier = false;
                block.at_barrier -= 1;
            }
            block.live -= 1;
            if block.live == 0 {
                retired = Some(block.tb_id);
                self.stats.blocks_retired += 1;
                self.slots[s] = None;
                if self.gto_current == Some((s, w)) {
                    self.gto_current = None;
                }
            }
        }

        // Barrier release: all live warps arrived.
        if let Some(b) = self.slots[s].as_mut() {
            if b.at_barrier > 0 && b.at_barrier == b.live {
                for warp in &mut b.warps {
                    if warp.at_barrier {
                        warp.at_barrier = false;
                        warp.ready_at = warp.ready_at.max(now + 1);
                    }
                }
                b.at_barrier = 0;
            }
        }

        IssueResult {
            issued_bb: Some(inst.bb),
            issued_lanes: lanes,
            retired,
        }
    }

    /// The earliest cycle at which some warp could issue, or `None` when
    /// the SM has nothing issueable (empty, or everything at a barrier
    /// that cannot release without external progress — impossible for
    /// validated kernels).
    pub fn next_ready(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for blk in self.slots.iter().flatten() {
            for w in &blk.warps {
                if !w.done && !w.at_barrier {
                    best = Some(best.map_or(w.ready_at, |b: u64| b.min(w.ready_at)));
                }
            }
        }
        best
    }

    /// True when no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Credit `delta` cycles of residency if any block is resident
    /// (called by the simulator's cycle loop, including over skipped
    /// idle spans).
    pub fn credit_resident_cycles(&mut self, delta: u64) {
        if !self.is_empty() {
            self.stats.resident_cycles += delta;
        }
    }
}

//! One streaming multiprocessor: resident blocks, warp scheduling, issue.

use crate::config::{GpuConfig, SchedPolicy};
use crate::memory::MemorySystem;
use crate::stats::SmStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use tbpoint_emu::{TbStats, TraceArena, TraceInst};
use tbpoint_ir::{ExecCtx, Kernel, LatencyClass, Op, TbId};
use tbpoint_obs::{NullRecorder, Recorder};

/// Runtime state of one resident warp.
#[derive(Debug)]
struct WarpRt {
    /// Interned trace — identical warps across blocks share one
    /// allocation (see [`tbpoint_emu::TraceArena`]).
    trace: Arc<[TraceInst]>,
    pc: usize,
    ready_at: u64,
    at_barrier: bool,
    done: bool,
    gtid_base: u64,
    birth: u64,
}

/// A thread block resident on the SM.
#[derive(Debug)]
struct ResidentBlock {
    tb_id: TbId,
    ctx: ExecCtx,
    warps: Vec<WarpRt>,
    live: u32,
    at_barrier: u32,
    /// Warp instructions not yet issued, across all warps. An SM issues
    /// at most one instruction per cycle, so a block with `remaining`
    /// left cannot retire before `now + remaining - 1` — the bound the
    /// parallel simulator's window sizing rests on
    /// ([`SmCore::earliest_retire_bound`]).
    remaining: u64,
    /// Feature counters accumulated at issue time — at retirement they
    /// equal exactly what the profiler would have recorded for this
    /// block ([`tbpoint_emu::profile_tb`] counts the same events), which
    /// is what lets the live sampler run without a profiling pass.
    stats: TbStats,
}

/// How the memory backend resolved one coalesced load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoadOutcome {
    /// Completion cycle known now (serial path, or an all-L1-hit load on
    /// the sharded path).
    Done(u64),
    /// Completion depends on shared state the shard cannot touch; the
    /// warp sleeps with `ready_at = u64::MAX` until the window barrier
    /// resolves it via [`SmCore::resolve_deferred_load`].
    Deferred,
}

/// The memory side of an issue: where a global-memory instruction's
/// coalesced lines go. The serial simulator walks the full hierarchy
/// inline ([`DirectMem`]); the sharded simulator probes the shard-local
/// L1 and buffers the shared-path remainder for the window barrier.
/// [`SmCore::try_issue_mem`] is monomorphised over this, so both paths
/// run the identical issue body.
pub(crate) trait IssueMem {
    /// Resolve the lines of one load from SM `sm` (slot/warp identify the
    /// issuing warp for deferred resolution); `alu_done` is the issue
    /// pipeline floor (`now + alu_latency`).
    fn load(
        &mut self,
        sm: usize,
        slot: usize,
        warp: usize,
        lines: &tbpoint_ir::inst::CoalescedLines,
        now: u64,
        alu_done: u64,
    ) -> LoadOutcome;

    /// Resolve the lines of one store (fire-and-forget).
    fn store(&mut self, sm: usize, lines: &tbpoint_ir::inst::CoalescedLines, now: u64);
}

/// The serial backend: the classic inline walk through [`MemorySystem`].
pub(crate) struct DirectMem<'a, 'r, R: Recorder + ?Sized> {
    pub mem: &'a mut MemorySystem,
    pub rec: &'r R,
}

impl<R: Recorder + ?Sized> IssueMem for DirectMem<'_, '_, R> {
    // tbpoint-phase: coordinator
    fn load(
        &mut self,
        sm: usize,
        _slot: usize,
        _warp: usize,
        lines: &tbpoint_ir::inst::CoalescedLines,
        now: u64,
        alu_done: u64,
    ) -> LoadOutcome {
        let mut done_at = alu_done;
        for line in lines.iter() {
            done_at = done_at.max(self.mem.load_obs(sm, line, now, self.rec));
        }
        LoadOutcome::Done(done_at)
    }

    // tbpoint-phase: coordinator
    fn store(&mut self, sm: usize, lines: &tbpoint_ir::inst::CoalescedLines, now: u64) {
        for line in lines.iter() {
            self.mem.store_obs(sm, line, now, self.rec);
        }
    }
}

/// Outcome of one issue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueResult {
    /// Basic block of the issued instruction, if one issued.
    pub issued_bb: Option<u16>,
    /// Active-lane count of the issued instruction (thread instructions).
    pub issued_lanes: u32,
    /// A thread block that retired as a result of this issue.
    pub retired: Option<TbId>,
    /// The retired block's accumulated feature counters (meaningful only
    /// when `retired` is `Some`; zeroed otherwise). Streamed to the
    /// sampling hook so live mode needs no separate profiling pass.
    pub retired_stats: TbStats,
}

/// One SM core.
pub struct SmCore {
    /// This SM's index (selects its L1/MSHRs in the memory system).
    pub id: usize,
    slots: Vec<Option<ResidentBlock>>,
    /// Free slot indices, min-first — `free_slot` must keep returning the
    /// *lowest* free index (slot order feeds the round-robin scheduler,
    /// so any other order would perturb issue order).
    free_slots: BinaryHeap<Reverse<u32>>,
    /// Resident-block count, maintained at dispatch/retire so occupancy
    /// queries stop scanning `slots`.
    resident: u32,
    /// Conservative lower bound on the next cycle at which some warp
    /// could issue; `u64::MAX` when nothing is issueable. Lowered at
    /// dispatch, reset to `now` on every issue, raised to the exact
    /// candidate minimum by a failed scheduling scan. `try_issue` returns
    /// without scanning while `now < ready_hint`.
    ready_hint: u64,
    /// Event-horizon switch: when false, `try_issue` always scans (the
    /// pre-optimisation reference behaviour golden tests compare against).
    use_hint: bool,
    rr_cursor: usize,
    gto_current: Option<(usize, usize)>,
    sched: SchedPolicy,
    alu_latency: u64,
    sfu_latency: u64,
    smem_latency: u64,
    /// Warp instructions issued by this SM.
    pub issued_warp_insts: u64,
    /// Thread instructions issued by this SM.
    pub issued_thread_insts: u64,
    /// Full per-SM statistics (mix, residency, retirements).
    pub stats: SmStats,
}

impl SmCore {
    /// An empty SM with `occupancy` block slots.
    pub fn new(id: usize, occupancy: u32, cfg: &GpuConfig) -> Self {
        SmCore {
            id,
            slots: (0..occupancy).map(|_| None).collect(),
            free_slots: (0..occupancy).map(Reverse).collect(),
            resident: 0,
            ready_hint: u64::MAX,
            use_hint: true,
            rr_cursor: 0,
            gto_current: None,
            sched: cfg.sched,
            alu_latency: cfg.alu_latency as u64,
            sfu_latency: cfg.sfu_latency as u64,
            smem_latency: cfg.smem_latency as u64,
            issued_warp_insts: 0,
            issued_thread_insts: 0,
            stats: SmStats::default(),
        }
    }

    /// Index of a free block slot, if any — always the lowest free index,
    /// matching the linear scan this replaced.
    pub fn free_slot(&self) -> Option<usize> {
        self.free_slots.peek().map(|&Reverse(s)| s as usize)
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.resident as usize
    }

    /// Disable the `ready_hint` fast path so every `try_issue` performs a
    /// full scheduling scan (the cycle-stepped reference the bit-identity
    /// golden suite compares the event horizon against).
    #[doc(hidden)]
    pub fn set_event_horizon(&mut self, on: bool) {
        self.use_hint = on;
    }

    /// Remove `slot` from the free pool (it is about to be occupied).
    fn take_free_slot(&mut self, slot: usize) {
        match self.free_slots.peek() {
            // The dispatcher grabs slots via `free_slot`, so the common
            // case is popping the minimum.
            Some(&Reverse(s)) if s as usize == slot => {
                self.free_slots.pop();
            }
            _ => {
                let mut v = std::mem::take(&mut self.free_slots).into_vec();
                v.retain(|&Reverse(s)| s as usize != slot);
                self.free_slots = v.into();
            }
        }
    }

    /// Materialise (or intern) traces for `tb_id` and install it in
    /// `slot`; the block's warps first become ready at `start` (>= now),
    /// letting the dispatcher stagger the initial fill.
    ///
    /// Returns `Some(tb_id)` immediately if every warp's trace is empty
    /// (the block retires without issuing anything).
    // Eight arguments: the dispatcher's full per-block context. Bundling
    // them into a one-shot struct would only move the same fields.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch(
        &mut self,
        slot: usize,
        kernel: &Kernel,
        ctx: ExecCtx,
        tb_id: TbId,
        now: u64,
        start: u64,
        arena: &mut TraceArena,
    ) -> Option<TbId> {
        assert!(self.slots[slot].is_none(), "dispatch into occupied slot");
        let mut warps = Vec::with_capacity(kernel.warps_per_block() as usize);
        for w in 0..kernel.warps_per_block() {
            let trace = arena.warp_trace(kernel, &ctx, w);
            let done = trace.is_empty();
            warps.push(WarpRt {
                trace,
                pc: 0,
                ready_at: now.max(start),
                at_barrier: false,
                done,
                gtid_base: ctx.block_id as u64 * kernel.threads_per_block as u64 + w as u64 * 32,
                birth: now,
            });
        }
        // warps.len() <= warps_per_block: u32 by construction.
        #[allow(clippy::cast_possible_truncation)]
        let live = warps.iter().filter(|w| !w.done).count() as u32;
        if live == 0 {
            return Some(tb_id); // degenerate block, retires instantly
        }
        let remaining = warps
            .iter()
            .map(|w| u64::try_from(w.trace.len()).unwrap_or(u64::MAX))
            .fold(0u64, u64::saturating_add);
        self.take_free_slot(slot);
        self.resident += 1;
        // New warps wake at `start` — lower the hint so the fast path
        // cannot skip past them.
        self.ready_hint = self.ready_hint.min(now.max(start));
        self.slots[slot] = Some(ResidentBlock {
            tb_id,
            ctx,
            warps,
            live,
            at_barrier: 0,
            remaining,
            stats: TbStats::default(),
        });
        None
    }

    /// Select a warp to issue at `now`, maintaining `ready_hint` as a
    /// side effect: a successful pick resets it to `now` (forcing a full
    /// scan next cycle, so scheduler bookkeeping such as `gto_current`
    /// stays exactly as in the always-scan reference), and a failed scan
    /// raises it to the exact minimum `ready_at` among candidate warps
    /// (`u64::MAX` when none exist).
    // tbpoint-hot
    fn pick_warp(&mut self, now: u64) -> Option<(usize, usize)> {
        let ready = |w: &WarpRt| !w.done && !w.at_barrier && w.ready_at <= now;
        // Flatten candidates as (slot, warp) pairs.
        let picked = match self.sched {
            SchedPolicy::RoundRobin => 'rr: {
                // Walk (slot, warp) pairs starting from the cursor; the
                // cursor advances past each issued warp, giving loose
                // round-robin. Fixed-capacity scratch avoids allocating on
                // the issue path (resident warps <= max_warps_per_sm).
                let mut order = [(0u16, 0u16); 128];
                let mut len = 0usize;
                for (s, blk) in self.slots.iter().enumerate() {
                    if let Some(b) = blk {
                        for w in 0..b.warps.len() {
                            if len < order.len() {
                                // Slot and warp counts are both < 128.
                                #[allow(clippy::cast_possible_truncation)]
                                {
                                    order[len] = (s as u16, w as u16);
                                }
                                len += 1;
                            }
                        }
                    }
                }
                if len == 0 {
                    break 'rr None;
                }
                let start = self.rr_cursor % len;
                let mut pick = None;
                let mut wake = u64::MAX;
                for k in 0..len {
                    let (s, w) = order[(start + k) % len];
                    let (s, w) = (s as usize, w as usize);
                    // `order` only names occupied slots.
                    let Some(b) = self.slots[s].as_ref() else {
                        continue;
                    };
                    let warp = &b.warps[w];
                    if ready(warp) {
                        self.rr_cursor = (start + k + 1) % len;
                        pick = Some((s, w));
                        break;
                    }
                    if !warp.done && !warp.at_barrier {
                        wake = wake.min(warp.ready_at);
                    }
                }
                if pick.is_none() {
                    self.ready_hint = wake;
                }
                pick
            }
            SchedPolicy::Gto => 'gto: {
                // Stick with the current warp while it is ready.
                if let Some((s, w)) = self.gto_current {
                    if let Some(b) = self.slots[s].as_ref() {
                        if w < b.warps.len() && ready(&b.warps[w]) {
                            break 'gto Some((s, w));
                        }
                    }
                }
                // Otherwise the oldest ready warp.
                let mut best: Option<(u64, usize, usize)> = None;
                let mut wake = u64::MAX;
                for (s, blk) in self.slots.iter().enumerate() {
                    if let Some(b) = blk {
                        for (w, warp) in b.warps.iter().enumerate() {
                            if ready(warp) {
                                if best.is_none_or(|(bb, _, _)| warp.birth < bb) {
                                    best = Some((warp.birth, s, w));
                                }
                            } else if !warp.done && !warp.at_barrier {
                                wake = wake.min(warp.ready_at);
                            }
                        }
                    }
                }
                let pick = best.map(|(_, s, w)| (s, w));
                self.gto_current = pick;
                if pick.is_none() {
                    self.ready_hint = wake;
                }
                pick
            }
        };
        if picked.is_some() {
            self.ready_hint = now;
        }
        picked
    }

    /// Attempt to issue one warp instruction at cycle `now`.
    // tbpoint-phase: coordinator
    pub fn try_issue(&mut self, now: u64, mem: &mut MemorySystem) -> IssueResult {
        self.try_issue_obs(now, mem, &NullRecorder)
    }

    /// [`SmCore::try_issue`] with observability: issue counters plus the
    /// cache/DRAM events the memory system emits. Monomorphised over the
    /// recorder, so `NullRecorder` compiles the instrumentation away.
    // tbpoint-phase: coordinator
    pub fn try_issue_obs<R: Recorder + ?Sized>(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        rec: &R,
    ) -> IssueResult {
        let mut port = DirectMem { mem, rec };
        self.try_issue_mem(now, &mut port, rec)
    }

    /// The one issue body, generic over where memory traffic goes
    /// ([`IssueMem`]): the serial walk and the sharded window runner both
    /// compile down from this, which is what keeps them bit-identical by
    /// construction rather than by parallel maintenance.
    // tbpoint-hot
    pub(crate) fn try_issue_mem<M: IssueMem, R: Recorder + ?Sized>(
        &mut self,
        now: u64,
        mem: &mut M,
        rec: &R,
    ) -> IssueResult {
        // Event-horizon fast path. `now < ready_hint` implies a *failed*
        // scan already ran since the last issue (issuing resets the hint
        // to its cycle, so the first attempt after it always scans) and
        // proved no warp wakes before `ready_hint`; nothing lowers the
        // hint below `now` except dispatch, which maintains it. A repeat
        // scan would fail again and failed scans are idempotent (the
        // first one already cleared `gto_current`), so skipping them is
        // free of observable effects.
        if self.use_hint && now < self.ready_hint {
            return IssueResult {
                issued_bb: None,
                issued_lanes: 0,
                retired: None,
                retired_stats: TbStats::default(),
            };
        }
        let Some((s, w)) = self.pick_warp(now) else {
            return IssueResult {
                issued_bb: None,
                issued_lanes: 0,
                retired: None,
                retired_stats: TbStats::default(),
            };
        };
        // pick_warp only returns occupied slots; an empty one issues nothing.
        let Some(block) = self.slots[s].as_mut() else {
            return IssueResult {
                issued_bb: None,
                issued_lanes: 0,
                retired: None,
                retired_stats: TbStats::default(),
            };
        };
        let ctx = block.ctx;
        block.remaining = block.remaining.saturating_sub(1);
        let warp = &mut block.warps[w];
        let inst = warp.trace[warp.pc];
        warp.pc += 1;
        self.issued_warp_insts += 1;
        let lanes = inst.mask.count_ones();
        self.issued_thread_insts += lanes as u64;
        block.stats.warp_insts += 1;
        block.stats.thread_insts += lanes as u64;
        self.stats.issued_warp_insts += 1;
        self.stats.issued_thread_insts += lanes as u64;
        self.stats.mix.record(inst.op.latency_class());
        rec.counter("issued_warp_insts", 1);

        match inst.op.latency_class() {
            LatencyClass::Alu => warp.ready_at = now + self.alu_latency,
            LatencyClass::Sfu => warp.ready_at = now + self.sfu_latency,
            LatencyClass::SharedMem => warp.ready_at = now + self.smem_latency,
            LatencyClass::GlobalMem => {
                // Every GlobalMem op carries a pattern by construction of
                // the IR; a missing one degrades to ALU latency instead of
                // aborting the simulation.
                if let Some(pat) = inst.op.addr_pattern() {
                    let lines = pat.coalesced_lines(
                        &ctx,
                        warp.gtid_base,
                        inst.mask,
                        inst.iter_key,
                        inst.site,
                    );
                    // Same count the profiler records: coalesced lines,
                    // loads and stores alike.
                    block.stats.mem_requests += lines.len() as u64;
                    let is_store = matches!(inst.op, Op::StGlobal(_));
                    if is_store {
                        mem.store(self.id, &lines, now);
                        // Fire-and-forget: the warp only pays issue latency.
                        warp.ready_at = now + self.alu_latency;
                    } else {
                        match mem.load(self.id, s, w, &lines, now, now + self.alu_latency) {
                            LoadOutcome::Done(done_at) => {
                                warp.ready_at = done_at;
                                self.stats.load_latency_sum += done_at - now;
                                self.stats.loads_waited += 1;
                                rec.counter("load_wait_cycles", done_at - now);
                            }
                            LoadOutcome::Deferred => {
                                // Asleep until the window barrier resolves
                                // the shared half of the access.
                                warp.ready_at = u64::MAX;
                            }
                        }
                    }
                } else {
                    warp.ready_at = now + self.alu_latency;
                }
            }
            LatencyClass::Barrier => {
                warp.at_barrier = true;
                warp.ready_at = now + 1;
                block.at_barrier += 1;
            }
        }

        // Trace exhausted?
        let mut retired = None;
        let mut retired_stats = TbStats::default();
        if warp.pc >= warp.trace.len() {
            warp.done = true;
            // A warp cannot end on an unreleased barrier (validated IR),
            // but guard the accounting anyway.
            if warp.at_barrier {
                warp.at_barrier = false;
                block.at_barrier -= 1;
            }
            block.live -= 1;
            if block.live == 0 {
                retired = Some(block.tb_id);
                retired_stats = block.stats;
                self.stats.blocks_retired += 1;
                self.slots[s] = None;
                self.resident -= 1;
                // Slot indices are occupancy-bounded (tens), far below u32.
                #[allow(clippy::cast_possible_truncation)]
                self.free_slots.push(Reverse(s as u32));
                if self.gto_current == Some((s, w)) {
                    self.gto_current = None;
                }
            }
        }

        // Barrier release: all live warps arrived.
        if let Some(b) = self.slots[s].as_mut() {
            if b.at_barrier > 0 && b.at_barrier == b.live {
                for warp in &mut b.warps {
                    if warp.at_barrier {
                        warp.at_barrier = false;
                        warp.ready_at = warp.ready_at.max(now + 1);
                    }
                }
                b.at_barrier = 0;
            }
        }

        IssueResult {
            issued_bb: Some(inst.bb),
            issued_lanes: lanes,
            retired,
            retired_stats,
        }
    }

    /// The earliest cycle at which some warp could issue, or `None` when
    /// the SM has nothing issueable (empty, or everything at a barrier
    /// that cannot release without external progress — impossible for
    /// validated kernels).
    pub fn next_ready(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for blk in self.slots.iter().flatten() {
            for w in &blk.warps {
                if !w.done && !w.at_barrier {
                    best = Some(best.map_or(w.ready_at, |b: u64| b.min(w.ready_at)));
                }
            }
        }
        best
    }

    /// The maintained lower bound on this SM's next issueable cycle
    /// (`u64::MAX` when nothing is issueable). Exact whenever the last
    /// scheduling scan failed — which is the case on every SM when the
    /// machine as a whole is idle, making `min` over the hints the global
    /// event horizon the cycle loop can jump to.
    pub fn ready_hint(&self) -> u64 {
        self.ready_hint
    }

    /// True when no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// Credit `delta` cycles of residency if any block is resident
    /// (called by the simulator's cycle loop, including over skipped
    /// idle spans).
    pub fn credit_resident_cycles(&mut self, delta: u64) {
        if !self.is_empty() {
            self.stats.resident_cycles += delta;
        }
    }

    /// Resolve a load deferred at (`slot`, `warp`) during a parallel
    /// window: the barrier replay computed `done_at` from the shared
    /// hierarchy, exactly as the serial walk would have at `issued_at`.
    /// Accounting mirrors the serial issue site; the wake lowers
    /// `ready_hint` so the fast path cannot skip the warp. A `None` slot
    /// means the block retired at the issue cycle (a last-instruction
    /// load) — the stats are still credited, as serial does before
    /// retirement bookkeeping.
    // tbpoint-phase: coordinator
    // tbpoint-hot
    pub(crate) fn resolve_deferred_load<R: Recorder + ?Sized>(
        &mut self,
        slot: usize,
        warp: usize,
        done_at: u64,
        issued_at: u64,
        rec: &R,
    ) {
        self.stats.load_latency_sum += done_at - issued_at;
        self.stats.loads_waited += 1;
        rec.counter("load_wait_cycles", done_at - issued_at);
        if let Some(b) = self.slots[slot].as_mut() {
            let w = &mut b.warps[warp];
            w.ready_at = done_at;
            if !w.done {
                self.ready_hint = self.ready_hint.min(done_at);
            }
        }
    }

    /// A lower bound on the earliest cycle (>= `from`) at which any
    /// resident block could retire; `u64::MAX` when none are resident.
    ///
    /// Two bounds compose per block, and retirement happens at the issue
    /// of the block's final instruction, so both are sound:
    /// * the SM issues at most one instruction per cycle, so a block with
    ///   `remaining` instructions left cannot see its last one issue
    ///   before `from + remaining - 1`;
    /// * every live warp must still issue its own tail: its last
    ///   instruction lands no earlier than
    ///   `max(from, ready_at) + warp_remaining - 1` (`ready_at` is a
    ///   lower bound on availability even for warps parked at a barrier,
    ///   whose release can only push it later).
    ///
    /// Must be called with no unresolved deferred loads (their
    /// `ready_at == u64::MAX` sentinel would inflate the bound); the
    /// coordinator computes it only after barrier resolution.
    // tbpoint-hot
    pub(crate) fn earliest_retire_bound(&self, from: u64) -> u64 {
        let mut best = u64::MAX;
        for blk in self.slots.iter().flatten() {
            let mut bound = from.saturating_add(blk.remaining).saturating_sub(1);
            for w in &blk.warps {
                if w.done {
                    continue;
                }
                let rem = u64::try_from(w.trace.len() - w.pc).unwrap_or(u64::MAX);
                let avail = from.max(w.ready_at);
                bound = bound.max(avail.saturating_add(rem).saturating_sub(1));
            }
            best = best.min(bound);
        }
        best
    }
}

//! Runtime sanitizer for the parallel window protocol's phase
//! discipline (`shadow-check` feature).
//!
//! The static `barrier-phase-discipline` rule proves no *source
//! location* in a shard-phase function touches cross-SM shared state.
//! This module checks the dynamic half of the same invariant: every
//! thread carries a current phase (thread-local), the parallel
//! simulator brackets shard windows and coordinator coupling with
//! [`enter`] guards, and [`SharedMemPath`](crate::memory) calls
//! [`check_shared_access`] on each shared-path access, asserting the
//! caller is not in the shard phase. Together with the golden
//! bit-identity suites this executes the invariant on real workloads
//! instead of trusting the annotation roster.
//!
//! With the feature off (the default), everything here is a zero-cost
//! inline no-op, so the hot path pays nothing in production builds.

#[cfg(feature = "shadow-check")]
mod imp {
    use std::cell::Cell;

    /// Which part of the window protocol the current thread is in.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Phase {
        /// Not inside the parallel protocol (serial simulation, setup,
        /// teardown). Owns the whole machine; shared access is fine.
        Serial,
        /// Inside a shard's cycle window: cross-SM shared state is off
        /// limits — shards may only buffer requests.
        Shard,
        /// At a window barrier applying cross-SM coupling.
        Coordinator,
    }

    thread_local! {
        static PHASE: Cell<Phase> = const { Cell::new(Phase::Serial) };
        static CHECKS: Cell<u64> = const { Cell::new(0) };
    }

    /// Restores the previous phase on drop, so guards nest (the
    /// coordinator runs shard 0's window inline under a shard guard and
    /// pops back to its own phase afterwards).
    #[must_use]
    pub struct PhaseGuard {
        prev: Phase,
    }

    impl Drop for PhaseGuard {
        fn drop(&mut self) {
            PHASE.with(|p| p.set(self.prev));
        }
    }

    /// Enter `phase` on the current thread until the guard drops.
    pub fn enter(phase: Phase) -> PhaseGuard {
        let prev = PHASE.with(|p| {
            let prev = p.get();
            p.set(phase);
            prev
        });
        PhaseGuard { prev }
    }

    /// Record one shared-path access and assert the phase discipline:
    /// shard-phase code must never reach cross-SM shared state.
    pub fn check_shared_access(site: &str) {
        CHECKS.with(|c| c.set(c.get() + 1));
        PHASE.with(|p| {
            debug_assert!(
                p.get() != Phase::Shard,
                "phase-discipline violation: `{site}` touched cross-SM shared \
                 state from inside a shard window; shards must buffer the \
                 request for barrier replay"
            );
        });
    }

    /// How many shared-path accesses this thread has phase-checked.
    /// Tests assert this is non-zero to prove the sanitizer actually ran.
    pub fn checks_on_this_thread() -> u64 {
        CHECKS.with(Cell::get)
    }
}

#[cfg(not(feature = "shadow-check"))]
mod imp {
    /// Which part of the window protocol the current thread is in.
    /// (Stub: the `shadow-check` feature is off.)
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Phase {
        /// Not inside the parallel protocol.
        Serial,
        /// Inside a shard's cycle window.
        Shard,
        /// At a window barrier applying cross-SM coupling.
        Coordinator,
    }

    /// No-op guard (feature off).
    #[must_use]
    pub struct PhaseGuard;

    /// No-op (feature off); compiles away.
    #[inline(always)]
    pub fn enter(_phase: Phase) -> PhaseGuard {
        PhaseGuard
    }

    /// No-op (feature off); compiles away.
    #[inline(always)]
    pub fn check_shared_access(_site: &str) {}

    /// Always zero with the feature off.
    #[inline(always)]
    pub fn checks_on_this_thread() -> u64 {
        0
    }
}

pub use imp::{check_shared_access, checks_on_this_thread, enter, Phase, PhaseGuard};

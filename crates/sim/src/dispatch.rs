//! The sampling hook: how a sampler plugs into the thread-block
//! dispatcher.
//!
//! The paper's homogeneous-region sampling operates entirely at TB
//! dispatch/retire granularity (Section IV-B2): *entering* a region is
//! detected from the region ids of concurrently resident TBs, *warming*
//! measures per-sampling-unit IPC, and *fast-forwarding* skips dispatched
//! TBs outright. All of that is expressible through two callbacks, which
//! keeps the simulator core ignorant of sampling policy.

use tbpoint_emu::TbStats;
use tbpoint_ir::TbId;

/// What to do with a thread block that is about to be dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchDecision {
    /// Simulate the block normally.
    Simulate,
    /// Skip it: the block retires instantly, consuming no SM resources
    /// and issuing no instructions (the fast-forward period).
    Skip,
}

/// Observer/controller of the dispatch stream.
///
/// `cycle` is the current simulation cycle and `issued_warp_insts` the
/// total warp instructions issued so far across all SMs — together they
/// let a hook compute sampling-unit IPCs without touching simulator
/// internals.
pub trait SamplingHook {
    /// Called once per thread block immediately before dispatch.
    fn on_dispatch(&mut self, tb: TbId, cycle: u64, issued_warp_insts: u64) -> DispatchDecision;

    /// Called when a *simulated* thread block retires. Skipped blocks do
    /// not generate retire events (the hook already knows it skipped
    /// them).
    fn on_retire(&mut self, tb: TbId, cycle: u64, issued_warp_insts: u64);

    /// [`SamplingHook::on_retire`] with the retired block's accumulated
    /// feature counters ([`TbStats`]) — the retire-time profile stream
    /// live sampling runs on. The simulator always calls this variant;
    /// the default implementation drops the stats and delegates to
    /// `on_retire`, so hooks that don't need features stay unchanged.
    fn on_retire_stats(&mut self, tb: TbId, cycle: u64, issued_warp_insts: u64, stats: TbStats) {
        let _ = stats;
        self.on_retire(tb, cycle, issued_warp_insts);
    }
}

/// The "Full" configuration: simulate everything, observe nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSampling;

impl SamplingHook for NullSampling {
    fn on_dispatch(&mut self, _tb: TbId, _cycle: u64, _issued: u64) -> DispatchDecision {
        DispatchDecision::Simulate
    }

    fn on_retire(&mut self, _tb: TbId, _cycle: u64, _issued: u64) {}
}

/// Watchdog wrapper: forwards to an inner hook until the simulated clock
/// passes `budget` cycles, then skips every further dispatch so the
/// launch drains quickly instead of running away.
///
/// Skipped-past-budget blocks consume no SM resources, so once the
/// budget trips the simulation finishes in at most the lifetime of the
/// already-resident blocks. The caller checks [`CycleBudgetHook::exceeded`]
/// after simulation and must treat a tripped run's numbers as garbage
/// (TBPoint's pipeline surfaces it as `TbError::BudgetExceeded`).
#[derive(Debug)]
pub struct CycleBudgetHook<'a, H: SamplingHook + ?Sized> {
    inner: &'a mut H,
    budget: u64,
    exceeded: bool,
}

impl<'a, H: SamplingHook + ?Sized> CycleBudgetHook<'a, H> {
    /// Wrap `inner`, aborting dispatch once `cycle > budget`.
    pub fn new(inner: &'a mut H, budget: u64) -> Self {
        CycleBudgetHook {
            inner,
            budget,
            exceeded: false,
        }
    }

    /// True once a dispatch arrived past the budget (the run's results
    /// are then meaningless).
    pub fn exceeded(&self) -> bool {
        self.exceeded
    }
}

impl<H: SamplingHook + ?Sized> SamplingHook for CycleBudgetHook<'_, H> {
    fn on_dispatch(&mut self, tb: TbId, cycle: u64, issued: u64) -> DispatchDecision {
        if cycle > self.budget {
            self.exceeded = true;
        }
        if self.exceeded {
            // Drain mode: don't consult the inner hook (its accounting is
            // already invalid) — just get the launch over with.
            return DispatchDecision::Skip;
        }
        self.inner.on_dispatch(tb, cycle, issued)
    }

    fn on_retire(&mut self, tb: TbId, cycle: u64, issued: u64) {
        if !self.exceeded {
            self.inner.on_retire(tb, cycle, issued);
        }
    }

    fn on_retire_stats(&mut self, tb: TbId, cycle: u64, issued: u64, stats: TbStats) {
        if !self.exceeded {
            self.inner.on_retire_stats(tb, cycle, issued, stats);
        }
    }
}

/// Test helper: skip an explicit set of TB ids (used by simulator tests;
/// real policies live in `tbpoint-core`).
#[derive(Debug, Clone, Default)]
pub struct SkipList {
    /// TB ids to skip.
    pub skip: std::collections::BTreeSet<u32>,
    /// Dispatch events observed, in order.
    pub dispatched: Vec<u32>,
    /// Retire events observed, in order.
    pub retired: Vec<u32>,
}

impl SamplingHook for SkipList {
    fn on_dispatch(&mut self, tb: TbId, _cycle: u64, _issued: u64) -> DispatchDecision {
        self.dispatched.push(tb.0);
        if self.skip.contains(&tb.0) {
            DispatchDecision::Skip
        } else {
            DispatchDecision::Simulate
        }
    }

    fn on_retire(&mut self, tb: TbId, _cycle: u64, _issued: u64) {
        self.retired.push(tb.0);
    }
}

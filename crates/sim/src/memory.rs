//! The memory hierarchy glue: per-SM L1s and MSHRs, shared L2, DRAM.
//!
//! Requests are resolved analytically at issue time: the access walks
//! L1 -> L2 -> DRAM, accumulating traversal latency plus the DRAM bank's
//! queuing delay, and returns the completion cycle. The issuing warp
//! sleeps until then. MSHR exhaustion back-pressures the SM by pushing the
//! effective issue time of further misses behind the earliest outstanding
//! completion — long-latency divergent access bursts therefore serialise,
//! exactly the behaviour that makes memory-divergent thread blocks slow.

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::dram::Dram;
use crate::shadow;
use std::collections::BinaryHeap;
use tbpoint_obs::{EventKind, NullRecorder, Recorder};

/// Min-heap of outstanding-miss completion times for one SM.
#[derive(Debug, Default)]
struct MshrPool {
    // BinaryHeap is a max-heap; store negated times via Reverse.
    outstanding: BinaryHeap<std::cmp::Reverse<u64>>,
    capacity: usize,
}

impl MshrPool {
    fn new(capacity: usize) -> Self {
        MshrPool {
            outstanding: BinaryHeap::new(),
            capacity,
        }
    }

    /// Earliest cycle at which a new miss may issue, given `now`.
    // tbpoint-hot
    fn issue_time(&mut self, now: u64) -> u64 {
        // Retire completed entries.
        while let Some(&std::cmp::Reverse(t)) = self.outstanding.peek() {
            if t <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        if self.outstanding.len() < self.capacity {
            now
        } else {
            // Full: the next miss waits for the earliest completion.
            // `capacity > 0` implies the queue is nonempty here; `now` is
            // the (unreachable) empty-queue fallback.
            match self.outstanding.pop() {
                Some(std::cmp::Reverse(t)) => t.max(now),
                None => now,
            }
        }
    }

    fn register(&mut self, completes_at: u64) {
        self.outstanding.push(std::cmp::Reverse(completes_at));
    }

    fn clear(&mut self) {
        self.outstanding.clear();
    }
}

/// Everything *behind* the per-SM L1s: MSHRs, the shared L2 and DRAM.
///
/// Split out of [`MemorySystem`] so the sharded parallel simulator can
/// keep the L1s shard-local (each SM's L1 is touched only by that SM)
/// while replaying the cross-SM coupling — MSHR arbitration, L2
/// occupancy, DRAM bank queues — at window barriers in canonical order.
/// The serial path composes the same two halves, so the request walk is
/// one piece of code for both.
pub(crate) struct SharedMemPath {
    mshrs: Vec<MshrPool>,
    l2: Cache,
    dram: Dram,
    l1_hit_latency: u64,
    l2_hit_latency: u64,
    dram_base_latency: u64,
}

impl SharedMemPath {
    // tbpoint-phase: coordinator
    pub(crate) fn new(cfg: &GpuConfig) -> Self {
        SharedMemPath {
            mshrs: (0..cfg.num_sms)
                .map(|_| MshrPool::new(cfg.mshrs_per_sm as usize))
                .collect(),
            l2: Cache::new(cfg.l2),
            dram: Dram::new(cfg),
            l1_hit_latency: cfg.l1_hit_latency as u64,
            l2_hit_latency: cfg.l2_hit_latency as u64,
            dram_base_latency: cfg.dram_base_latency as u64,
        }
    }

    /// The shared half of a load that already missed SM `sm`'s L1:
    /// MSHR admission, L2 probe, DRAM on an L2 miss. Returns the
    /// completion cycle. The caller is responsible for the L1 probe and
    /// its `l1_hit`/`l1_miss` counters, so both the serial walk and the
    /// barrier replay produce identical state transitions and events.
    ///
    /// Completion is never earlier than `now + l1_hit + l2_hit` — the
    /// invariant the parallel window length rests on (see
    /// DESIGN.md, "Deterministic parallel simulation").
    // tbpoint-phase: coordinator
    // tbpoint-hot
    pub(crate) fn miss_load_obs<R: Recorder + ?Sized>(
        &mut self,
        sm: usize,
        line_addr: u64,
        now: u64,
        rec: &R,
    ) -> u64 {
        shadow::check_shared_access("SharedMemPath::miss_load_obs");
        // SM indices are config-bounded (tens), far below u32::MAX.
        let sm_u32 = u32::try_from(sm).unwrap_or(u32::MAX);
        let issue = self.mshrs[sm].issue_time(now);
        if issue > now {
            rec.record(
                now,
                EventKind::MshrStall {
                    sm: sm_u32,
                    cycles: issue - now,
                },
            );
        }
        let complete = if self.l2.access_load(line_addr) {
            rec.counter("l2_hit", 1);
            issue + self.l1_hit_latency + self.l2_hit_latency
        } else {
            rec.counter("l2_miss", 1);
            let (bank_done, row_hit) = self
                .dram
                .access_traced(line_addr, issue + self.l1_hit_latency + self.l2_hit_latency);
            rec.counter(
                if row_hit {
                    "dram_row_hit"
                } else {
                    "dram_row_miss"
                },
                1,
            );
            rec.record(
                now,
                EventKind::DramAccess {
                    sm: sm_u32,
                    row_hit,
                },
            );
            bank_done + self.dram_base_latency
        };
        self.mshrs[sm].register(complete);
        complete
    }

    /// The shared half of a store: the L2 probe (write-through,
    /// no-allocate). The L1 probe and the `store` counter happen on the
    /// issuing side. Returns the nominal drain cycle (diagnostics).
    // tbpoint-phase: coordinator
    // tbpoint-hot
    pub(crate) fn store_line(&mut self, line_addr: u64, now: u64) -> u64 {
        shadow::check_shared_access("SharedMemPath::store_line");
        if self.l2.access_store(line_addr) {
            now + self.l1_hit_latency + self.l2_hit_latency
        } else {
            now + self.l1_hit_latency + self.l2_hit_latency + self.dram_base_latency
        }
    }

    // tbpoint-phase: coordinator
    pub(crate) fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }

    // tbpoint-phase: coordinator
    pub(crate) fn dram_row_hit_rate(&self) -> f64 {
        self.dram.row_hit_rate()
    }

    // tbpoint-phase: coordinator
    pub(crate) fn dram_avg_wait(&self) -> f64 {
        self.dram.avg_wait()
    }

    // tbpoint-phase: coordinator
    fn flush(&mut self) {
        for m in &mut self.mshrs {
            m.clear();
        }
        self.l2.flush();
        self.dram.flush();
    }
}

/// Aggregate hit rate over a set of L1 caches (the serial system's own
/// vector, or the shard-local caches gathered back at the end of a
/// parallel launch).
pub(crate) fn l1_hit_rate_over<'a>(caches: impl Iterator<Item = &'a Cache>) -> f64 {
    let (h, m) = caches
        .map(Cache::stats)
        .fold((0, 0), |(ah, am), (h, m)| (ah + h, am + m));
    if h + m == 0 {
        0.0
    } else {
        h as f64 / (h + m) as f64
    }
}

/// The full memory system shared by all SMs.
pub struct MemorySystem {
    l1s: Vec<Cache>,
    shared: SharedMemPath,
    l1_hit_latency: u64,
}

impl MemorySystem {
    /// Build the hierarchy for `cfg.num_sms` SMs.
    // tbpoint-phase: coordinator
    pub fn new(cfg: &GpuConfig) -> Self {
        MemorySystem {
            l1s: (0..cfg.num_sms).map(|_| Cache::new(cfg.l1)).collect(),
            shared: SharedMemPath::new(cfg),
            l1_hit_latency: cfg.l1_hit_latency as u64,
        }
    }

    /// Issue a load for `line_addr` from SM `sm` at cycle `now`; returns
    /// the completion cycle.
    pub fn load(&mut self, sm: usize, line_addr: u64, now: u64) -> u64 {
        self.load_obs(sm, line_addr, now, &NullRecorder)
    }

    /// [`MemorySystem::load`] with cache/DRAM observability: emits
    /// hit/miss counters, an `MshrStall` event when the request queues
    /// behind a full MSHR pool, and a `DramAccess` event per L2 miss.
    /// Recording is observation-only — the returned completion cycle is
    /// identical for every recorder.
    // tbpoint-phase: coordinator
    // tbpoint-hot
    pub fn load_obs<R: Recorder + ?Sized>(
        &mut self,
        sm: usize,
        line_addr: u64,
        now: u64,
        rec: &R,
    ) -> u64 {
        if self.l1s[sm].access_load(line_addr) {
            rec.counter("l1_hit", 1);
            return now + self.l1_hit_latency;
        }
        rec.counter("l1_miss", 1);
        self.shared.miss_load_obs(sm, line_addr, now, rec)
    }

    /// Issue a store (write-through, no-allocate, fire-and-forget): the
    /// traffic probes the caches for statistics, but does not occupy DRAM
    /// banks. Memory controllers hold writes in a write buffer and drain
    /// them opportunistically (FR-FCFS services reads first); modelling
    /// them as bank-blocking would let un-throttled store bursts (stores
    /// have no MSHR backpressure) push bank queues unboundedly ahead of
    /// the clock. Returns the nominal drain cycle (diagnostics).
    pub fn store(&mut self, sm: usize, line_addr: u64, now: u64) -> u64 {
        self.store_obs(sm, line_addr, now, &NullRecorder)
    }

    /// [`MemorySystem::store`] with a `store` counter (stores are
    /// fire-and-forget, so there is no latency event to record).
    // tbpoint-phase: coordinator
    // tbpoint-hot
    pub fn store_obs<R: Recorder + ?Sized>(
        &mut self,
        sm: usize,
        line_addr: u64,
        now: u64,
        rec: &R,
    ) -> u64 {
        rec.counter("store", 1);
        self.l1s[sm].access_store(line_addr);
        self.shared.store_line(line_addr, now)
    }

    /// Invalidate caches, banks and MSHRs (between launches).
    // tbpoint-phase: coordinator
    pub fn flush(&mut self) {
        for c in &mut self.l1s {
            c.flush();
        }
        self.shared.flush();
    }

    /// Aggregate L1 hit rate across SMs.
    pub fn l1_hit_rate(&self) -> f64 {
        l1_hit_rate_over(self.l1s.iter())
    }

    /// L2 hit rate.
    // tbpoint-phase: coordinator
    pub fn l2_hit_rate(&self) -> f64 {
        self.shared.l2_hit_rate()
    }

    /// DRAM row-buffer hit rate.
    // tbpoint-phase: coordinator
    pub fn dram_row_hit_rate(&self) -> f64 {
        self.shared.dram_row_hit_rate()
    }

    /// Average DRAM wait (service + queuing) per access, cycles.
    // tbpoint-phase: coordinator
    pub fn dram_avg_wait(&self) -> f64 {
        self.shared.dram_avg_wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(&GpuConfig::fermi())
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut m = mem();
        let t1 = m.load(0, 0, 0); // cold: goes to DRAM
        assert!(t1 > 100);
        let t2 = m.load(0, 0, t1);
        assert_eq!(t2 - t1, 30, "L1 hit should cost l1_hit_latency");
    }

    #[test]
    fn l2_hit_is_intermediate() {
        let mut m = mem();
        m.load(0, 0, 0); // installs in L1(0) and L2
                         // A different SM misses its own L1 but hits L2.
        let t = m.load(1, 0, 1000);
        assert_eq!(t - 1000, 30 + 90);
    }

    #[test]
    fn dram_miss_is_slowest() {
        let mut m = mem();
        let t = m.load(0, 0, 0);
        // l1 + l2 traversal + row miss + dram base = 30+90+60+120.
        assert_eq!(t, 300);
    }

    #[test]
    fn mshr_exhaustion_serialises_misses() {
        let mut m = mem();
        // 64 distinct lines from one SM at cycle 0: only 32 MSHRs, so the
        // completion times of the second half must lag the first half.
        let times: Vec<u64> = (0..64).map(|i| m.load(0, i * 128 + (1 << 40), 0)).collect();
        let first_half_max = *times[..32].iter().max().unwrap();
        let second_half_min = *times[32..].iter().min().unwrap();
        assert!(
            second_half_min >= first_half_max.min(times[0]),
            "later misses must queue behind MSHRs"
        );
        // And strictly: the last completion far exceeds the first.
        assert!(times[63] > times[0]);
    }

    #[test]
    fn stores_do_not_install_in_l1() {
        let mut m = mem();
        m.store(0, 0, 0);
        let t = m.load(0, 0, 10_000);
        assert!(t - 10_000 > 30, "load after store-miss must still miss L1");
    }

    #[test]
    fn flush_forgets_everything() {
        let mut m = mem();
        m.load(0, 0, 0);
        m.flush();
        let t = m.load(0, 0, 0);
        assert_eq!(t, 300, "post-flush load is cold");
    }

    #[test]
    fn per_sm_l1s_are_private() {
        let mut m = mem();
        m.load(0, 0, 0);
        m.load(0, 0, 400); // SM0 L1 hit
        let t = m.load(5, 0, 400); // SM5 must go to L2
        assert_eq!(t - 400, 120);
        assert!(m.l1_hit_rate() > 0.0 && m.l1_hit_rate() < 1.0);
    }
}

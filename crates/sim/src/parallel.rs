//! SM-sharded parallel launch simulation, bit-identical to serial.
//!
//! `simulate_launch_sharded` splits the SMs of one launch across `jobs`
//! worker threads and advances them in bounded *cycle windows* with a
//! barrier between windows. Everything that couples SMs — the shared
//! MSHR/L2/DRAM path, thread-block dispatch, retirement hooks — is kept
//! out of the windows and applied at the barriers in a canonical order,
//! so the result is a pure function of the input, independent of thread
//! count and scheduling. `LaunchSimResult` is bit-identical to the
//! serial simulator's for every `jobs` value (pinned by the golden and
//! property suites).
//!
//! # Why windows can be parallel at all
//!
//! Within a window `[t0, t1)`:
//!
//! * **L1s are SM-private** — each shard owns its SMs' L1 caches and
//!   probes them at issue time, exactly as serial does (hits resolve
//!   immediately; the probe order per SM equals serial's).
//! * **The shared path can wait.** `SharedMemPath` guarantees a miss
//!   issued at `now` completes no earlier than
//!   `now + l1_hit_latency + l2_hit_latency`. With the window length
//!   capped at `W = max(1, l1_hit_latency + l2_hit_latency)`, a miss
//!   issued inside the window completes at or after `t1` — so its
//!   effect on *this* window is fully described by "the warp sleeps".
//!   Shards therefore buffer the miss (`SharedReq`) and park the warp
//!   (`ready_at = u64::MAX`); the barrier replays all buffered requests
//!   through the shared hierarchy in `(cycle, sm)` order — the exact
//!   call sequence serial would have made, because one SM issues at most
//!   one memory instruction per cycle — and wakes the warps with the
//!   same completion cycles serial would have computed.
//! * **Dispatch and retirement only happen at the last window cycle.**
//!   `SmCore::earliest_retire_bound` lower-bounds the next retirement;
//!   the window is cut so that bound is its last cycle. Retirements
//!   (detected by shards) are then processed at the barrier in SM order
//!   with a reconstructed global `issued_total`, and the greedy
//!   dispatcher refills free slots exactly as serial's post-retire fill.
//!
//! `jobs == 1` never reaches this module — `simulate_launch_core` keeps
//! the serial path as-is.
//!
//! # Thread structure and rendezvous cost
//!
//! Windows are short (at most `l1_hit + l2_hit` cycles), so a launch
//! crosses thousands of barriers and rendezvous cost dominates overhead.
//! Three choices keep it down: the coordinator runs shard 0's window
//! inline between the barriers (so `jobs` threads rendezvous in total,
//! not `jobs + 1`, and shard 0 costs no context switch); the barrier is
//! a sense-reversing [`AdaptiveBarrier`] that spins briefly when cores
//! outnumber parties and parks immediately when they don't (spinning on
//! an oversubscribed host only steals time from the threads being waited
//! on); and the coordinator phases are allocation-free on the steady
//! state — a static `locate` table maps global SM ids to shard slots,
//! drain buffers and the replay-sort scratch are reused, and sorted SM
//! views are only materialised on the rare retire windows that need the
//! dispatcher.
//!
//! What is *not* bit-identical to serial: the observability side
//! channel. `IdleJump` events and the `SimPerf` idle counters depend on
//! where window boundaries fall (a machine-wide idle span serial crosses
//! in one jump may span several windows here), and event order within a
//! cycle differs. Both are still deterministic for a fixed `jobs`;
//! everything in `LaunchSimResult` — and every counter total — matches
//! serial exactly.

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::dispatch::SamplingHook;
use crate::memory::{l1_hit_rate_over, SharedMemPath};
use crate::order::cycle_sm_key;
use crate::shadow;
use crate::simulator::{greedy_fill, DispatchState, LaunchSimResult, SimOptions, SimPerf};
use crate::sm::{IssueMem, LoadOutcome, SmCore};
use crate::units::{UnitCollector, UnitsConfig};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use tbpoint_emu::{TbStats, TraceArena};
use tbpoint_ir::inst::CoalescedLines;
use tbpoint_ir::{Kernel, LaunchSpec, TbId};
use tbpoint_obs::{CollectingRecorder, EventKind, NullRecorder, Recorder};

/// One buffered shared-path request (a load that missed L1, or a store's
/// write-through traffic), replayed at the window barrier. Line addresses
/// live in the shard's `lines` arena (`lo..hi`) so buffering allocates
/// nothing on the steady state.
#[derive(Debug, Clone, Copy)]
struct SharedReq {
    cycle: u64,
    sm: usize,
    kind: ReqKind,
    lo: u32,
    hi: u32,
}

#[derive(Debug, Clone, Copy)]
enum ReqKind {
    /// A load with at least one L1-missing line; `base_done` folds the
    /// ALU floor and any L1-hit lines. `(slot, warp)` locate the parked
    /// warp for `resolve_deferred_load`.
    Load {
        slot: usize,
        warp: usize,
        base_done: u64,
    },
    /// A store's L2 write-through probes.
    Store,
}

/// The shard-side [`IssueMem`] backend: probe the SM-local L1 inline,
/// buffer the shared-path remainder for the barrier.
struct WindowMem<'a, R: Recorder> {
    l1: &'a mut Cache,
    l1_hit_latency: u64,
    reqs: &'a mut Vec<SharedReq>,
    lines: &'a mut Vec<u64>,
    rec: &'a R,
}

impl<R: Recorder> IssueMem for WindowMem<'_, R> {
    // tbpoint-phase: shard
    // tbpoint-hot
    fn load(
        &mut self,
        sm: usize,
        slot: usize,
        warp: usize,
        lines: &CoalescedLines,
        now: u64,
        alu_done: u64,
    ) -> LoadOutcome {
        let mut done = alu_done;
        let lo = u32::try_from(self.lines.len()).unwrap_or(u32::MAX);
        for line in lines.iter() {
            if self.l1.access_load(line) {
                self.rec.counter("l1_hit", 1);
                done = done.max(now + self.l1_hit_latency);
            } else {
                self.rec.counter("l1_miss", 1);
                self.lines.push(line);
            }
        }
        let hi = u32::try_from(self.lines.len()).unwrap_or(u32::MAX);
        if lo == hi {
            return LoadOutcome::Done(done);
        }
        self.reqs.push(SharedReq {
            cycle: now,
            sm,
            kind: ReqKind::Load {
                slot,
                warp,
                base_done: done,
            },
            lo,
            hi,
        });
        LoadOutcome::Deferred
    }

    // tbpoint-phase: shard
    // tbpoint-hot
    fn store(&mut self, sm: usize, lines: &CoalescedLines, now: u64) {
        let lo = u32::try_from(self.lines.len()).unwrap_or(u32::MAX);
        for line in lines.iter() {
            self.rec.counter("store", 1);
            self.l1.access_store(line);
            self.lines.push(line);
        }
        let hi = u32::try_from(self.lines.len()).unwrap_or(u32::MAX);
        if lo != hi {
            self.reqs.push(SharedReq {
                cycle: now,
                sm,
                kind: ReqKind::Store,
                lo,
                hi,
            });
        }
    }
}

/// What a shard reports back at each barrier.
#[derive(Debug, Default)]
struct ShardReport {
    /// Issues at window cycles before the last one.
    before_last: u64,
    /// Global SM ids that issued at the window's last cycle, ascending.
    at_last: Vec<usize>,
    /// `(sm, tb, stats)` retirements, all at the last cycle, ascending
    /// by SM — carrying each block's accumulated feature counters for
    /// the retire-hook stream.
    retired: Vec<(usize, TbId, TbStats)>,
    /// `(cycle, sm, bb)` issue trail for the unit collector (only
    /// gathered when requested).
    trail: Vec<(u64, usize, u16)>,
    /// A retirement landed before the window's last cycle — the retire
    /// bound was violated; the coordinator aborts (simulator bug).
    stray_retire: bool,
}

/// Everything one worker thread owns: its SMs (with global ids), their
/// L1s (index-aligned with `sms`), a private recorder for counters, and
/// the per-window request/report buffers.
struct ShardState<R2> {
    sms: Vec<(usize, SmCore)>,
    l1s: Vec<Cache>,
    rec: R2,
    reqs: Vec<SharedReq>,
    lines: Vec<u64>,
    report: ShardReport,
    idle_jumps: u64,
    idle_cycles_skipped: u64,
}

/// The coordinator-published window, read by every shard after the
/// opening barrier.
#[derive(Debug, Clone, Copy)]
struct WindowCtl {
    t0: u64,
    t1: u64,
    collect: bool,
    done: bool,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A sense-reversing barrier tuned for thousands of short rendezvous per
/// launch. When the machine has more cores than parties, late arrivals
/// spin briefly before parking (windows are microseconds; a futex
/// round-trip per window would dominate). When cores <= parties — an
/// oversubscribed or single-core host — spinning only steals time from
/// the threads we are waiting on, so arrivals park immediately.
///
/// Each thread keeps a local sense flag and passes it to every `wait`;
/// the last arrival flips the shared sense (under the park lock, so a
/// parked waiter cannot miss the flip) and wakes everyone.
struct AdaptiveBarrier {
    parties: usize,
    spin: u32,
    count: AtomicUsize,
    sense: AtomicBool,
    park: Mutex<()>,
    cv: Condvar,
}

impl AdaptiveBarrier {
    fn new(parties: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        AdaptiveBarrier {
            parties,
            spin: if cores > parties { 1 << 12 } else { 0 },
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            park: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn wait(&self, local_sense: &mut bool) {
        let s = !*local_sense;
        *local_sense = s;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.count.store(0, Ordering::Relaxed);
            let guard = lock(&self.park);
            self.sense.store(s, Ordering::Release);
            drop(guard);
            self.cv.notify_all();
            return;
        }
        for _ in 0..self.spin {
            if self.sense.load(Ordering::Acquire) == s {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = lock(&self.park);
        while self.sense.load(Ordering::Acquire) != s {
            guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One worker: run every published window over this shard's SMs until
/// the coordinator says done. (The coordinator itself runs shard 0's
/// windows inline between the same barriers, so only shards `1..jobs`
/// get a worker thread.)
// tbpoint-phase: shard
fn shard_worker<R2: Recorder>(
    state: &Mutex<ShardState<R2>>,
    ctl: &Mutex<WindowCtl>,
    barrier: &AdaptiveBarrier,
    use_hint: bool,
    l1_hit_latency: u64,
) {
    let mut sense = false;
    loop {
        barrier.wait(&mut sense); // window published
        let w = *lock(ctl);
        if w.done {
            return;
        }
        {
            let _phase = shadow::enter(shadow::Phase::Shard);
            run_window(&mut lock(state), w, use_hint, l1_hit_latency);
        }
        barrier.wait(&mut sense); // window complete
    }
}

/// Advance one shard through the window `[w.t0, w.t1)`, filing issues,
/// retirements, and buffered shared-path traffic into its report.
// tbpoint-phase: shard
// tbpoint-hot
fn run_window<R2: Recorder>(
    st: &mut ShardState<R2>,
    w: WindowCtl,
    use_hint: bool,
    l1_hit_latency: u64,
) {
    let mut c = w.t0;
    while c < w.t1 {
        let mut any = false;
        for (k, (gid, sm)) in st.sms.iter_mut().enumerate() {
            let mut port = WindowMem {
                l1: &mut st.l1s[k],
                l1_hit_latency,
                reqs: &mut st.reqs,
                lines: &mut st.lines,
                rec: &st.rec,
            };
            let r = sm.try_issue_mem(c, &mut port, &st.rec);
            if let Some(bb) = r.issued_bb {
                any = true;
                if c + 1 == w.t1 {
                    st.report.at_last.push(*gid);
                } else {
                    st.report.before_last += 1;
                }
                if w.collect {
                    st.report.trail.push((c, *gid, bb));
                }
            }
            if let Some(tb) = r.retired {
                if c + 1 != w.t1 {
                    st.report.stray_retire = true;
                }
                st.report.retired.push((*gid, tb, r.retired_stats));
            }
        }
        if any {
            for (_, sm) in st.sms.iter_mut() {
                sm.credit_resident_cycles(1);
            }
            c += 1;
        } else {
            // Nothing issueable on this shard: jump to the earliest
            // own wake-up (clamped to the window). Every own SM's
            // last scan failed, so its `ready_hint` is exact —
            // skipped cycles would have been fast-returns for every
            // SM here, which is exactly what serial does with them.
            // The stepped reference visits every cycle.
            let next = if use_hint {
                st.sms
                    .iter()
                    .map(|(_, s)| s.ready_hint())
                    .min()
                    .unwrap_or(u64::MAX)
                    .max(c + 1)
                    .min(w.t1)
            } else {
                c + 1
            };
            let delta = next - c;
            for (_, sm) in st.sms.iter_mut() {
                sm.credit_resident_cycles(delta);
            }
            if use_hint {
                st.idle_jumps += 1;
                st.idle_cycles_skipped += delta;
            }
            c = next;
        }
    }
}

/// Entry point from `simulate_launch_core` (`jobs >= 2`, already clamped
/// to `num_sms`). Picks the shard-recorder monomorphisation: collecting
/// when the caller's recorder is live (counters merge back in shard
/// order at the end), null otherwise so the instrumentation compiles
/// away.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_launch_sharded<R: Recorder + ?Sized>(
    kernel: &Kernel,
    spec: &LaunchSpec,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
    opts: SimOptions,
    jobs: usize,
    rec: &R,
) -> (LaunchSimResult, SimPerf) {
    if rec.enabled() {
        let (result, perf, shard_recs) =
            run::<R, CollectingRecorder>(kernel, spec, cfg, hook, units, opts, jobs, rec);
        let mut merged = CollectingRecorder::new();
        for r in shard_recs {
            merged.merge(r);
        }
        merged.replay_into(rec);
        (result, perf)
    } else {
        let (result, perf, _) =
            run::<R, NullRecorder>(kernel, spec, cfg, hook, units, opts, jobs, rec);
        (result, perf)
    }
}

// tbpoint-phase: coordinator
#[allow(clippy::too_many_arguments)]
fn run<R: Recorder + ?Sized, R2: Recorder + Default + Send>(
    kernel: &Kernel,
    spec: &LaunchSpec,
    cfg: &GpuConfig,
    hook: &mut dyn SamplingHook,
    units: Option<UnitsConfig>,
    opts: SimOptions,
    jobs: usize,
    rec: &R,
) -> (LaunchSimResult, SimPerf, Vec<R2>) {
    let occupancy = cfg.sm_occupancy(kernel);
    let num_sms = cfg.num_sms as usize;
    let mut sms: Vec<SmCore> = (0..num_sms)
        .map(|i| {
            let mut sm = SmCore::new(i, occupancy, cfg);
            sm.set_event_horizon(opts.event_horizon);
            sm
        })
        .collect();
    let mut arena = TraceArena::with_caching(kernel, opts.intern_traces);
    let mut perf = SimPerf::default();
    let mut shared = SharedMemPath::new(cfg);
    let mut collector = units.map(|u| UnitCollector::new(u, kernel.num_basic_blocks as usize));
    let l1_hit_latency = cfg.l1_hit_latency as u64;
    // Any L1 miss completes >= now + l1_hit + l2_hit (see SharedMemPath):
    // windows of this length can defer all shared-path traffic to their
    // closing barrier without any warp oversleeping.
    let w_max = 1.max(l1_hit_latency + cfg.l2_hit_latency as u64);
    let stagger = cfg.dispatch_stagger_cycles as u64;
    let total_tbs = spec.num_blocks;

    let mut ds = DispatchState::default();
    let mut issued_total: u64 = 0;
    greedy_fill(
        &mut sms,
        &mut arena,
        kernel,
        spec,
        stagger,
        &mut ds,
        hook,
        0,
        issued_total,
        rec,
    );

    let mut final_cycle: u64 = 0;
    if ds.outstanding > 0 || ds.next_tb < total_tbs {
        // Shard the SMs round-robin (breadth-first dispatch loads low
        // indices first, so striding balances the shards), each with its
        // own L1s and recorder.
        let mut l1s: Vec<Cache> = (0..num_sms).map(|_| Cache::new(cfg.l1)).collect();
        let mut shards: Vec<ShardState<R2>> = (0..jobs)
            .map(|_| ShardState {
                sms: Vec::new(),
                l1s: Vec::new(),
                rec: R2::default(),
                reqs: Vec::new(),
                lines: Vec::new(),
                report: ShardReport::default(),
                idle_jumps: 0,
                idle_cycles_skipped: 0,
            })
            .collect();
        let mut locate: Vec<(usize, usize)> = vec![(0, 0); num_sms];
        for (i, (sm, l1)) in sms.drain(..).zip(l1s.drain(..)).enumerate() {
            let shard = &mut shards[i % jobs];
            locate[i] = (i % jobs, shard.sms.len());
            shard.sms.push((i, sm));
            shard.l1s.push(l1);
        }
        let states: Vec<Mutex<ShardState<R2>>> = shards.into_iter().map(Mutex::new).collect();
        let ctl = Mutex::new(WindowCtl {
            t0: 0,
            t1: 0,
            collect: collector.is_some(),
            done: false,
        });
        // The coordinator doubles as shard 0's runner, so `jobs` threads
        // rendezvous in total and only shards 1.. spawn workers.
        let barrier = AdaptiveBarrier::new(jobs);

        std::thread::scope(|scope| {
            for state in &states[1..] {
                let ctl = &ctl;
                let barrier = &barrier;
                scope.spawn(move || {
                    shard_worker(state, ctl, barrier, opts.event_horizon, l1_hit_latency)
                });
            }

            // Coordinator: schedule a window, run shard 0's slice of it
            // inline, apply the cross-SM coupling once every shard is
            // done, repeat. The coordinator only touches other shards'
            // state while their workers are parked at a barrier.
            let mut sense = false;
            let mut t0: u64 = 0;
            // Reusable scratch (drain buffers are swapped with shard
            // buffers so both sides keep their capacity).
            let mut drained_reqs: Vec<Vec<SharedReq>> = vec![Vec::new(); jobs];
            let mut drained_lines: Vec<Vec<u64>> = vec![Vec::new(); jobs];
            let mut at_last: Vec<usize> = Vec::new();
            let mut retired: Vec<(usize, TbId, TbStats)> = Vec::new();
            let mut trail: Vec<(u64, usize, u16)> = Vec::new();
            let mut order: Vec<(usize, usize)> = Vec::new();
            loop {
                // --- Schedule the next window [t0, t1). ---
                let w = {
                    let mut guards: Vec<_> = states.iter().map(lock).collect();
                    if opts.event_horizon {
                        // All SMs idle until h: take the idle span in one
                        // jump, exactly as serial's machine-wide jump
                        // (every hint is exact after a failed scan).
                        let h = guards
                            .iter()
                            .flat_map(|g| g.sms.iter().map(|(_, s)| s.ready_hint()))
                            .min()
                            .unwrap_or(u64::MAX);
                        if h == u64::MAX {
                            deadlock(&ctl, &barrier, &mut sense, t0, &ds, total_tbs);
                        }
                        if h > t0 {
                            rec.record(t0, EventKind::IdleJump { cycles: h - t0 });
                            for g in guards.iter_mut() {
                                for (_, sm) in g.sms.iter_mut() {
                                    sm.credit_resident_cycles(h - t0);
                                }
                            }
                            perf.idle_jumps += 1;
                            perf.idle_cycles_skipped += h - t0;
                            t0 = h;
                        }
                    } else if guards
                        .iter()
                        .all(|g| g.sms.iter().all(|(_, s)| s.next_ready().is_none()))
                    {
                        deadlock(&ctl, &barrier, &mut sense, t0, &ds, total_tbs);
                    }
                    let bound = guards
                        .iter()
                        .flat_map(|g| g.sms.iter().map(|(_, s)| s.earliest_retire_bound(t0)))
                        .min()
                        .unwrap_or(u64::MAX);
                    let w = WindowCtl {
                        t0,
                        t1: (t0 + w_max).min(bound.saturating_add(1)),
                        collect: collector.is_some(),
                        done: false,
                    };
                    *lock(&ctl) = w;
                    w
                };
                let t1 = w.t1;

                barrier.wait(&mut sense); // open the window
                {
                    let _phase = shadow::enter(shadow::Phase::Shard);
                    run_window(&mut lock(&states[0]), w, opts.event_horizon, l1_hit_latency);
                }
                barrier.wait(&mut sense); // wait for every shard to finish it

                // --- Apply the window's cross-SM coupling at c_last. ---
                let c_last = t1 - 1;
                let mut terminated = false;
                {
                    let _phase = shadow::enter(shadow::Phase::Coordinator);
                    let mut guards: Vec<_> = states.iter().map(lock).collect();
                    let mut issued_before_last = 0u64;
                    let mut stray = false;
                    at_last.clear();
                    retired.clear();
                    trail.clear();
                    for (j, g) in guards.iter_mut().enumerate() {
                        drained_reqs[j].clear();
                        drained_lines[j].clear();
                        std::mem::swap(&mut drained_reqs[j], &mut g.reqs);
                        std::mem::swap(&mut drained_lines[j], &mut g.lines);
                        issued_before_last += g.report.before_last;
                        g.report.before_last = 0;
                        at_last.append(&mut g.report.at_last);
                        retired.append(&mut g.report.retired);
                        trail.append(&mut g.report.trail);
                        stray |= g.report.stray_retire;
                    }
                    if stray {
                        deadlock(&ctl, &barrier, &mut sense, c_last, &ds, total_tbs);
                    }

                    // Replay buffered memory traffic through the shared
                    // hierarchy in (cycle, sm) order — unique keys, since
                    // an SM issues at most one memory instruction per
                    // cycle — i.e. the serial call sequence. Wake the
                    // parked warps with the serial completion cycles.
                    order.clear();
                    for (j, reqs) in drained_reqs.iter().enumerate() {
                        order.extend((0..reqs.len()).map(|i| (j, i)));
                    }
                    order.sort_unstable_by_key(|&(j, i)| {
                        let r = &drained_reqs[j][i];
                        cycle_sm_key(r.cycle, r.sm)
                    });
                    for &(j, i) in &order {
                        let r = drained_reqs[j][i];
                        let lines = &drained_lines[j][r.lo as usize..r.hi as usize];
                        match r.kind {
                            ReqKind::Load {
                                slot,
                                warp,
                                base_done,
                            } => {
                                let mut done = base_done;
                                for &line in lines {
                                    done = done.max(shared.miss_load_obs(r.sm, line, r.cycle, rec));
                                }
                                let (sj, sp) = locate[r.sm];
                                guards[sj].sms[sp]
                                    .1
                                    .resolve_deferred_load(slot, warp, done, r.cycle, rec);
                            }
                            ReqKind::Store => {
                                for &line in lines {
                                    shared.store_line(line, r.cycle);
                                }
                            }
                        }
                    }

                    // Retirements: SM order, with the issued_total serial
                    // would have seen mid-scan at c_last (all issues from
                    // earlier cycles, plus this cycle's issues on SMs up
                    // to and including the retiring one).
                    issued_total += issued_before_last;
                    at_last.sort_unstable();
                    retired.sort_unstable_by_key(|&(sm, _, _)| sm);
                    for &(sm, tb, stats) in &retired {
                        let prefix = at_last.partition_point(|&s| s <= sm) as u64;
                        ds.outstanding -= 1;
                        if rec.enabled() {
                            let sm_u32 = u32::try_from(sm).unwrap_or(u32::MAX);
                            rec.record(
                                c_last,
                                EventKind::TbRetired {
                                    tb: tb.0,
                                    sm: sm_u32,
                                },
                            );
                            let (sj, sp) = locate[sm];
                            let resident = u64::try_from(guards[sj].sms[sp].1.resident_blocks())
                                .unwrap_or(u64::MAX);
                            rec.gauge("sm_resident_blocks", sm_u32, resident);
                        }
                        hook.on_retire_stats(tb, c_last, issued_total + prefix, stats);
                    }
                    issued_total += at_last.len() as u64;

                    // Feed the unit collector the global issue stream in
                    // (cycle, sm) order — serial's exact feed order.
                    if let Some(c) = collector.as_mut() {
                        trail.sort_unstable_by_key(|&(cycle, sm, _)| cycle_sm_key(cycle, sm));
                        for &(cycle, _, bb) in trail.iter() {
                            c.on_issue(cycle, bb);
                        }
                    }

                    if !retired.is_empty() {
                        // Refill freed slots, then credit c_last residency
                        // to SMs the fill just repopulated (their shard
                        // credited them before the fill existed; serial
                        // credits after it). Sorted views are only built
                        // here — retire windows are rare.
                        let mut views = sorted_views(&mut guards);
                        let was_empty: Vec<bool> = views.iter().map(|s| s.is_empty()).collect();
                        greedy_fill(
                            &mut views,
                            &mut arena,
                            kernel,
                            spec,
                            stagger,
                            &mut ds,
                            hook,
                            c_last,
                            issued_total,
                            rec,
                        );
                        for (sm, was) in views.iter_mut().zip(was_empty) {
                            if was && !sm.is_empty() {
                                sm.credit_resident_cycles(1);
                            }
                        }
                        if ds.outstanding == 0 && ds.next_tb >= total_tbs {
                            final_cycle = c_last;
                            terminated = true;
                            lock(&ctl).done = true;
                        }
                    }
                }

                if terminated {
                    barrier.wait(&mut sense); // release the workers to exit
                    break;
                }
                t0 = t1;
            }
        });

        // Gather everything back in SM order.
        let mut cores: Vec<(usize, SmCore)> = Vec::with_capacity(num_sms);
        let mut l1s: Vec<(usize, Cache)> = Vec::with_capacity(num_sms);
        let mut shard_recs: Vec<R2> = Vec::with_capacity(jobs);
        for state in states {
            let st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
            perf.idle_jumps += st.idle_jumps;
            perf.idle_cycles_skipped += st.idle_cycles_skipped;
            for ((gid, sm), l1) in st.sms.into_iter().zip(st.l1s) {
                cores.push((gid, sm));
                l1s.push((gid, l1));
            }
            shard_recs.push(st.rec);
        }
        cores.sort_unstable_by_key(|&(gid, _)| gid);
        l1s.sort_unstable_by_key(|&(gid, _)| gid);
        sms = cores.into_iter().map(|(_, sm)| sm).collect();

        perf.stat_retires += u64::from(ds.simulated);
        perf.hook_skips += u64::from(ds.skipped);
        perf.absorb_intern(&arena.stats);
        if rec.enabled() {
            rec.counter("trace_intern_hits", perf.intern_hits);
            rec.counter("trace_intern_misses", perf.intern_misses);
            rec.counter("trace_intern_uncacheable", perf.intern_uncacheable);
        }
        let result = assemble(
            spec,
            final_cycle,
            &sms,
            &ds,
            l1_hit_rate_over(l1s.iter().map(|(_, c)| c)),
            &shared,
            collector,
        );
        return (result, perf, shard_recs);
    }

    // Degenerate launch: everything skipped or insta-retired during the
    // initial fill — no cycle loop, same as serial.
    perf.stat_retires += u64::from(ds.simulated);
    perf.hook_skips += u64::from(ds.skipped);
    perf.absorb_intern(&arena.stats);
    if rec.enabled() {
        rec.counter("trace_intern_hits", perf.intern_hits);
        rec.counter("trace_intern_misses", perf.intern_misses);
        rec.counter("trace_intern_uncacheable", perf.intern_uncacheable);
    }
    let result = assemble(spec, 0, &sms, &ds, 0.0, &shared, collector);
    (result, perf, Vec::new())
}

/// Collect `&mut SmCore` views from all shard guards, indexable by
/// global SM id (every id in `0..num_sms` is present exactly once).
fn sorted_views<'a, R2>(
    guards: &'a mut [std::sync::MutexGuard<'_, ShardState<R2>>],
) -> Vec<&'a mut SmCore> {
    let mut pairs: Vec<(usize, &'a mut SmCore)> = guards
        .iter_mut()
        .flat_map(|g| g.sms.iter_mut().map(|(gid, sm)| (*gid, sm)))
        .collect();
    pairs.sort_unstable_by_key(|&(gid, _)| gid);
    pairs.into_iter().map(|(_, sm)| sm).collect()
}

/// Release the parked workers, then abort: the coordinator found a state
/// no valid simulation reaches (a deadlock, or a retirement outside the
/// window's last cycle). Panicking while workers wait at the barrier
/// would hang the scope join, so the shutdown handshake runs first.
fn deadlock(
    ctl: &Mutex<WindowCtl>,
    barrier: &AdaptiveBarrier,
    sense: &mut bool,
    cycle: u64,
    ds: &DispatchState,
    total_tbs: u32,
) -> ! {
    lock(ctl).done = true;
    barrier.wait(sense);
    // tbpoint-lint: allow(no-panic-in-library)
    panic!(
        "parallel simulator deadlock at cycle {cycle}: outstanding={}, next_tb={}/{total_tbs}",
        ds.outstanding, ds.next_tb
    );
}

// tbpoint-phase: coordinator
fn assemble(
    spec: &LaunchSpec,
    cycles: u64,
    sms: &[SmCore],
    ds: &DispatchState,
    l1_hit_rate: f64,
    shared: &SharedMemPath,
    collector: Option<UnitCollector>,
) -> LaunchSimResult {
    LaunchSimResult {
        launch_id: spec.launch_id,
        cycles,
        issued_warp_insts: sms.iter().map(|s| s.issued_warp_insts).sum(),
        issued_thread_insts: sms.iter().map(|s| s.issued_thread_insts).sum(),
        simulated_tbs: ds.simulated,
        skipped_tbs: ds.skipped,
        l1_hit_rate,
        l2_hit_rate: shared.l2_hit_rate(),
        dram_row_hit_rate: shared.dram_row_hit_rate(),
        dram_avg_wait: shared.dram_avg_wait(),
        units: collector.map(|c| c.finish(cycles)).unwrap_or_default(),
        sm_stats: sms.iter().map(|s| s.stats).collect(),
    }
}

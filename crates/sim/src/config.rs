//! Simulator configuration (the paper's Table V) and occupancy math.

use serde::{Deserialize, Serialize};
use tbpoint_ir::{Kernel, WARP_SIZE};

/// Warp-scheduler policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Loose round-robin: rotate the start position every issued
    /// instruction (Fermi's baseline scheduler; the paper's default).
    RoundRobin,
    /// Greedy-then-oldest: keep issuing from the current warp until it
    /// stalls, then pick the oldest ready warp (ablation option).
    Gto,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes / self.assoc as u64).max(1)
    }
}

/// Full machine configuration. [`GpuConfig::fermi`] reproduces Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of SMs ("S" in Figs. 12-13).
    pub num_sms: u32,
    /// Core clock in GHz (1.15 for Fermi; converts cycles to GPU time).
    pub clock_ghz: f64,
    /// Maximum resident warps per SM ("W" in Figs. 12-13).
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Register file size per SM (32-bit registers).
    pub regs_per_sm: u32,
    /// Shared-memory bytes per SM.
    pub smem_per_sm: u32,
    /// Warp scheduler policy.
    pub sched: SchedPolicy,

    /// Dependent-issue latency of ALU ops (cycles).
    pub alu_latency: u32,
    /// Dependent-issue latency of SFU ops (cycles).
    pub sfu_latency: u32,
    /// Shared-memory access latency (cycles).
    pub smem_latency: u32,
    /// L1 hit latency (cycles).
    pub l1_hit_latency: u32,
    /// Additional latency of an L2 hit (cycles, on top of L1).
    pub l2_hit_latency: u32,
    /// Fixed DRAM access overhead (cycles, on top of L2; queuing and row
    /// activation are added by the DRAM model).
    pub dram_base_latency: u32,

    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// Outstanding-miss slots (MSHRs) per SM.
    pub mshrs_per_sm: u32,
    /// Cycles between consecutive thread-block starts during the initial
    /// launch fill. Real GPUs dispatch blocks serially through the
    /// GigaThread engine; starting every resident block on the same cycle
    /// creates an artificial lockstep whose memory-queue equilibrium
    /// takes tens of waves to develop.
    pub dispatch_stagger_cycles: u32,

    /// Number of DRAM channels.
    pub dram_channels: u32,
    /// Banks per channel.
    pub dram_banks_per_channel: u32,
    /// Row-buffer (page) size in bytes.
    pub dram_page_bytes: u64,
    /// Bank-busy time for a row-buffer hit (cycles).
    pub dram_row_hit_cycles: u32,
    /// Bank-busy time for a row-buffer miss (activate+precharge, cycles).
    pub dram_row_miss_cycles: u32,
}

impl GpuConfig {
    /// The paper's simulated machine (Table V): 14 SMs at 1.15 GHz, 16 KB
    /// L1 / 768 KB L2 with 128-byte 8-way geometry, 6 channels x 16 banks
    /// with 2 KB pages and FR-FCFS.
    pub fn fermi() -> Self {
        GpuConfig {
            num_sms: 14,
            clock_ghz: 1.15,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            regs_per_sm: 32_768,
            smem_per_sm: 49_152,
            sched: SchedPolicy::RoundRobin,
            alu_latency: 4,
            sfu_latency: 16,
            smem_latency: 24,
            l1_hit_latency: 30,
            l2_hit_latency: 90,
            dram_base_latency: 120,
            l1: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 128,
                assoc: 8,
            },
            l2: CacheConfig {
                size_bytes: 768 * 1024,
                line_bytes: 128,
                assoc: 8,
            },
            mshrs_per_sm: 32,
            dispatch_stagger_cycles: 32,
            dram_channels: 6,
            dram_banks_per_channel: 16,
            dram_page_bytes: 2048,
            dram_row_hit_cycles: 20,
            dram_row_miss_cycles: 60,
        }
    }

    /// Fig. 12/13 variant: `w` warps per SM, `s` SMs (labelled `W{w}S{s}`
    /// in the paper).
    pub fn with_occupancy(w: u32, s: u32) -> Self {
        let mut c = Self::fermi();
        c.max_warps_per_sm = w;
        c.num_sms = s;
        c
    }

    /// Maximum threads per SM implied by the warp limit.
    pub fn max_threads_per_sm(&self) -> u32 {
        self.max_warps_per_sm * WARP_SIZE
    }

    /// SM occupancy for `kernel`: the number of thread blocks one SM can
    /// host concurrently, limited by threads, warp slots, block slots,
    /// registers and shared memory (CUDA occupancy rules).
    pub fn sm_occupancy(&self, kernel: &Kernel) -> u32 {
        let by_threads = self.max_threads_per_sm() / kernel.threads_per_block.max(1);
        let by_warps = self.max_warps_per_sm / kernel.warps_per_block().max(1);
        let by_blocks = self.max_blocks_per_sm;
        let by_regs = if kernel.regs_per_thread == 0 {
            u32::MAX
        } else {
            self.regs_per_sm / (kernel.regs_per_thread * kernel.threads_per_block).max(1)
        };
        let by_smem = self
            .smem_per_sm
            .checked_div(kernel.smem_per_block)
            .unwrap_or(u32::MAX);
        by_threads
            .min(by_warps)
            .min(by_blocks)
            .min(by_regs)
            .min(by_smem)
            .max(1)
    }

    /// System occupancy: concurrent thread blocks across the whole GPU —
    /// the paper's epoch size (Eq. 4).
    pub fn system_occupancy(&self, kernel: &Kernel) -> u32 {
        self.sm_occupancy(kernel) * self.num_sms
    }

    /// Convert a cycle count to GPU milliseconds at this clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_ir::{KernelBuilder, Op};

    fn kernel(tpb: u32, regs: u32, smem: u32) -> Kernel {
        let mut b = KernelBuilder::new("t", 1, tpb);
        b.regs(regs).smem(smem);
        let n = b.block(&[Op::IAlu]);
        b.finish(n)
    }

    #[test]
    fn fermi_matches_table_v() {
        let c = GpuConfig::fermi();
        assert_eq!(c.num_sms, 14);
        assert_eq!(c.l1.size_bytes, 16 * 1024);
        assert_eq!(c.l1.line_bytes, 128);
        assert_eq!(c.l1.assoc, 8);
        assert_eq!(c.l2.size_bytes, 768 * 1024);
        assert_eq!(c.dram_channels, 6);
        assert_eq!(c.dram_banks_per_channel, 16);
        assert_eq!(c.dram_page_bytes, 2048);
        assert!((c.clock_ghz - 1.15).abs() < 1e-12);
    }

    #[test]
    fn cache_sets() {
        let c = GpuConfig::fermi();
        assert_eq!(c.l1.num_sets(), 16); // 16KB / 128B / 8
        assert_eq!(c.l2.num_sets(), 768); // 768KB / 128B / 8
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let c = GpuConfig::fermi(); // 1536 threads max
        let k = kernel(512, 8, 0);
        assert_eq!(c.sm_occupancy(&k), 3);
        assert_eq!(c.system_occupancy(&k), 42);
    }

    #[test]
    fn occupancy_limited_by_blocks() {
        let c = GpuConfig::fermi();
        let k = kernel(32, 8, 0);
        // 48 blocks would fit by threads, but the block slot limit is 8.
        assert_eq!(c.sm_occupancy(&k), 8);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let c = GpuConfig::fermi();
        let k = kernel(256, 63, 0);
        // 32768 / (63*256) = 2.03 -> 2 blocks.
        assert_eq!(c.sm_occupancy(&k), 2);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let c = GpuConfig::fermi();
        let k = kernel(64, 8, 16 * 1024);
        assert_eq!(c.sm_occupancy(&k), 3); // 49152 / 16384
    }

    #[test]
    fn occupancy_never_zero() {
        let c = GpuConfig::fermi();
        let k = kernel(2048, 64, 64 * 1024); // oversubscribed on purpose
        assert_eq!(c.sm_occupancy(&k), 1);
    }

    #[test]
    fn with_occupancy_variants() {
        let c = GpuConfig::with_occupancy(16, 8);
        assert_eq!(c.max_warps_per_sm, 16);
        assert_eq!(c.num_sms, 8);
        assert_eq!(c.max_threads_per_sm(), 512);
        // Epoch size shrinks with occupancy (Sec. V-C).
        let k = kernel(256, 8, 0);
        assert!(c.system_occupancy(&k) < GpuConfig::fermi().system_occupancy(&k));
    }

    #[test]
    fn cycles_to_ms_at_fermi_clock() {
        let c = GpuConfig::fermi();
        let ms = c.cycles_to_ms(1_150_000_000);
        assert!((ms - 1000.0).abs() < 1e-6);
    }
}

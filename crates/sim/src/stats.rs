//! Per-SM and per-launch statistics beyond the headline IPC.
//!
//! A cycle-level simulator earns its keep through the statistics it
//! exposes; these are the counters an architect would actually read when
//! deciding whether a kernel is latency-, bandwidth- or sync-bound — and
//! they feed the `tbpoint inspect` characterisation tool.

use serde::{Deserialize, Serialize};
use tbpoint_ir::LatencyClass;

/// Issued-instruction mix by functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct InstMix {
    /// Integer/FP ALU instructions.
    pub alu: u64,
    /// Special-function-unit instructions.
    pub sfu: u64,
    /// Global-memory instructions.
    pub global_mem: u64,
    /// Shared-memory instructions.
    pub shared_mem: u64,
    /// Barriers.
    pub barrier: u64,
}

impl InstMix {
    /// Record one issued instruction.
    pub fn record(&mut self, class: LatencyClass) {
        match class {
            LatencyClass::Alu => self.alu += 1,
            LatencyClass::Sfu => self.sfu += 1,
            LatencyClass::GlobalMem => self.global_mem += 1,
            LatencyClass::SharedMem => self.shared_mem += 1,
            LatencyClass::Barrier => self.barrier += 1,
        }
    }

    /// Total instructions recorded.
    pub fn total(&self) -> u64 {
        self.alu + self.sfu + self.global_mem + self.shared_mem + self.barrier
    }

    /// Fraction of instructions that touch global memory — the static
    /// analogue of the paper's stall probability.
    pub fn global_mem_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.global_mem as f64 / t as f64
        }
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &InstMix) {
        self.alu += other.alu;
        self.sfu += other.sfu;
        self.global_mem += other.global_mem;
        self.shared_mem += other.shared_mem;
        self.barrier += other.barrier;
    }
}

/// Counters for one SM over one launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SmStats {
    /// Warp instructions issued.
    pub issued_warp_insts: u64,
    /// Thread instructions issued (active lanes).
    pub issued_thread_insts: u64,
    /// Cycles with at least one resident thread block.
    pub resident_cycles: u64,
    /// Issued-instruction mix.
    pub mix: InstMix,
    /// Thread blocks this SM retired.
    pub blocks_retired: u64,
    /// Sum of load completion latencies (cycles), for the empirical mean
    /// stall duration "M" of the paper's Markov model.
    pub load_latency_sum: u64,
    /// Number of load instructions that waited on memory.
    pub loads_waited: u64,
}

impl SmStats {
    /// This SM's IPC over its resident cycles.
    pub fn ipc(&self) -> f64 {
        if self.resident_cycles == 0 {
            0.0
        } else {
            self.issued_warp_insts as f64 / self.resident_cycles as f64
        }
    }

    /// Fraction of resident cycles with no issue (latency/barrier
    /// stalls; the complement of utilisation).
    pub fn stall_fraction(&self) -> f64 {
        if self.resident_cycles == 0 {
            0.0
        } else {
            1.0 - (self.issued_warp_insts as f64 / self.resident_cycles as f64).min(1.0)
        }
    }

    /// SIMD efficiency: active lanes per issued warp instruction,
    /// normalised by the warp width (1.0 = no divergence losses).
    pub fn simd_efficiency(&self) -> f64 {
        if self.issued_warp_insts == 0 {
            0.0
        } else {
            self.issued_thread_insts as f64 / (self.issued_warp_insts as f64 * 32.0)
        }
    }

    /// Empirical mean stall duration of a load — the "M" of the paper's
    /// Markov model (Fig. 4), measured instead of assumed.
    pub fn mean_load_latency(&self) -> f64 {
        if self.loads_waited == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.loads_waited as f64
        }
    }

    /// Empirical stall probability: fraction of issued instructions that
    /// wait on global memory — the "p" of the Markov model.
    pub fn stall_probability(&self) -> f64 {
        if self.issued_warp_insts == 0 {
            0.0
        } else {
            self.loads_waited as f64 / self.issued_warp_insts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_records_and_totals() {
        let mut m = InstMix::default();
        m.record(LatencyClass::Alu);
        m.record(LatencyClass::Alu);
        m.record(LatencyClass::GlobalMem);
        m.record(LatencyClass::SharedMem);
        m.record(LatencyClass::Sfu);
        m.record(LatencyClass::Barrier);
        assert_eq!(m.total(), 6);
        assert_eq!(m.alu, 2);
        assert!((m.global_mem_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mix_merge_adds() {
        let mut a = InstMix {
            alu: 1,
            sfu: 2,
            global_mem: 3,
            shared_mem: 4,
            barrier: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 30);
    }

    #[test]
    fn sm_stats_derived_metrics() {
        let s = SmStats {
            issued_warp_insts: 500,
            issued_thread_insts: 500 * 24,
            resident_cycles: 1000,
            mix: InstMix::default(),
            blocks_retired: 7,
            load_latency_sum: 3000,
            loads_waited: 10,
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.stall_fraction() - 0.5).abs() < 1e-12);
        assert!((s.simd_efficiency() - 0.75).abs() < 1e-12);
        assert!((s.mean_load_latency() - 300.0).abs() < 1e-12);
        assert!((s.stall_probability() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_sm_stats_are_zero() {
        let s = SmStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.stall_fraction(), 0.0);
        assert_eq!(s.simd_efficiency(), 0.0);
    }
}

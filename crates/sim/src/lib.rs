// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-sim
//!
//! Cycle-level, trace-driven GPU timing simulator — the reproduction's
//! stand-in for Macsim (Section V-A, Table V of the paper).
//!
//! The machine model follows the paper's Fermi configuration:
//!
//! * `num_sms` streaming multiprocessors, each fetching and issuing **one
//!   warp instruction per cycle, in order**, over a 32-wide SIMD unit;
//! * per-SM L1 data cache (16 KB, 128 B lines, 8-way) and software-managed
//!   shared memory; a shared 768 KB 8-way L2; DRAM behind 6 channels x 16
//!   banks with a 2 KB row buffer and an FR-FCFS-style open-row policy;
//! * a greedy global thread-block dispatcher that assigns blocks to SMs in
//!   id order as resources free up, bounded by the kernel's SM occupancy
//!   (threads, blocks, registers, shared memory, warp slots).
//!
//! Two features exist purely for the paper's experiments:
//!
//! * a [`dispatch::SamplingHook`] lets TBPoint's intra-launch sampler skip
//!   (fast-forward) thread blocks at dispatch time and observe sampling
//!   units (designated-TB lifetimes);
//! * an optional [`units`] collector records per-sampling-unit IPCs and
//!   BBVs from *full* runs — the inputs the Random and Ideal-SimPoint
//!   baselines need (both are defined on fixed one-million-instruction
//!   units).
//!
//! What is simplified relative to Macsim, and why it does not matter for
//! the sampling comparison, is catalogued in DESIGN.md: every evaluated
//! approach (Full, Random, Ideal-SimPoint, TBPoint) runs on *this same
//! simulator*, so sampling errors measure the samplers, not the substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dispatch;
pub mod dram;
pub mod memory;
mod order;
mod parallel;
pub mod shadow;
pub mod simulator;
pub mod sm;
pub mod stats;
pub mod units;

pub use config::{CacheConfig, GpuConfig, SchedPolicy};
pub use dispatch::{CycleBudgetHook, DispatchDecision, NullSampling, SamplingHook};
pub use simulator::{
    simulate_launch, simulate_launch_obs, simulate_launch_obs_with_options, simulate_launch_perf,
    simulate_launch_with_options, simulate_run, LaunchSimResult, RunSimResult, SimOptions, SimPerf,
};
pub use stats::{InstMix, SmStats};
pub use units::{UnitRecord, UnitsConfig};

//! Content-addressed warp-trace interning.
//!
//! `SmCore::dispatch` used to re-emulate a full [`WarpTrace`] for every
//! warp of every dispatched block, even though regular kernels (stream,
//! conv rows of Table VI) produce one identical trace per warp shape.
//! A [`TraceArena`] memoises traces behind `Arc<[TraceInst]>` for the
//! duration of one launch, so identical warps share a single allocation.
//!
//! ## Why the key is exact, not a hash
//!
//! A warp's trace is a pure function of the walker's inputs. Auditing
//! [`crate::walker`] and the `TripCount::eval` / `Cond::eval`
//! implementations in `tbpoint-ir`, the trace of warp `w` of block `b`
//! depends on exactly:
//!
//! * the kernel (program tree, `threads_per_block`) and `kernel_seed` —
//!   fixed for a launch, so fixed per arena;
//! * `launch_id`, `work_scale` — fixed per arena (`num_blocks` is never
//!   read by any decision);
//! * the initial live-lane mask, a function of `w` and
//!   `threads_per_block` (`Cond::LaneLt` and SIMT loop masks only ever
//!   narrow it);
//! * `block_id` — but **only** via `PerBlock`/`BlockProb` decision rng
//!   coordinates, `PerThread`/`ThreadProb` coordinates, or the
//!   `block_id / phase_len` quotient of `PerBlockPhase`;
//! * the lane thread ids — **only** via `PerThread`/`ThreadProb`
//!   coordinates, which mix in `block_id * tpb + w * 32 + lane`.
//!
//! [`TraceDeps`] records, from a static walk of the program, which of
//! those block/thread inputs the kernel can observe, and [`TraceKey`]
//! stores the observable inputs *verbatim* (no hash folding). Two warps
//! with equal keys therefore feed bit-identical inputs into a
//! deterministic walker and must produce bit-identical traces — there is
//! no collision to defend against, which is what lets the timing
//! simulator substitute interned traces without changing a single output
//! bit. A seeded property test (`tests/intern_proptests.rs`) checks the
//! claim against the walker anyway.
//!
//! ## Memory discipline
//!
//! Traces are dropped when their block retires precisely so that peak
//! memory tracks *resident* blocks, not grid size. The arena must not
//! undo that, so it retains entries only when the key space is small:
//!
//! * block-invariant keys (mask + phase quotients) live in a global map
//!   — bounded by warp shapes × phase slices, shared by every block;
//! * block-varying keys (`PerBlock`/`BlockProb` kernels) are cached only
//!   for the most recently traced block — warps of one block are traced
//!   back-to-back at dispatch, so this still collapses the per-warp
//!   duplication without retaining per-block garbage;
//! * thread-varying kernels bypass the cache entirely (every key is
//!   distinct by construction) and are counted as `uncacheable`.

use crate::trace::{trace_warp, TraceInst};
use std::collections::BTreeMap;
use std::sync::Arc;
use tbpoint_ir::{Cond, ExecCtx, Kernel, Node, TripCount, WARP_SIZE};

/// Which trace-relevant inputs a kernel's control flow can observe,
/// derived from a static walk of the program tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDeps {
    /// Some decision reads the per-thread rng stream
    /// (`TripCount::PerThread` / `Cond::ThreadProb`).
    pub per_thread: bool,
    /// Some decision reads the per-block rng stream
    /// (`TripCount::PerBlock` / `Cond::BlockProb`).
    pub per_block: bool,
    /// Phase lengths of every `TripCount::PerBlockPhase` site (sorted,
    /// deduplicated); the trace sees `block_id / phase_len` for each.
    pub phase_lens: Vec<u32>,
}

impl TraceDeps {
    /// Analyse `kernel`'s program tree.
    pub fn of(kernel: &Kernel) -> Self {
        let mut deps = TraceDeps::default();
        kernel.program.visit(&mut |node| match node {
            Node::Loop { trips, .. } => match trips {
                TripCount::Const(_) => {}
                TripCount::PerBlock { .. } => deps.per_block = true,
                TripCount::PerThread { .. } => deps.per_thread = true,
                TripCount::PerBlockPhase { phase_len, .. } => {
                    deps.phase_lens.push((*phase_len).max(1));
                }
            },
            Node::If { cond, .. } => match cond {
                Cond::Always | Cond::Never | Cond::LaneLt(_) => {}
                Cond::BlockProb { .. } => deps.per_block = true,
                Cond::ThreadProb { .. } => deps.per_thread = true,
            },
            Node::Block { .. } | Node::Seq(_) => {}
        });
        deps.phase_lens.sort_unstable();
        deps.phase_lens.dedup();
        deps
    }
}

/// The exact trace-relevant inputs of one warp, under a fixed
/// (kernel, launch) pair. Equal keys imply bit-identical traces; see the
/// module docs for the derivation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceKey {
    /// Initial live-lane mask (warp position vs `threads_per_block`).
    pub mask: u32,
    /// `block_id`, included iff some decision observes the block
    /// (directly, or through per-thread ids).
    pub block: Option<u32>,
    /// Warp index within the block, included iff some decision observes
    /// per-thread ids (`gtid = block_id * tpb + warp * 32 + lane`).
    pub warp: Option<u32>,
    /// `block_id / phase_len` per distinct `PerBlockPhase` length —
    /// redundant (hence omitted) when `block` is already present.
    pub phases: Vec<u32>,
}

/// Interner traffic counters for one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Warp traces served from the arena.
    pub hits: u64,
    /// Warp traces emulated and then cached.
    pub misses: u64,
    /// Warp traces emulated with caching bypassed (thread-varying
    /// kernels, or an arena built with caching disabled).
    pub uncacheable: u64,
    /// Trace instructions served from the arena (the emulation work the
    /// interner avoided).
    pub reused_warp_insts: u64,
    /// Trace instructions actually emulated.
    pub traced_warp_insts: u64,
}

impl InternStats {
    /// Total trace requests.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.uncacheable
    }
}

/// Per-launch warp-trace interner.
///
/// Callers must use one arena per `(kernel, launch)` pair: the key
/// deliberately omits `kernel_seed`, `launch_id` and `work_scale`
/// because they are launch constants. [`TraceArena::warp_trace`] checks
/// this in debug builds.
pub struct TraceArena {
    deps: TraceDeps,
    caching: bool,
    /// Block-invariant entries, retained for the whole launch.
    global: BTreeMap<TraceKey, Arc<[TraceInst]>>,
    /// Block-varying entries for the most recently traced block only.
    block_local: BTreeMap<u32, Arc<[TraceInst]>>,
    block_local_id: Option<u32>,
    #[cfg(debug_assertions)]
    bound: Option<(u64, tbpoint_ir::LaunchId, f64)>,
    /// Hit/miss/bypass counters.
    pub stats: InternStats,
}

impl TraceArena {
    /// An empty arena for one launch of `kernel`.
    pub fn new(kernel: &Kernel) -> Self {
        Self::with_caching(kernel, true)
    }

    /// An arena with interning optionally disabled (every request is
    /// emulated fresh) — the reference path for bit-identity tests.
    pub fn with_caching(kernel: &Kernel, caching: bool) -> Self {
        TraceArena {
            deps: TraceDeps::of(kernel),
            caching,
            global: BTreeMap::new(),
            block_local: BTreeMap::new(),
            block_local_id: None,
            #[cfg(debug_assertions)]
            bound: None,
            stats: InternStats::default(),
        }
    }

    /// The dependence classes the arena derived from the program.
    pub fn deps(&self) -> &TraceDeps {
        &self.deps
    }

    /// The exact interning key of warp `warp_id` of block `ctx.block_id`.
    pub fn key(&self, kernel: &Kernel, ctx: &ExecCtx, warp_id: u32) -> TraceKey {
        let block_observed = self.deps.per_block || self.deps.per_thread;
        TraceKey {
            mask: initial_mask(kernel, warp_id),
            block: block_observed.then_some(ctx.block_id),
            warp: self.deps.per_thread.then_some(warp_id),
            phases: if block_observed {
                Vec::new()
            } else {
                self.deps
                    .phase_lens
                    .iter()
                    .map(|&pl| ctx.block_id / pl)
                    .collect()
            },
        }
    }

    /// The trace of warp `warp_id` of block `ctx.block_id`, served from
    /// the arena when an identical warp was traced before.
    pub fn warp_trace(&mut self, kernel: &Kernel, ctx: &ExecCtx, warp_id: u32) -> Arc<[TraceInst]> {
        #[cfg(debug_assertions)]
        {
            let b = (ctx.kernel_seed, ctx.launch_id, ctx.work_scale);
            debug_assert!(
                *self.bound.get_or_insert(b) == b,
                "TraceArena reused across launches"
            );
        }
        if !self.caching || self.deps.per_thread {
            self.stats.uncacheable += 1;
            return self.trace_fresh(kernel, ctx, warp_id);
        }
        if self.deps.per_block {
            // Block-varying: cache within the current block only.
            if self.block_local_id != Some(ctx.block_id) {
                self.block_local.clear();
                self.block_local_id = Some(ctx.block_id);
            }
            let mask = initial_mask(kernel, warp_id);
            if let Some(t) = self.block_local.get(&mask) {
                self.stats.hits += 1;
                self.stats.reused_warp_insts += t.len() as u64;
                return Arc::clone(t);
            }
            let t = self.trace_fresh(kernel, ctx, warp_id);
            self.stats.misses += 1;
            self.block_local.insert(mask, Arc::clone(&t));
            return t;
        }
        // Block-invariant: retained for the whole launch.
        let key = self.key(kernel, ctx, warp_id);
        if let Some(t) = self.global.get(&key) {
            self.stats.hits += 1;
            self.stats.reused_warp_insts += t.len() as u64;
            return Arc::clone(t);
        }
        let t = self.trace_fresh(kernel, ctx, warp_id);
        self.stats.misses += 1;
        self.global.insert(key, Arc::clone(&t));
        t
    }

    fn trace_fresh(&mut self, kernel: &Kernel, ctx: &ExecCtx, warp_id: u32) -> Arc<[TraceInst]> {
        let t = trace_warp(kernel, ctx, warp_id);
        self.stats.traced_warp_insts += t.len() as u64;
        t.into()
    }

    /// Number of retained (block-invariant) entries.
    pub fn retained_entries(&self) -> usize {
        self.global.len()
    }
}

/// Initial live-lane mask of `warp_id` (mirrors the walker's entry
/// check: lanes whose thread id is within `threads_per_block`).
fn initial_mask(kernel: &Kernel, warp_id: u32) -> u32 {
    let first_thread = warp_id * WARP_SIZE;
    if first_thread >= kernel.threads_per_block {
        return 0;
    }
    let live = (kernel.threads_per_block - first_thread).min(WARP_SIZE);
    if live == 32 {
        u32::MAX
    } else {
        (1u32 << live) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_ir::{AddrPattern, Dist, KernelBuilder, LaunchId, Op};

    fn ctx(block: u32) -> ExecCtx {
        ExecCtx {
            kernel_seed: 77,
            launch_id: LaunchId(0),
            block_id: block,
            num_blocks: 256,
            work_scale: 1.0,
        }
    }

    fn regular_kernel() -> Kernel {
        let mut b = KernelBuilder::new("reg", 77, 128);
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(6), body);
        b.finish(n)
    }

    fn per_block_kernel() -> Kernel {
        let mut b = KernelBuilder::new("blk", 77, 128);
        let site = b.fresh_site();
        let body = b.block(&[Op::IAlu]);
        let n = b.loop_(
            TripCount::PerBlock {
                base: 1,
                spread: 9,
                dist: Dist::Uniform,
                site,
            },
            body,
        );
        b.finish(n)
    }

    fn per_thread_kernel() -> Kernel {
        let mut b = KernelBuilder::new("thr", 77, 128);
        let site = b.fresh_site();
        let body = b.block(&[Op::IAlu]);
        let n = b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 9,
                dist: Dist::Uniform,
                site,
            },
            body,
        );
        b.finish(n)
    }

    fn phase_kernel() -> Kernel {
        let mut b = KernelBuilder::new("ph", 77, 64);
        let site = b.fresh_site();
        let body = b.block(&[Op::FAlu]);
        let n = b.loop_(
            TripCount::PerBlockPhase {
                base: 1,
                spread: 9,
                phase_len: 8,
                dist: Dist::Uniform,
                site,
            },
            body,
        );
        b.finish(n)
    }

    #[test]
    fn deps_classify_kernels() {
        assert_eq!(TraceDeps::of(&regular_kernel()), TraceDeps::default());
        assert!(TraceDeps::of(&per_block_kernel()).per_block);
        assert!(TraceDeps::of(&per_thread_kernel()).per_thread);
        assert_eq!(TraceDeps::of(&phase_kernel()).phase_lens, vec![8]);
    }

    #[test]
    fn interned_traces_match_fresh_everywhere() {
        for kernel in [
            regular_kernel(),
            per_block_kernel(),
            per_thread_kernel(),
            phase_kernel(),
        ] {
            let mut arena = TraceArena::new(&kernel);
            for block in 0..24 {
                for w in 0..kernel.warps_per_block() {
                    let interned = arena.warp_trace(&kernel, &ctx(block), w);
                    let fresh = trace_warp(&kernel, &ctx(block), w);
                    assert_eq!(&interned[..], &fresh[..], "{} b{block} w{w}", kernel.name);
                }
            }
        }
    }

    #[test]
    fn regular_kernel_collapses_to_one_trace() {
        let kernel = regular_kernel(); // 128 threads = 4 full warps
        let mut arena = TraceArena::new(&kernel);
        for block in 0..50 {
            for w in 0..kernel.warps_per_block() {
                arena.warp_trace(&kernel, &ctx(block), w);
            }
        }
        assert_eq!(arena.stats.misses, 1);
        assert_eq!(arena.stats.hits, 199);
        assert_eq!(arena.stats.uncacheable, 0);
        assert_eq!(arena.retained_entries(), 1);
    }

    #[test]
    fn partial_warp_gets_its_own_entry() {
        let mut b = KernelBuilder::new("part", 77, 40); // warp 1 has 8 lanes
        let n = b.block(&[Op::IAlu]);
        let kernel = b.finish(n);
        let mut arena = TraceArena::new(&kernel);
        let full = arena.warp_trace(&kernel, &ctx(0), 0);
        let part = arena.warp_trace(&kernel, &ctx(0), 1);
        assert_ne!(&full[..], &part[..]);
        assert_eq!(arena.stats.misses, 2);
    }

    #[test]
    fn per_block_kernel_shares_within_a_block_only() {
        let kernel = per_block_kernel(); // 4 warps per block
        let mut arena = TraceArena::new(&kernel);
        for block in 0..10 {
            for w in 0..kernel.warps_per_block() {
                arena.warp_trace(&kernel, &ctx(block), w);
            }
        }
        // One miss per block, the other three warps hit.
        assert_eq!(arena.stats.misses, 10);
        assert_eq!(arena.stats.hits, 30);
        // Nothing retained across blocks.
        assert_eq!(arena.retained_entries(), 0);
    }

    #[test]
    fn per_thread_kernel_bypasses_the_cache() {
        let kernel = per_thread_kernel();
        let mut arena = TraceArena::new(&kernel);
        for w in 0..kernel.warps_per_block() {
            arena.warp_trace(&kernel, &ctx(0), w);
        }
        assert_eq!(arena.stats.uncacheable, 4);
        assert_eq!(arena.stats.hits + arena.stats.misses, 0);
    }

    #[test]
    fn phase_kernel_retains_one_entry_per_slice() {
        let kernel = phase_kernel(); // 2 warps, phase_len 8
        let mut arena = TraceArena::new(&kernel);
        for block in 0..32 {
            for w in 0..kernel.warps_per_block() {
                arena.warp_trace(&kernel, &ctx(block), w);
            }
        }
        // 32 blocks / 8 per slice = 4 slices; one shared trace each.
        assert_eq!(arena.retained_entries(), 4);
        assert_eq!(arena.stats.misses, 4);
        assert_eq!(arena.stats.hits, 60);
    }

    #[test]
    fn disabled_caching_is_all_bypass() {
        let kernel = regular_kernel();
        let mut arena = TraceArena::with_caching(&kernel, false);
        for w in 0..kernel.warps_per_block() {
            arena.warp_trace(&kernel, &ctx(0), w);
        }
        assert_eq!(arena.stats.uncacheable, 4);
        assert_eq!(arena.retained_entries(), 0);
    }

    #[test]
    fn keys_differ_when_observed_inputs_differ() {
        let kernel = per_thread_kernel();
        let arena = TraceArena::new(&kernel);
        let a = arena.key(&kernel, &ctx(1), 0);
        assert_ne!(a, arena.key(&kernel, &ctx(2), 0), "block observed");
        assert_ne!(a, arena.key(&kernel, &ctx(1), 1), "warp observed");

        let kernel = phase_kernel();
        let arena = TraceArena::new(&kernel);
        assert_eq!(
            arena.key(&kernel, &ctx(0), 0),
            arena.key(&kernel, &ctx(7), 0),
            "same phase slice"
        );
        assert_ne!(
            arena.key(&kernel, &ctx(0), 0),
            arena.key(&kernel, &ctx(8), 0),
            "next phase slice"
        );
    }
}

//! The SIMT warp walker: executes one warp's structured program with an
//! active lane mask, invoking a callback per warp instruction.
//!
//! Both the profiler and the tracer are thin sinks over this walker, so
//! they see byte-identical instruction streams — the property that makes
//! profiling results transferable to the timing simulator.

use tbpoint_ir::{Cond, ExecCtx, Inst, Kernel, Node, TripCount, WARP_SIZE};

/// One dynamic warp instruction, as seen by a walker sink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarpEvent<'a> {
    /// The static instruction.
    pub inst: &'a Inst,
    /// Active lane mask (bit `l` = lane `l` executes).
    pub mask: u32,
    /// Basic block this instruction belongs to.
    pub bb: tbpoint_ir::BasicBlockId,
    /// Mixed key of the enclosing loop iteration indices; feeds address
    /// generation so different iterations touch different data.
    pub iter_key: u32,
}

/// Execute warp `warp_id` of thread block `ctx.block_id` and call `sink`
/// once per dynamic warp instruction (in program order).
///
/// The initial active mask covers lanes whose thread id is within
/// `threads_per_block`; divergence then only ever narrows it, and sibling
/// paths of an `if` reconverge at the join point (structured control
/// flow — see the crate docs for why this is a faithful substitution).
pub fn walk_warp(
    kernel: &Kernel,
    ctx: &ExecCtx,
    warp_id: u32,
    sink: &mut impl FnMut(WarpEvent<'_>),
) {
    let first_thread = warp_id * WARP_SIZE;
    if first_thread >= kernel.threads_per_block {
        return; // warp entirely out of range
    }
    let live_lanes = (kernel.threads_per_block - first_thread).min(WARP_SIZE);
    let initial_mask = if live_lanes == 32 {
        u32::MAX
    } else {
        (1u32 << live_lanes) - 1
    };
    // Global thread id of lane 0: unique across blocks of the launch.
    let gtid_base = ctx.block_id as u64 * kernel.threads_per_block as u64 + first_thread as u64;
    walk_node(&kernel.program, ctx, gtid_base, initial_mask, 0, sink);
}

fn walk_node(
    node: &Node,
    ctx: &ExecCtx,
    gtid_base: u64,
    mask: u32,
    iter_key: u32,
    sink: &mut impl FnMut(WarpEvent<'_>),
) {
    if mask == 0 {
        return;
    }
    match node {
        Node::Block { id, insts } => {
            for inst in insts {
                sink(WarpEvent {
                    inst,
                    mask,
                    bb: *id,
                    iter_key,
                });
            }
        }
        Node::Seq(nodes) => {
            for n in nodes {
                walk_node(n, ctx, gtid_base, mask, iter_key, sink);
            }
        }
        Node::If { cond, then_, else_ } => {
            let taken = eval_cond_mask(cond, ctx, gtid_base, mask);
            walk_node(then_, ctx, gtid_base, taken, iter_key, sink);
            if let Some(e) = else_ {
                walk_node(e, ctx, gtid_base, mask & !taken, iter_key, sink);
            }
            // Implicit reconvergence: callers continue with `mask`.
        }
        Node::Loop { trips, body } => {
            // Per-lane trip counts; the warp iterates until every active
            // lane has exhausted its count, with the mask shrinking as
            // lanes finish (SIMT loop divergence).
            let mut counts = [0u32; WARP_SIZE as usize];
            let mut max_trips = 0;
            for lane in 0..WARP_SIZE {
                if mask & (1 << lane) != 0 {
                    let c = trips.eval(ctx, gtid_base + lane as u64);
                    counts[lane as usize] = c;
                    max_trips = max_trips.max(c);
                }
            }
            for iter in 0..max_trips {
                let mut m = 0u32;
                for lane in 0..WARP_SIZE {
                    if mask & (1 << lane) != 0 && counts[lane as usize] > iter {
                        m |= 1 << lane;
                    }
                }
                if m == 0 {
                    break;
                }
                // Mix this loop's iteration into the key; the constant is
                // an odd multiplier so nested loops decorrelate.
                let key = iter_key.wrapping_mul(0x9E37_79B9).wrapping_add(iter + 1);
                walk_node(body, ctx, gtid_base, m, key, sink);
            }
        }
    }
}

fn eval_cond_mask(cond: &Cond, ctx: &ExecCtx, gtid_base: u64, mask: u32) -> u32 {
    // Warp-uniform conditions evaluate once (cheap and, for BlockProb,
    // required: all lanes must agree by construction).
    if cond.is_warp_uniform() {
        return if cond.eval(ctx, gtid_base, 0) {
            mask
        } else {
            0
        };
    }
    let mut taken = 0u32;
    for lane in 0..WARP_SIZE {
        if mask & (1 << lane) != 0 && cond.eval(ctx, gtid_base + lane as u64, lane) {
            taken |= 1 << lane;
        }
    }
    taken
}

/// Is `trips` guaranteed warp-uniform? (Re-exported convenience used by
/// tests; the walker itself handles both cases.)
pub fn trips_warp_uniform(trips: &TripCount) -> bool {
    trips.is_warp_uniform()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_ir::{AddrPattern, Dist, KernelBuilder, LaunchId, Op};

    fn ctx(block: u32) -> ExecCtx {
        ExecCtx {
            kernel_seed: 3,
            launch_id: LaunchId(0),
            block_id: block,
            num_blocks: 64,
            work_scale: 1.0,
        }
    }

    fn collect(kernel: &Kernel, ctx: &ExecCtx, warp: u32) -> Vec<(u32, u16)> {
        let mut out = vec![];
        walk_warp(kernel, ctx, warp, &mut |ev| out.push((ev.mask, ev.bb.0)));
        out
    }

    #[test]
    fn straight_line_full_mask() {
        let mut b = KernelBuilder::new("t", 1, 64);
        let n = b.block(&[Op::IAlu, Op::FAlu]);
        let k = b.finish(n);
        let evs = collect(&k, &ctx(0), 0);
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|&(m, _)| m == u32::MAX));
    }

    #[test]
    fn partial_last_warp_mask() {
        // 40 threads: warp 1 has only 8 live lanes.
        let mut b = KernelBuilder::new("t", 1, 40);
        let n = b.block(&[Op::IAlu]);
        let k = b.finish(n);
        let evs = collect(&k, &ctx(0), 1);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].0, 0xFF);
        // Warp 2 does not exist.
        assert!(collect(&k, &ctx(0), 2).is_empty());
    }

    #[test]
    fn const_loop_repeats_body() {
        let mut b = KernelBuilder::new("t", 1, 32);
        let body = b.block(&[Op::IAlu, Op::IAlu]);
        let n = b.loop_(tbpoint_ir::TripCount::Const(5), body);
        let k = b.finish(n);
        let evs = collect(&k, &ctx(0), 0);
        assert_eq!(evs.len(), 10);
    }

    #[test]
    fn lane_lt_if_splits_mask() {
        let mut b = KernelBuilder::new("t", 1, 32);
        let t = b.block(&[Op::IAlu]);
        let e = b.block(&[Op::FAlu]);
        let n = b.if_(Cond::LaneLt(4), t, Some(e));
        let k = b.finish(n);
        let evs = collect(&k, &ctx(0), 0);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].0, 0b1111);
        assert_eq!(evs[1].0, !0b1111);
    }

    #[test]
    fn never_taken_branch_emits_nothing() {
        let mut b = KernelBuilder::new("t", 1, 32);
        let t = b.block(&[Op::IAlu]);
        let n = b.if_(Cond::Never, t, None);
        let k = b.finish(n);
        assert!(collect(&k, &ctx(0), 0).is_empty());
    }

    #[test]
    fn divergent_loop_shrinks_mask() {
        let mut b = KernelBuilder::new("t", 1, 32);
        let site = b.fresh_site();
        let body = b.block(&[Op::IAlu]);
        let n = b.loop_(
            tbpoint_ir::TripCount::PerThread {
                base: 0,
                spread: 8,
                dist: Dist::Uniform,
                site,
            },
            body,
        );
        let k = b.finish(n);
        let evs = collect(&k, &ctx(0), 0);
        assert!(!evs.is_empty());
        // Masks must be non-increasing in popcount across iterations.
        let pops: Vec<u32> = evs.iter().map(|&(m, _)| m.count_ones()).collect();
        for w in pops.windows(2) {
            assert!(w[1] <= w[0], "mask grew inside a loop: {pops:?}");
        }
        // And the first iteration must not already be empty.
        assert!(pops[0] > 0);
    }

    #[test]
    fn iter_keys_distinguish_iterations() {
        let mut b = KernelBuilder::new("t", 1, 32);
        let body = b.block(&[Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        })]);
        let n = b.loop_(tbpoint_ir::TripCount::Const(3), body);
        let k = b.finish(n);
        let mut keys = vec![];
        walk_warp(&k, &ctx(0), 0, &mut |ev| keys.push(ev.iter_key));
        assert_eq!(keys.len(), 3);
        keys.dedup();
        assert_eq!(keys.len(), 3, "iteration keys must differ");
    }

    #[test]
    fn different_blocks_see_different_divergence() {
        let mut b = KernelBuilder::new("t", 1, 32);
        let site = b.fresh_site();
        let t = b.block(&[Op::IAlu]);
        let n = b.if_(Cond::ThreadProb { p: 0.5, site }, t, None);
        let k = b.finish(n);
        let m0 = collect(&k, &ctx(0), 0);
        let m1 = collect(&k, &ctx(1), 0);
        // Same program, different blocks: taken masks should differ
        // (probability of coincidence is 2^-32).
        assert_ne!(m0, m1);
    }

    #[test]
    fn walker_is_deterministic() {
        let mut b = KernelBuilder::new("t", 9, 64);
        let site = b.fresh_site();
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Random {
                region: 1,
                bytes: 1 << 16,
            }),
        ]);
        let n = b.loop_(
            tbpoint_ir::TripCount::PerThread {
                base: 1,
                spread: 5,
                dist: Dist::Uniform,
                site,
            },
            body,
        );
        let k = b.finish(n);
        assert_eq!(collect(&k, &ctx(7), 1), collect(&k, &ctx(7), 1));
    }
}

// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-emu
//!
//! SIMT functional emulator — the reproduction's stand-in for GPUOcelot.
//!
//! TBPoint's profiling step (Section II-B of the paper) runs each kernel
//! once through a *functional* simulator and records, per thread block:
//! thread instructions, warp instructions, memory requests (after
//! coalescing) and — for the Ideal-SimPoint baseline — per-basic-block
//! execution counts. Those counters are **hardware independent**: they
//! depend only on the program and its input, never on cache sizes, warp
//! scheduling or SM counts. That is what lets TBPoint profile once and
//! re-cluster cheaply for any simulated configuration.
//!
//! The emulator walks a warp's structured program with an active lane
//! mask ([`walker`]), from which two consumers are built:
//!
//! * [`profile`] — streaming per-TB / per-launch profiles (no trace is
//!   materialised; counters only), parallelised over thread blocks;
//! * [`trace`] — materialised per-warp instruction traces that the timing
//!   simulator replays. Traces store `(op, mask, iter_key)` and recompute
//!   addresses deterministically, keeping them compact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divergence;
pub mod intern;
pub mod profile;
pub mod trace;
pub mod walker;

pub use divergence::DivergenceReport;
pub use intern::{InternStats, TraceArena, TraceDeps, TraceKey};
pub use profile::{
    profile_launch, profile_launch_obs, profile_run, profile_run_obs, InterFeatures, LaunchProfile,
    RunProfile, TbProfile, TbStats,
};
pub use trace::{trace_warp, TraceInst, WarpTrace};
pub use walker::{walk_warp, WarpEvent};

//! Hardware-independent profiling: the GPUOcelot role.
//!
//! Per thread block we collect exactly the counters the paper's two
//! samplers need (Sections III and IV-B1):
//!
//! * `thread_insts` — kernel-launch-size feature, and the per-TB "thread
//!   block size" that classifies kernels as regular/irregular (Fig. 8);
//! * `warp_insts` — control-flow-divergence feature, and the denominator
//!   of the per-TB stall probability;
//! * `mem_requests` — memory-divergence feature, and the numerator of the
//!   stall probability `p ≈ mem_requests / warp_insts`;
//! * `bbv` — per-basic-block warp-instruction counts, used *only* by the
//!   Ideal-SimPoint baseline (TBPoint itself never needs them).
//!
//! Profiling is one-time per kernel/input pair: every downstream artifact
//! (inter-launch clustering, epoch tables for any occupancy) derives from
//! these records without re-running the emulator.

use crate::walker::walk_warp;
use serde::{Deserialize, Serialize};
use tbpoint_ir::{ExecCtx, Kernel, KernelRun, LatencyClass, LaunchSpec, TbId};
use tbpoint_obs::{Recorder, Span};
use tbpoint_stats::cov;

/// The per-TB feature statistics the live (single-pass) sampler
/// consumes: the subset of [`TbProfile`] counters the timing simulator
/// can reproduce exactly at block retirement, without a separate
/// profiling pass. The counts are hardware independent — identical to
/// what [`profile_tb`] would have recorded for the same block — so a
/// stream of `TbStats` is an incremental, on-the-fly profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TbStats {
    /// Warp instructions executed.
    pub warp_insts: u64,
    /// Thread instructions executed (sum of active lanes).
    pub thread_insts: u64,
    /// Global-memory requests after intra-warp coalescing.
    pub mem_requests: u64,
}

impl TbStats {
    /// The paper's per-TB stall probability approximation:
    /// `mem_requests / warp_insts` (Eq. 5). Zero for an empty TB.
    pub fn stall_probability(&self) -> f64 {
        if self.warp_insts == 0 {
            0.0
        } else {
            self.mem_requests as f64 / self.warp_insts as f64
        }
    }
}

/// Profile of a single thread block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TbProfile {
    /// The thread block.
    pub tb_id: TbId,
    /// Thread instructions executed (sum of active lanes over warp insts).
    pub thread_insts: u64,
    /// Warp instructions executed.
    pub warp_insts: u64,
    /// Global-memory warp instructions executed.
    pub mem_insts: u64,
    /// Global-memory requests after intra-warp coalescing.
    pub mem_requests: u64,
    /// Shared-memory accesses (not stall events in the paper's model).
    pub shared_accesses: u64,
    /// Barriers executed (per warp).
    pub barriers: u64,
    /// Per-basic-block warp-instruction counts (BBV), indexed by block id.
    pub bbv: Vec<u64>,
}

impl TbProfile {
    /// The paper's per-TB stall probability approximation:
    /// `mem_requests / warp_insts` (Eq. 5). Zero for an empty TB.
    pub fn stall_probability(&self) -> f64 {
        if self.warp_insts == 0 {
            0.0
        } else {
            self.mem_requests as f64 / self.warp_insts as f64
        }
    }

    /// "Thread block size" in the paper's sense: thread instructions.
    pub fn size(&self) -> u64 {
        self.thread_insts
    }

    /// The live-sampling feature subset of this profile — the counters a
    /// retire-time stream reproduces ([`TbStats`]).
    pub fn features(&self) -> TbStats {
        TbStats {
            warp_insts: self.warp_insts,
            thread_insts: self.thread_insts,
            mem_requests: self.mem_requests,
        }
    }
}

/// Profile of one kernel launch: per-TB profiles plus launch aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchProfile {
    /// Which launch this is.
    pub spec: LaunchSpec,
    /// Per-thread-block profiles, indexed by TB id.
    pub tbs: Vec<TbProfile>,
}

/// The four inter-launch features of Eq. 2, *before* normalisation by the
/// per-feature averages (normalisation needs all launches, so it happens
/// in `tbpoint-core`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterFeatures {
    /// Kernel launch size: total thread instructions.
    pub thread_insts: f64,
    /// Control-flow divergence proxy: total warp instructions.
    pub warp_insts: f64,
    /// Memory divergence: total memory requests.
    pub mem_requests: f64,
    /// Thread-block variation: CoV of per-TB sizes.
    pub tb_size_cov: f64,
}

impl InterFeatures {
    /// As a clustering point (fixed dimension order).
    pub fn to_point(self) -> Vec<f64> {
        vec![
            self.thread_insts,
            self.warp_insts,
            self.mem_requests,
            self.tb_size_cov,
        ]
    }
}

impl LaunchProfile {
    /// Total thread instructions in the launch.
    pub fn thread_insts(&self) -> u64 {
        self.tbs.iter().map(|t| t.thread_insts).sum()
    }

    /// Total warp instructions in the launch.
    pub fn warp_insts(&self) -> u64 {
        self.tbs.iter().map(|t| t.warp_insts).sum()
    }

    /// Total memory requests in the launch.
    pub fn mem_requests(&self) -> u64 {
        self.tbs.iter().map(|t| t.mem_requests).sum()
    }

    /// CoV of thread-block sizes (the fourth feature of Eq. 2).
    pub fn tb_size_cov(&self) -> f64 {
        let sizes: Vec<f64> = self.tbs.iter().map(|t| t.thread_insts as f64).collect();
        cov(&sizes)
    }

    /// Launch-level BBV: per-basic-block warp-instruction counts summed
    /// over the launch's thread blocks (the paper's footnote-2 extension
    /// feeds this into the inter-launch feature vector).
    pub fn bbv(&self) -> Vec<u64> {
        let dims = self.tbs.first().map_or(0, |t| t.bbv.len());
        let mut acc = vec![0u64; dims];
        for tb in &self.tbs {
            for (a, &c) in acc.iter_mut().zip(&tb.bbv) {
                *a += c;
            }
        }
        acc
    }

    /// The raw (unnormalised) inter-launch feature tuple.
    pub fn inter_features(&self) -> InterFeatures {
        InterFeatures {
            thread_insts: self.thread_insts() as f64,
            warp_insts: self.warp_insts() as f64,
            mem_requests: self.mem_requests() as f64,
            tb_size_cov: self.tb_size_cov(),
        }
    }
}

/// Profile of a whole benchmark run (every launch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Kernel name (Table VI abbreviation).
    pub kernel_name: String,
    /// Per-launch profiles, in launch order.
    pub launches: Vec<LaunchProfile>,
}

impl RunProfile {
    /// Total warp instructions across every launch (denominator of the
    /// total-sample-size metric, Fig. 10).
    pub fn total_warp_insts(&self) -> u64 {
        self.launches.iter().map(|l| l.warp_insts()).sum()
    }

    /// Total thread instructions across every launch.
    pub fn total_thread_insts(&self) -> u64 {
        self.launches.iter().map(|l| l.thread_insts()).sum()
    }

    /// Persist the profile as JSON — the one-time-profiling workflow:
    /// profile once, save, and feed any number of simulated
    /// configurations from the file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, serde_json::to_vec(self)?)
    }

    /// Load a profile saved with [`RunProfile::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<RunProfile> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes).map_err(std::io::Error::other)
    }
}

/// Profile one thread block (single-threaded, streaming).
pub fn profile_tb(kernel: &Kernel, ctx: &ExecCtx, tb_id: TbId) -> TbProfile {
    let mut p = TbProfile {
        tb_id,
        thread_insts: 0,
        warp_insts: 0,
        mem_insts: 0,
        mem_requests: 0,
        shared_accesses: 0,
        barriers: 0,
        bbv: vec![0; kernel.num_basic_blocks as usize],
    };
    for warp in 0..kernel.warps_per_block() {
        let gtid_base = ctx.block_id as u64 * kernel.threads_per_block as u64 + warp as u64 * 32;
        walk_warp(kernel, ctx, warp, &mut |ev| {
            p.warp_insts += 1;
            p.thread_insts += ev.mask.count_ones() as u64;
            p.bbv[ev.bb.0 as usize] += 1;
            match ev.inst.op.latency_class() {
                LatencyClass::GlobalMem => {
                    p.mem_insts += 1;
                    // Every GlobalMem op carries a pattern by construction of
                    // the IR; a missing one counts as zero requests rather
                    // than aborting the profile.
                    if let Some(pat) = ev.inst.op.addr_pattern() {
                        p.mem_requests += pat
                            .coalesced_lines(ctx, gtid_base, ev.mask, ev.iter_key, ev.inst.site)
                            .len() as u64;
                    }
                }
                LatencyClass::SharedMem => p.shared_accesses += 1,
                LatencyClass::Barrier => p.barriers += 1,
                _ => {}
            }
        });
    }
    p
}

/// Profile every thread block of a launch, fanning TBs out over `threads`
/// crossbeam workers. Output order is by TB id regardless of thread count.
pub fn profile_launch(kernel: &Kernel, spec: &LaunchSpec, threads: usize) -> LaunchProfile {
    let n = spec.num_blocks as usize;
    let mut tbs: Vec<TbProfile> = Vec::with_capacity(n);
    let make_ctx = |block_id: u32| ExecCtx {
        kernel_seed: kernel.seed,
        launch_id: spec.launch_id,
        block_id,
        num_blocks: spec.num_blocks,
        work_scale: spec.work_scale,
    };
    let threads = threads.max(1);
    // `n` comes from spec.num_blocks: u32, so block ids round-trip exactly.
    #[allow(clippy::cast_possible_truncation)]
    if threads == 1 || n < 64 {
        for b in 0..n {
            tbs.push(profile_tb(kernel, &make_ctx(b as u32), TbId(b as u32)));
        }
    } else {
        let mut slots: Vec<Option<TbProfile>> = vec![None; n];
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slice) in slots.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                scope.spawn(move || {
                    for (off, slot) in slice.iter_mut().enumerate() {
                        let b = (base + off) as u32;
                        *slot = Some(profile_tb(kernel, &make_ctx(b), TbId(b)));
                    }
                });
            }
        });
        // The chunked loop above writes every slot and the scope joins all
        // workers, so `flatten` drops nothing.
        tbs.extend(slots.into_iter().flatten());
    }
    LaunchProfile { spec: *spec, tbs }
}

/// [`profile_launch`] wrapped in a `ProfileLaunch` span with aggregate
/// counters for observed pipelines. Profiling has no simulated clock, so
/// span events carry cycle 0. Recording is observation-only: the
/// returned profile is identical for every recorder.
pub fn profile_launch_obs<R: Recorder + ?Sized>(
    kernel: &Kernel,
    spec: &LaunchSpec,
    threads: usize,
    rec: &R,
) -> LaunchProfile {
    let span = Span::ProfileLaunch {
        launch: spec.launch_id.0,
    };
    rec.span_start(0, span);
    let lp = profile_launch(kernel, spec, threads);
    if rec.enabled() {
        rec.counter(
            "profiled_tbs",
            u64::try_from(lp.tbs.len()).unwrap_or(u64::MAX),
        );
        rec.counter("profiled_warp_insts", lp.warp_insts());
        rec.counter("profiled_thread_insts", lp.thread_insts());
        rec.counter("profiled_mem_requests", lp.mem_requests());
    }
    rec.span_end(0, span);
    lp
}

/// Profile a whole benchmark run (all launches).
pub fn profile_run(run: &KernelRun, threads: usize) -> RunProfile {
    RunProfile {
        kernel_name: run.kernel.name.clone(),
        launches: run
            .launches
            .iter()
            .map(|spec| profile_launch(&run.kernel, spec, threads))
            .collect(),
    }
}

/// [`profile_run`] with one `ProfileLaunch` span per launch.
pub fn profile_run_obs<R: Recorder + ?Sized>(
    run: &KernelRun,
    threads: usize,
    rec: &R,
) -> RunProfile {
    RunProfile {
        kernel_name: run.kernel.name.clone(),
        launches: run
            .launches
            .iter()
            .map(|spec| profile_launch_obs(&run.kernel, spec, threads, rec))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_ir::{AddrPattern, Cond, Dist, KernelBuilder, LaunchId, Op, TripCount};

    fn launch(n_blocks: u32) -> LaunchSpec {
        LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: n_blocks,
            work_scale: 1.0,
        }
    }

    fn simple_kernel(tpb: u32) -> Kernel {
        let mut b = KernelBuilder::new("t", 5, tpb);
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(4), body);
        b.finish(n)
    }

    #[test]
    fn counts_straight_line_kernel() {
        let k = simple_kernel(64); // 2 warps
        let ctx = ExecCtx {
            kernel_seed: 5,
            launch_id: LaunchId(0),
            block_id: 0,
            num_blocks: 1,
            work_scale: 1.0,
        };
        let p = profile_tb(&k, &ctx, TbId(0));
        // 2 warps * 4 iterations * 2 insts = 16 warp insts.
        assert_eq!(p.warp_insts, 16);
        assert_eq!(p.thread_insts, 16 * 32);
        // 1 coalesced load per iteration per warp = 8 requests (32 lanes x
        // 4B = 1 line each).
        assert_eq!(p.mem_requests, 8);
        assert_eq!(p.bbv.len(), 1);
        assert_eq!(p.bbv[0], 16);
        assert!((p.stall_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn divergence_reduces_thread_insts_not_warp_insts() {
        let mut b = KernelBuilder::new("t", 5, 32);
        let t = b.block(&[Op::IAlu]);
        let n = b.if_(Cond::LaneLt(8), t, None);
        let k = b.finish(n);
        let ctx = ExecCtx {
            kernel_seed: 5,
            launch_id: LaunchId(0),
            block_id: 0,
            num_blocks: 1,
            work_scale: 1.0,
        };
        let p = profile_tb(&k, &ctx, TbId(0));
        assert_eq!(p.warp_insts, 1);
        assert_eq!(p.thread_insts, 8);
    }

    #[test]
    fn strided_loads_inflate_mem_requests() {
        let mut b = KernelBuilder::new("t", 5, 32);
        let n = b.block(&[Op::LdGlobal(AddrPattern::Strided {
            region: 0,
            stride: 128,
        })]);
        let k = b.finish(n);
        let ctx = ExecCtx {
            kernel_seed: 5,
            launch_id: LaunchId(0),
            block_id: 0,
            num_blocks: 1,
            work_scale: 1.0,
        };
        let p = profile_tb(&k, &ctx, TbId(0));
        assert_eq!(p.warp_insts, 1);
        assert_eq!(p.mem_requests, 32);
        assert_eq!(p.stall_probability(), 32.0);
    }

    #[test]
    fn launch_aggregates_sum_tbs() {
        let k = simple_kernel(64);
        let lp = profile_launch(&k, &launch(10), 1);
        assert_eq!(lp.tbs.len(), 10);
        assert_eq!(lp.thread_insts(), 10 * 16 * 32);
        assert_eq!(lp.warp_insts(), 160);
        let f = lp.inter_features();
        assert_eq!(f.thread_insts, (10 * 16 * 32) as f64);
        // Homogeneous TBs: CoV must be 0.
        assert_eq!(f.tb_size_cov, 0.0);
    }

    #[test]
    fn parallel_profile_matches_serial() {
        let mut b = KernelBuilder::new("t", 5, 64);
        let site = b.fresh_site();
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Random {
                region: 0,
                bytes: 1 << 20,
            }),
        ]);
        let n = b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 9,
                dist: Dist::PowerLaw { alpha: 2.0 },
                site,
            },
            body,
        );
        let k = b.finish(n);
        let serial = profile_launch(&k, &launch(200), 1);
        let parallel = profile_launch(&k, &launch(200), 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn heterogeneous_blocks_have_nonzero_cov() {
        let mut b = KernelBuilder::new("t", 5, 32);
        let site = b.fresh_site();
        let body = b.block(&[Op::IAlu]);
        let n = b.loop_(
            TripCount::PerBlock {
                base: 1,
                spread: 50,
                dist: Dist::Uniform,
                site,
            },
            body,
        );
        let k = b.finish(n);
        let lp = profile_launch(&k, &launch(50), 1);
        assert!(lp.tb_size_cov() > 0.1, "cov = {}", lp.tb_size_cov());
    }

    #[test]
    fn features_agree_with_profile() {
        let k = simple_kernel(64);
        let ctx = ExecCtx {
            kernel_seed: 5,
            launch_id: LaunchId(0),
            block_id: 0,
            num_blocks: 1,
            work_scale: 1.0,
        };
        let p = profile_tb(&k, &ctx, TbId(0));
        let f = p.features();
        assert_eq!(f.warp_insts, p.warp_insts);
        assert_eq!(f.thread_insts, p.thread_insts);
        assert_eq!(f.mem_requests, p.mem_requests);
        assert_eq!(f.stall_probability(), p.stall_probability());
        assert_eq!(TbStats::default().stall_probability(), 0.0);
    }

    #[test]
    fn empty_tb_stall_probability_is_zero() {
        let p = TbProfile {
            tb_id: TbId(0),
            thread_insts: 0,
            warp_insts: 0,
            mem_insts: 0,
            mem_requests: 0,
            shared_accesses: 0,
            barriers: 0,
            bbv: vec![],
        };
        assert_eq!(p.stall_probability(), 0.0);
    }

    #[test]
    fn run_profile_totals() {
        let k = simple_kernel(32);
        let run = KernelRun {
            kernel: k,
            launches: vec![
                LaunchSpec {
                    launch_id: LaunchId(0),
                    num_blocks: 2,
                    work_scale: 1.0,
                },
                LaunchSpec {
                    launch_id: LaunchId(1),
                    num_blocks: 3,
                    work_scale: 1.0,
                },
            ],
        };
        let rp = profile_run(&run, 1);
        assert_eq!(rp.launches.len(), 2);
        // 1 warp * 4 iters * 2 insts = 8 warp insts per TB; 5 TBs total.
        assert_eq!(rp.total_warp_insts(), 40);
    }

    #[test]
    fn profile_save_load_roundtrip() {
        let k = simple_kernel(64);
        let run = KernelRun {
            kernel: k,
            launches: vec![LaunchSpec {
                launch_id: LaunchId(0),
                num_blocks: 5,
                work_scale: 1.0,
            }],
        };
        let rp = profile_run(&run, 1);
        let path = std::env::temp_dir().join("tbpoint_profile_roundtrip.json");
        rp.save(&path).unwrap();
        let back = RunProfile::load(&path).unwrap();
        assert_eq!(rp, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn work_scale_changes_launch_size() {
        let k = simple_kernel(32);
        let small = profile_launch(&k, &launch(4), 1);
        let big = profile_launch(
            &k,
            &LaunchSpec {
                launch_id: LaunchId(0),
                num_blocks: 4,
                work_scale: 3.0,
            },
            1,
        );
        assert_eq!(big.warp_insts(), 3 * small.warp_insts());
    }
}

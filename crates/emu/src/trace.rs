//! Materialised warp traces for the timing simulator.
//!
//! Macsim is trace-driven; so is our timing simulator. A [`WarpTrace`] is
//! the dynamic warp-instruction sequence of one warp, materialised when
//! its thread block is dispatched to an SM and dropped when the block
//! retires — peak memory is bounded by the number of *resident* blocks,
//! not the grid size. Entries carry `(op, mask, iter_key)`; per-lane
//! addresses are recomputed on demand from the deterministic IR patterns,
//! which keeps entries at a fixed small size instead of 32 addresses each.

use crate::walker::walk_warp;
use tbpoint_ir::{ExecCtx, Kernel, Op};

/// One dynamic warp instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceInst {
    /// Operation (including the address pattern for global accesses).
    pub op: Op,
    /// Active lane mask.
    pub mask: u32,
    /// Loop-iteration key for address generation.
    pub iter_key: u32,
    /// Static site id (address decorrelation).
    pub site: u32,
    /// Basic block id (BBV accounting during timing simulation).
    pub bb: u16,
}

/// The full dynamic instruction sequence of one warp.
pub type WarpTrace = Vec<TraceInst>;

/// Materialise the trace of warp `warp_id` of block `ctx.block_id`.
pub fn trace_warp(kernel: &Kernel, ctx: &ExecCtx, warp_id: u32) -> WarpTrace {
    let mut trace = Vec::new();
    walk_warp(kernel, ctx, warp_id, &mut |ev| {
        trace.push(TraceInst {
            op: ev.inst.op,
            mask: ev.mask,
            iter_key: ev.iter_key,
            site: ev.inst.site,
            bb: ev.bb.0,
        });
    });
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_tb;
    use tbpoint_ir::{AddrPattern, Dist, KernelBuilder, LaunchId, TbId, TripCount};

    fn ctx(block: u32) -> ExecCtx {
        ExecCtx {
            kernel_seed: 21,
            launch_id: LaunchId(1),
            block_id: block,
            num_blocks: 64,
            work_scale: 1.0,
        }
    }

    fn divergent_kernel() -> Kernel {
        let mut b = KernelBuilder::new("t", 21, 96);
        let site = b.fresh_site();
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Random {
                region: 0,
                bytes: 1 << 18,
            }),
        ]);
        let n = b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 7,
                dist: Dist::Uniform,
                site,
            },
            body,
        );
        b.finish(n)
    }

    #[test]
    fn trace_matches_profile_counts() {
        // The trace and the streaming profile must agree instruction for
        // instruction — they are two sinks over the same walker.
        let k = divergent_kernel();
        let c = ctx(3);
        let profile = profile_tb(&k, &c, TbId(3));
        let mut warp_insts = 0u64;
        let mut thread_insts = 0u64;
        for w in 0..k.warps_per_block() {
            let t = trace_warp(&k, &c, w);
            warp_insts += t.len() as u64;
            thread_insts += t.iter().map(|i| i.mask.count_ones() as u64).sum::<u64>();
        }
        assert_eq!(warp_insts, profile.warp_insts);
        assert_eq!(thread_insts, profile.thread_insts);
    }

    #[test]
    fn trace_is_deterministic() {
        let k = divergent_kernel();
        assert_eq!(trace_warp(&k, &ctx(0), 1), trace_warp(&k, &ctx(0), 1));
    }

    #[test]
    fn out_of_range_warp_gives_empty_trace() {
        let k = divergent_kernel(); // 96 threads = 3 warps
        assert!(trace_warp(&k, &ctx(0), 3).is_empty());
    }

    #[test]
    fn trace_entries_carry_sites_and_bbs() {
        let k = divergent_kernel();
        let t = trace_warp(&k, &ctx(0), 0);
        assert!(!t.is_empty());
        assert!(t.iter().all(|i| i.bb == 0));
        // The two instructions in the body alternate sites.
        let sites: Vec<u32> = t.iter().map(|i| i.site).collect();
        assert!(sites.windows(2).any(|w| w[0] != w[1]));
    }
}

//! Divergence characterisation: how much SIMD width and memory
//! coalescing a kernel loses, per thread block and per launch.
//!
//! These reports quantify the *sources* of the paper's inter-launch
//! features: control-flow divergence (feature 2 vs feature 1) and memory
//! divergence (feature 3). `tbpoint inspect` prints them; tests use them
//! to verify the synthetic workloads actually exhibit the irregularity
//! their Table VI types claim.

use crate::profile::LaunchProfile;
use serde::{Deserialize, Serialize};
use tbpoint_stats::Histogram;

/// Divergence summary of one launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Mean active lanes per warp instruction (32 = fully converged).
    pub avg_active_lanes: f64,
    /// SIMD efficiency: `avg_active_lanes / 32`.
    pub simd_efficiency: f64,
    /// Mean memory requests per global-memory warp instruction
    /// (1 = fully coalesced, 32 = fully divergent). Zero if the launch
    /// performs no global accesses.
    pub requests_per_mem_inst: f64,
    /// Distribution of per-TB SIMD efficiency (16 bins over [0, 1]).
    pub tb_efficiency_histogram: Vec<(f64, u64)>,
}

impl DivergenceReport {
    /// Build the report from a launch profile.
    pub fn from_profile(profile: &LaunchProfile) -> Self {
        let warp_insts = profile.warp_insts();
        let thread_insts = profile.thread_insts();
        let mem_requests = profile.mem_requests();
        let mem_insts: u64 = profile.tbs.iter().map(|t| t.mem_insts).sum();
        let avg_active = if warp_insts == 0 {
            0.0
        } else {
            thread_insts as f64 / warp_insts as f64
        };

        let mut hist = Histogram::new(0.0, 1.0 + 1e-9, 16);
        for tb in &profile.tbs {
            if tb.warp_insts > 0 {
                hist.record(tb.thread_insts as f64 / (tb.warp_insts as f64 * 32.0));
            }
        }

        DivergenceReport {
            avg_active_lanes: avg_active,
            simd_efficiency: avg_active / 32.0,
            requests_per_mem_inst: if mem_insts == 0 {
                0.0
            } else {
                mem_requests as f64 / mem_insts as f64
            },
            tb_efficiency_histogram: hist.centers(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_launch;
    use tbpoint_ir::{AddrPattern, Cond, Dist, KernelBuilder, LaunchId, LaunchSpec, Op, TripCount};

    fn spec(n: u32) -> LaunchSpec {
        LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: n,
            work_scale: 1.0,
        }
    }

    #[test]
    fn converged_kernel_has_full_efficiency() {
        let mut b = KernelBuilder::new("t", 1, 64);
        let n = b.block(&[Op::IAlu, Op::FAlu]);
        let k = b.finish(n);
        let p = profile_launch(&k, &spec(10), 1);
        let r = DivergenceReport::from_profile(&p);
        assert!((r.simd_efficiency - 1.0).abs() < 1e-12);
        assert_eq!(r.avg_active_lanes, 32.0);
    }

    #[test]
    fn divergent_kernel_loses_lanes() {
        let mut b = KernelBuilder::new("t", 2, 64);
        let site = b.fresh_site();
        let t = b.block(&[Op::IAlu, Op::IAlu]);
        let n = b.if_(Cond::ThreadProb { p: 0.5, site }, t, None);
        let k = b.finish(n);
        let p = profile_launch(&k, &spec(50), 1);
        let r = DivergenceReport::from_profile(&p);
        assert!(
            r.simd_efficiency > 0.3 && r.simd_efficiency < 0.7,
            "p=0.5 branch should halve efficiency, got {}",
            r.simd_efficiency
        );
    }

    #[test]
    fn random_gather_is_memory_divergent() {
        let mut b = KernelBuilder::new("t", 3, 64);
        let n = b.block(&[Op::LdGlobal(AddrPattern::Random {
            region: 0,
            bytes: 32 << 20,
        })]);
        let k = b.finish(n);
        let p = profile_launch(&k, &spec(20), 1);
        let r = DivergenceReport::from_profile(&p);
        assert!(
            r.requests_per_mem_inst > 20.0,
            "random gather should be near-fully divergent: {}",
            r.requests_per_mem_inst
        );
    }

    #[test]
    fn coalesced_kernel_is_not() {
        let mut b = KernelBuilder::new("t", 4, 64);
        let n = b.block(&[Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        })]);
        let k = b.finish(n);
        let p = profile_launch(&k, &spec(20), 1);
        let r = DivergenceReport::from_profile(&p);
        assert!(
            r.requests_per_mem_inst <= 1.01,
            "got {}",
            r.requests_per_mem_inst
        );
    }

    #[test]
    fn histogram_concentrates_for_uniform_blocks() {
        let mut b = KernelBuilder::new("t", 5, 64);
        let site = b.fresh_site();
        let body = b.block(&[Op::IAlu]);
        let n = b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 10,
                dist: Dist::Uniform,
                site,
            },
            body,
        );
        let k = b.finish(n);
        let p = profile_launch(&k, &spec(64), 1);
        let r = DivergenceReport::from_profile(&p);
        let total: u64 = r.tb_efficiency_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 64, "every TB lands in the histogram");
    }
}

//! Ablation benches for the design choices DESIGN.md calls out: each
//! measures the *runtime cost* of a design variant on the same workload
//! (the quality impact of the same sweeps is produced by `tbpoint
//! ablate`, which reports error/sample-size tables).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tbpoint_core::inter::{InterAlgo, InterConfig};
use tbpoint_core::intra::{build_epochs, identify_regions, IntraConfig};
use tbpoint_core::predict::{run_tbpoint, TbpointConfig};
use tbpoint_emu::{profile_run, RunProfile};
use tbpoint_ir::KernelRun;
use tbpoint_sim::{GpuConfig, SchedPolicy};
use tbpoint_workloads::{benchmark_by_name, Scale};

fn fixture() -> (KernelRun, RunProfile, GpuConfig) {
    let bench = benchmark_by_name("spmv", Scale::Tiny).unwrap();
    let profile = profile_run(&bench.run, 1);
    (bench.run, profile, GpuConfig::fermi())
}

/// Ablation 1: epoch size relative to system occupancy (the paper fixes
/// it at exactly the occupancy, Eq. 4).
fn bench_epoch_size(c: &mut Criterion) {
    let (run, profile, gpu) = fixture();
    let occupancy = gpu.system_occupancy(&run.kernel);
    let mut g = c.benchmark_group("ablation/epoch_size");
    for mult in [0.5f64, 1.0, 2.0] {
        let epoch = ((occupancy as f64 * mult) as u32).max(1);
        g.bench_with_input(BenchmarkId::from_parameter(mult), &epoch, |b, &epoch| {
            b.iter(|| {
                let epochs = build_epochs(&profile.launches[0], epoch);
                black_box(identify_regions(&epochs, &IntraConfig::default()))
            });
        });
    }
    g.finish();
}

/// Ablation 2: hierarchical vs k-means+BIC for inter-launch clustering.
fn bench_inter_algo(c: &mut Criterion) {
    let (run, profile, gpu) = fixture();
    let mut g = c.benchmark_group("ablation/inter_algo");
    g.sample_size(10);
    for (label, algo) in [
        ("hierarchical", InterAlgo::Hierarchical),
        ("kmeans_bic", InterAlgo::KMeansBic { max_k: 10 }),
    ] {
        let cfg = TbpointConfig {
            inter: InterConfig {
                algo,
                ..InterConfig::default()
            },
            ..TbpointConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| black_box(run_tbpoint(&run, &profile, cfg, &gpu).expect("valid")));
        });
    }
    g.finish();
}

/// Ablation 3: warp scheduler policy (loose round-robin vs GTO).
fn bench_scheduler(c: &mut Criterion) {
    let (run, profile, _) = fixture();
    let mut g = c.benchmark_group("ablation/warp_scheduler");
    g.sample_size(10);
    for (label, sched) in [("rr", SchedPolicy::RoundRobin), ("gto", SchedPolicy::Gto)] {
        let mut gpu = GpuConfig::fermi();
        gpu.sched = sched;
        g.bench_with_input(BenchmarkId::from_parameter(label), &gpu, |b, gpu| {
            b.iter(|| {
                black_box(
                    run_tbpoint(&run, &profile, &TbpointConfig::default(), gpu).expect("valid"),
                )
            });
        });
    }
    g.finish();
}

/// Ablation 4: variation-factor threshold (outlier sensitivity).
fn bench_variation_factor(c: &mut Criterion) {
    let bench = benchmark_by_name("mst", Scale::Tiny).unwrap();
    let profile = profile_run(&bench.run, 1);
    let gpu = GpuConfig::fermi();
    let occupancy = gpu.system_occupancy(&bench.run.kernel);
    let epochs = build_epochs(&profile.launches[0], occupancy);
    let mut g = c.benchmark_group("ablation/variation_factor");
    for vf in [0.1f64, 0.3, 0.6] {
        let cfg = IntraConfig {
            sigma: 0.2,
            variation_factor: vf,
        };
        g.bench_with_input(BenchmarkId::from_parameter(vf), &cfg, |b, cfg| {
            b.iter(|| black_box(identify_regions(&epochs, cfg)));
        });
    }
    g.finish();
}

/// Figs. 12/13 cost: retargeting TBPoint at a different hardware
/// configuration from the SAME profile (the one-time-profiling claim —
/// only clustering and the sampled simulation rerun).
fn bench_hw_retarget(c: &mut Criterion) {
    let (run, profile, _) = fixture();
    let mut g = c.benchmark_group("fig12_13/hw_retarget");
    g.sample_size(10);
    for (w, s) in [(16u32, 8u32), (32, 14), (48, 28)] {
        let gpu = GpuConfig::with_occupancy(w, s);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("W{w}S{s}")),
            &gpu,
            |b, gpu| {
                b.iter(|| {
                    black_box(
                        run_tbpoint(&run, &profile, &TbpointConfig::default(), gpu).expect("valid"),
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_epoch_size,
    bench_inter_algo,
    bench_scheduler,
    bench_variation_factor,
    bench_hw_retarget
);
criterion_main!(benches);

//! Fig. 5 bench: the Markov-chain warp-interleaving model and its
//! Monte-Carlo driver. Regenerates the Fig. 5 data shape (IPC variation
//! per (p, M, N) configuration) while measuring its cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tbpoint_model::{ipc_variation, IpcVariationConfig, WarpChain};

fn bench_steady_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/markov_steady_state");
    for n in [2u32, 4, 8] {
        g.bench_with_input(BenchmarkId::new("dense_chain", n), &n, |b, &n| {
            let chain = WarpChain::uniform(n, 0.1, 200.0);
            b.iter(|| black_box(chain.ipc()));
        });
        g.bench_with_input(BenchmarkId::new("closed_form", n), &n, |b, &n| {
            let chain = WarpChain::uniform(n, 0.1, 200.0);
            b.iter(|| black_box(chain.ipc_fast()));
        });
    }
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/monte_carlo");
    g.sample_size(10);
    for samples in [1_000usize, 10_000] {
        g.bench_with_input(
            BenchmarkId::new("p0.1M200N8", samples),
            &samples,
            |b, &samples| {
                let mut cfg = IpcVariationConfig::paper(0.1, 200.0, 8);
                cfg.samples = samples;
                b.iter(|| {
                    let r = ipc_variation(&cfg, 1);
                    assert!(r.fraction_within_band > 0.9);
                    black_box(r)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_steady_state, bench_monte_carlo);
criterion_main!(benches);

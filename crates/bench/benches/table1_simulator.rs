//! Table I bench: raw simulator and emulator throughput — the numbers
//! behind the slowdown table. Reported as time per launch; divide issued
//! warp instructions by the measured time for insts/sec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tbpoint_emu::profile_launch;
use tbpoint_ir::{AddrPattern, Kernel, KernelBuilder, LaunchId, LaunchSpec, Op, TripCount};
use tbpoint_sim::{simulate_launch, GpuConfig, NullSampling};

fn compute_kernel() -> Kernel {
    let mut b = KernelBuilder::new("alu", 3, 128);
    let body = b.block(&[Op::IAlu, Op::FAlu, Op::IAlu, Op::FAlu]);
    let n = b.loop_(TripCount::Const(25), body);
    b.finish(n)
}

fn memory_kernel() -> Kernel {
    let mut b = KernelBuilder::new("mem", 3, 128);
    let body = b.block(&[
        Op::IAlu,
        Op::LdGlobal(AddrPattern::Random {
            region: 0,
            bytes: 16 << 20,
        }),
    ]);
    let n = b.loop_(TripCount::Const(25), body);
    b.finish(n)
}

fn spec(n: u32) -> LaunchSpec {
    LaunchSpec {
        launch_id: LaunchId(0),
        num_blocks: n,
        work_scale: 1.0,
    }
}

fn bench_timing_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/timing_simulator");
    g.sample_size(10);
    let gpu = GpuConfig::fermi();
    for (label, kernel) in [("compute", compute_kernel()), ("memory", memory_kernel())] {
        let sp = spec(256);
        // 256 TBs * 4 warps * 100 warp insts.
        let insts = 256u64 * 4 * 100;
        g.throughput(Throughput::Elements(insts));
        g.bench_with_input(BenchmarkId::from_parameter(label), &kernel, |b, kernel| {
            b.iter(|| black_box(simulate_launch(kernel, &sp, &gpu, &mut NullSampling, None)));
        });
    }
    g.finish();
}

fn bench_functional_emulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/functional_profiler");
    let kernel = memory_kernel();
    let sp = spec(256);
    g.throughput(Throughput::Elements(256 * 4 * 100));
    g.bench_function("profile_launch", |b| {
        b.iter(|| black_box(profile_launch(&kernel, &sp, 1)));
    });
    g.finish();
}

criterion_group!(benches, bench_timing_simulator, bench_functional_emulator);
criterion_main!(benches);

//! Clustering microbenches: the hierarchical algorithm the paper picks
//! vs. the k-means+BIC it rejects, across input sizes that bracket the
//! real uses (dozens of launches, thousands of epochs, hundreds of BBVs).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tbpoint_bench::blob_points;
use tbpoint_cluster::{hierarchical_cluster, kmeans_best_bic, Linkage};

fn bench_hierarchical(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering/hierarchical");
    for n in [50usize, 200, 1000] {
        let points = blob_points(n, 4, 3, 42);
        g.bench_with_input(BenchmarkId::new("complete", n), &points, |b, points| {
            b.iter(|| {
                let r = hierarchical_cluster(points, 4.0, Linkage::Complete);
                // Blobs sit 10 apart: they never merge, but a large blob's
                // diameter can exceed the threshold and split it.
                assert!(r.num_clusters >= 3);
                black_box(r)
            });
        });
    }
    // Linkage comparison at one size.
    let points = blob_points(200, 4, 3, 42);
    for (label, linkage) in [
        ("single", Linkage::Single),
        ("average", Linkage::Average),
        ("complete", Linkage::Complete),
    ] {
        g.bench_with_input(BenchmarkId::new("linkage", label), &points, |b, points| {
            b.iter(|| black_box(hierarchical_cluster(points, 4.0, linkage)));
        });
    }
    g.finish();
}

fn bench_kmeans_bic(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering/kmeans_bic");
    g.sample_size(10);
    for n in [50usize, 200] {
        let points = blob_points(n, 4, 3, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, points| {
            b.iter(|| {
                let r = kmeans_best_bic(points, 10, 7, 0.9);
                assert_eq!(r.clustering.num_clusters, 3);
                black_box(r)
            });
        });
    }
    // High-dimensional BBV-shaped inputs (Ideal-SimPoint's workload).
    let bbvs = blob_points(120, 32, 4, 9);
    g.bench_function("bbv_120x32", |b| {
        b.iter(|| black_box(kmeans_best_bic(&bbvs, 30, 7, 0.9)));
    });
    g.finish();
}

criterion_group!(benches, bench_hierarchical, bench_kmeans_bic);
criterion_main!(benches);

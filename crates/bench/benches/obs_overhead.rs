//! Observability overhead: `simulate_launch` against `simulate_launch_obs`
//! under each recorder. The contract the ISSUE pins is that the
//! `NullRecorder` path is free — monomorphisation compiles the
//! instrumentation away, so `null_recorder` must track `baseline` within
//! noise (a few percent). `collecting` and `jsonl` quantify what an
//! enabled recorder costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tbpoint_obs::{CollectingRecorder, JsonlRecorder, NullRecorder};
use tbpoint_sim::{simulate_launch, simulate_launch_obs, GpuConfig, NullSampling};
use tbpoint_workloads::{benchmark_by_name, Scale};

fn bench_obs_overhead(c: &mut Criterion) {
    let bench = benchmark_by_name("cfd", Scale::Tiny).unwrap();
    let gpu = GpuConfig::fermi();
    let launch = &bench.run.launches[0];
    let kernel = &bench.run.kernel;

    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(20);

    g.bench_function("baseline", |b| {
        b.iter(|| {
            black_box(simulate_launch(
                kernel,
                launch,
                &gpu,
                &mut NullSampling,
                None,
            ))
        });
    });

    g.bench_function("null_recorder", |b| {
        b.iter(|| {
            black_box(simulate_launch_obs(
                kernel,
                launch,
                &gpu,
                &mut NullSampling,
                None,
                &NullRecorder,
            ))
        });
    });

    g.bench_function("collecting", |b| {
        b.iter(|| {
            let rec = CollectingRecorder::new();
            let r = simulate_launch_obs(kernel, launch, &gpu, &mut NullSampling, None, &rec);
            black_box((r, rec.finish()))
        });
    });

    g.bench_function("jsonl", |b| {
        b.iter(|| {
            let rec = JsonlRecorder::new();
            let r = simulate_launch_obs(kernel, launch, &gpu, &mut NullSampling, None, &rec);
            black_box((r, rec.finish()))
        });
    });

    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);

//! Figs. 9-11 bench: the end-to-end comparison pipeline — full
//! simulation, Random, Ideal-SimPoint and TBPoint — on representative
//! roster benchmarks at tiny scale. Asserts the headline shape (TBPoint
//! error below Random's) while measuring the cost of each stage.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tbpoint_baselines::{
    collect_units, ideal_simpoint, random_sampling, IdealSimpointConfig, RandomConfig,
};
use tbpoint_core::predict::{run_tbpoint, TbpointConfig};
use tbpoint_emu::profile_run;
use tbpoint_sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint_workloads::{benchmark_by_name, Scale};

/// One regular and one irregular benchmark cover both code paths.
const BENCHES: [&str; 2] = ["cfd", "spmv"];

fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9/profile");
    for name in BENCHES {
        let bench = benchmark_by_name(name, Scale::Tiny).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, bench| {
            b.iter(|| black_box(profile_run(&bench.run, 1)));
        });
    }
    g.finish();
}

fn bench_full_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9/full_simulation");
    g.sample_size(10);
    for name in BENCHES {
        let bench = benchmark_by_name(name, Scale::Tiny).unwrap();
        let gpu = GpuConfig::fermi();
        g.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, bench| {
            b.iter(|| black_box(simulate_run(&bench.run, &gpu, &mut NullSampling, None)));
        });
    }
    g.finish();
}

fn bench_tbpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9/tbpoint_pipeline");
    g.sample_size(10);
    let gpu = GpuConfig::fermi();
    for name in BENCHES {
        let bench = benchmark_by_name(name, Scale::Tiny).unwrap();
        let profile = profile_run(&bench.run, 1);
        let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
        g.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, bench| {
            b.iter(|| {
                let r = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu)
                    .expect("valid config and matching profile");
                assert!(r.error_vs(full.overall_ipc()) < 25.0);
                black_box(r)
            });
        });
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9/baselines");
    let gpu = GpuConfig::fermi();
    let bench = benchmark_by_name("cfd", Scale::Tiny).unwrap();
    let (units, full_ipc) = collect_units(&bench.run, &gpu, 2_000, true);
    g.bench_function("random", |b| {
        b.iter(|| black_box(random_sampling(&units, &RandomConfig::default())));
    });
    g.bench_function("ideal_simpoint", |b| {
        b.iter(|| {
            let r = ideal_simpoint(&units, &IdealSimpointConfig::default());
            assert!(r.error_vs(full_ipc) < 30.0);
            black_box(r)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_profile,
    bench_full_simulation,
    bench_tbpoint,
    bench_baselines
);
criterion_main!(benches);

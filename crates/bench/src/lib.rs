//! Shared fixtures for the Criterion benches.
//!
//! Benches run at [`Scale::Tiny`](tbpoint_workloads::Scale::Tiny) so a
//! full `cargo bench` pass stays in the minutes range; the *recorded*
//! paper-scale numbers live in EXPERIMENTS.md and are regenerated with
//! the `tbpoint` CLI at `--scale full`.

use tbpoint_cluster::Point;
use tbpoint_stats::SplitMix64;

/// Deterministic synthetic feature vectors: `n` points in `dim`
/// dimensions drawn from `k` well-separated Gaussian blobs.
pub fn blob_points(n: usize, dim: usize, k: usize, seed: u64) -> Vec<Point> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let blob = (i % k) as f64 * 10.0;
            (0..dim).map(|_| blob + rng.next_gaussian() * 0.3).collect()
        })
        .collect()
}

//! The Table VI roster: all twelve benchmarks with their metadata.

use crate::kernels;
use crate::Scale;
use serde::{Deserialize, Serialize};
use tbpoint_ir::KernelRun;

/// Benchmark suite of origin (Table VI's "Suite" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Suite {
    /// LonestarGPU (irregular graph algorithms).
    Lonestar,
    /// Parboil.
    Parboil,
    /// Rodinia.
    Rodinia,
    /// CUDA SDK samples.
    Sdk,
}

/// Kernel type per the paper's Fig. 8 classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// Type I: irregular thread-block sizes.
    Irregular,
    /// Type II: regular (patterned) thread-block sizes.
    Regular,
}

/// One roster entry: metadata plus the generated workload.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Table VI abbreviation (bfs, sssp, ...).
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Regular or irregular (Type II / Type I).
    pub kind: KernelKind,
    /// The workload itself.
    pub run: KernelRun,
}

/// Build the full 12-benchmark roster at the given scale, in Table VI
/// order.
pub fn all_benchmarks(scale: Scale) -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "bfs",
            suite: Suite::Lonestar,
            kind: KernelKind::Irregular,
            run: kernels::bfs::run(scale),
        },
        Benchmark {
            name: "sssp",
            suite: Suite::Lonestar,
            kind: KernelKind::Irregular,
            run: kernels::sssp::run(scale),
        },
        Benchmark {
            name: "mst",
            suite: Suite::Lonestar,
            kind: KernelKind::Irregular,
            run: kernels::mst::run(scale),
        },
        Benchmark {
            name: "mri",
            suite: Suite::Parboil,
            kind: KernelKind::Irregular,
            run: kernels::mri::run(scale),
        },
        Benchmark {
            name: "spmv",
            suite: Suite::Parboil,
            kind: KernelKind::Irregular,
            run: kernels::spmv::run(scale),
        },
        Benchmark {
            name: "lbm",
            suite: Suite::Parboil,
            kind: KernelKind::Regular,
            run: kernels::lbm::run(scale),
        },
        Benchmark {
            name: "cfd",
            suite: Suite::Rodinia,
            kind: KernelKind::Regular,
            run: kernels::cfd::run(scale),
        },
        Benchmark {
            name: "kmeans",
            suite: Suite::Rodinia,
            kind: KernelKind::Regular,
            run: kernels::kmeans::run(scale),
        },
        Benchmark {
            name: "hotspot",
            suite: Suite::Rodinia,
            kind: KernelKind::Regular,
            run: kernels::hotspot::run(scale),
        },
        Benchmark {
            name: "stream",
            suite: Suite::Rodinia,
            kind: KernelKind::Irregular,
            run: kernels::stream::run(scale),
        },
        Benchmark {
            name: "black",
            suite: Suite::Sdk,
            kind: KernelKind::Regular,
            run: kernels::black::run(scale),
        },
        Benchmark {
            name: "conv",
            suite: Suite::Sdk,
            kind: KernelKind::Regular,
            run: kernels::conv::run(scale),
        },
    ]
}

/// Look up a single benchmark by its Table VI abbreviation.
pub fn benchmark_by_name(name: &str, scale: Scale) -> Option<Benchmark> {
    all_benchmarks(scale).into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table VI ground truth: (name, launches, thread blocks).
    const TABLE_VI: [(&str, usize, u64); 12] = [
        ("bfs", 13, 10_619),
        ("sssp", 49, 12_691),
        ("mst", 10, 2_331),
        ("mri", 1, 18_158),
        ("spmv", 50, 38_250),
        ("lbm", 1, 108_000),
        ("cfd", 100, 50_600),
        ("kmeans", 30, 58_080),
        ("hotspot", 1, 1_849),
        ("stream", 211, 2_688),
        ("black", 1, 41_760),
        ("conv", 16, 202_752),
    ];

    #[test]
    fn roster_matches_table_vi_exactly() {
        let roster = all_benchmarks(Scale::Full);
        assert_eq!(roster.len(), 12);
        for (bench, &(name, launches, tbs)) in roster.iter().zip(TABLE_VI.iter()) {
            assert_eq!(bench.name, name);
            assert_eq!(bench.run.num_launches(), launches, "{name} launch count");
            assert_eq!(bench.run.total_blocks(), tbs, "{name} TB count");
        }
    }

    #[test]
    fn every_kernel_validates() {
        for bench in all_benchmarks(Scale::Tiny) {
            bench
                .run
                .kernel
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        }
    }

    #[test]
    fn six_irregular_six_regular() {
        let roster = all_benchmarks(Scale::Tiny);
        let irregular = roster
            .iter()
            .filter(|b| b.kind == KernelKind::Irregular)
            .count();
        assert_eq!(irregular, 6);
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark_by_name("mst", Scale::Tiny).is_some());
        assert!(benchmark_by_name("nope", Scale::Tiny).is_none());
    }

    #[test]
    fn names_and_seeds_are_unique() {
        let roster = all_benchmarks(Scale::Tiny);
        let mut names: Vec<&str> = roster.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        let mut seeds: Vec<u64> = roster.iter().map(|b| b.run.kernel.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "kernel seeds must differ");
    }
}

// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-workloads
//!
//! Synthetic reconstructions of the paper's Table VI benchmark roster.
//!
//! The paper evaluates 12 long-running kernels from lonestar, parboil,
//! rodinia and the CUDA SDK. The binaries and inputs are not available
//! here, and running them would require a CUDA toolchain; instead each
//! benchmark is a *generator* producing a [`tbpoint_ir::KernelRun`] whose
//! statistical signature matches what the sampling experiments are
//! sensitive to:
//!
//! * the **launch count** and **total thread-block count** match Table VI
//!   exactly (at [`Scale::Full`]);
//! * **regular** kernels (Type II) have uniform thread blocks and
//!   homogeneous launches; **irregular** kernels (Type I) have power-law
//!   or bimodal per-TB work, frontier-shaped launch sequences (bfs,
//!   sssp), outlier thread blocks (mst) or data-dependent gathers
//!   (spmv, mri) — reproducing the Fig. 8 size-ratio signatures;
//! * memory behaviour (coalesced stencils vs. random graph gathers vs.
//!   SFU-heavy math) follows each application's published
//!   characterisation.
//!
//! Which benchmarks are Type I vs II is partly inferred (the table's type
//! row did not survive OCR); the classification used here — irregular:
//! bfs, sssp, mst, mri, spmv, stream; regular: lbm, cfd, kmeans, hotspot,
//! black, conv — is consistent with every statement the paper's text
//! makes about individual benchmarks. Recorded in DESIGN.md.
//!
//! Per-thread-block *work* is scaled down so a full (unsampled) timing
//! simulation of the entire roster completes in minutes; all comparisons
//! are sampled-vs-full on the same scale, so relative errors and sample
//! sizes are unaffected. [`Scale`] additionally shrinks TB counts for
//! tests and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod roster;
pub mod scale;
pub mod synthetic;

pub use roster::{all_benchmarks, benchmark_by_name, Benchmark, KernelKind, Suite};
pub use scale::Scale;
pub use synthetic::{PhaseSpec, SyntheticSpec};

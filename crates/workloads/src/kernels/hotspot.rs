//! `hotspot` — thermal simulation stencil (rodinia). Regular, Type II.
//!
//! One launch of 1,849 TBs (a 43x43 grid of tiles): the classic
//! shared-memory pyramid — load a tile into shared memory, barrier,
//! iterate the stencil in shared memory, barrier, write back. The paper
//! singles hotspot out (with binomial/black) as a one-launch regular
//! kernel whose savings are all intra-launch.

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 1 launch, 1,849 thread blocks.
pub const LAUNCHES: u32 = 1;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 1_849;

/// Build the hotspot benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("hotspot", 0x407, 256);
    b.regs(26).smem(12 * 1024);

    let load_tile = b.block(&[
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::StShared,
        Op::Barrier,
    ]);
    let stencil = b.block(&[
        Op::LdShared,
        Op::LdShared,
        Op::FAlu,
        Op::FAlu,
        Op::FAlu,
        Op::Barrier,
    ]);
    let iters = b.loop_(TripCount::Const(48), stencil);
    let write_back = b.block(&[
        Op::FAlu,
        Op::StGlobal(AddrPattern::Coalesced {
            region: 1,
            stride: 4,
        }),
    ]);
    let program = b.seq(vec![load_tile, iters, write_back]);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 1);
        assert_eq!(r.total_blocks(), 1_849);
        r.kernel.validate().unwrap();
    }

    #[test]
    fn uses_shared_memory_and_barriers() {
        let r = run(Scale::Tiny);
        assert!(r.kernel.program.contains_barrier());
        assert!(r.kernel.smem_per_block > 0);
    }
}

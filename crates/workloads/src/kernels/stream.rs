//! `stream` — StreamCluster (rodinia). Irregular roster slot, but its
//! defining property is **hundreds of homogeneous launches**: the paper
//! notes that for stream "hundreds of homogeneous kernel launches cause
//! the most savings to come from inter-launch sampling" (Fig. 11).
//!
//! 211 launches of ~13 TBs each (2,688 total): per-launch grids are tiny,
//! so intra-launch sampling has little to skip — inter-launch does the
//! heavy lifting.

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 211 launches, 2,688 thread blocks.
pub const LAUNCHES: u32 = 211;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 2_688;

/// Build the stream benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("stream", 0x57E4, 512);
    b.regs(22);

    let gain = b.block(&[
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::FAlu,
        Op::FAlu,
        Op::Sfu,
        Op::IAlu,
    ]);
    let body = b.loop_(TripCount::Const(8), gain);
    let write = b.block(&[Op::StGlobal(AddrPattern::Coalesced {
        region: 1,
        stride: 4,
    })]);
    let program = b.seq(vec![body, write]);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 211);
        assert_eq!(r.total_blocks(), 2_688);
        r.kernel.validate().unwrap();
    }

    #[test]
    fn launches_are_tiny_and_homogeneous() {
        let r = run(Scale::Full);
        assert!(r.launches.iter().all(|l| l.num_blocks <= 13));
    }
}

//! `lbm` — lattice-Boltzmann method (parboil). Regular, Type II.
//!
//! One enormous, perfectly uniform launch (108,000 TBs): a streaming
//! stencil that reads and writes multi-hundred-megabyte distribution
//! arrays with fully coalesced accesses. Every thread block is identical,
//! so the whole launch is one homogeneous region — the intra-launch
//! fast-forward does almost all the work.

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 1 launch, 108,000 thread blocks.
pub const LAUNCHES: u32 = 1;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 108_000;

/// Build the lbm benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("lbm", 0x1B3, 128);
    b.regs(40);

    let stream_collide = b.block(&[
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 1,
            stride: 4,
        }),
        Op::FAlu,
        Op::FAlu,
        Op::FAlu,
        Op::StGlobal(AddrPattern::Coalesced {
            region: 2,
            stride: 4,
        }),
    ]);
    let program = b.loop_(TripCount::Const(2), stream_collide);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 1);
        assert_eq!(r.total_blocks(), 108_000);
        r.kernel.validate().unwrap();
    }
}

//! `conv` — convolutionSeparable (CUDA SDK). Regular, Type II.
//!
//! The roster's biggest grid: 202,752 TBs over 16 launches (row/column
//! passes over a batch of images). A textbook shared-memory tile kernel;
//! launches are homogeneous, blocks are uniform.

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 16 launches, 202,752 thread blocks.
pub const LAUNCHES: u32 = 16;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 202_752;

/// Build the conv benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("conv", 0xC0F, 64);
    b.regs(16).smem(4 * 1024);

    let load_tile = b.block(&[
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::StShared,
        Op::Barrier,
    ]);
    let tap = b.block(&[Op::LdShared, Op::FAlu]);
    let taps = b.loop_(TripCount::Const(2), tap);
    let store = b.block(&[Op::StGlobal(AddrPattern::Coalesced {
        region: 1,
        stride: 4,
    })]);
    let program = b.seq(vec![load_tile, taps, store]);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 16);
        assert_eq!(r.total_blocks(), 202_752);
        r.kernel.validate().unwrap();
    }
}

//! `sssp` — single-source shortest paths (lonestar). Irregular, Type I.
//!
//! Like bfs but with many more, smaller launches (49 worklist iterations
//! totalling 12,691 TBs), an extra relaxation step per edge, and a
//! slightly lighter degree tail. Cache sensitive like bfs (Section V-C
//! names both as needing longer warming at low occupancy).

use super::{bell_weights, distribute_launches};
use crate::Scale;
use tbpoint_ir::{AddrPattern, Cond, Dist, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 49 launches, 12,691 thread blocks.
pub const LAUNCHES: u32 = 49;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 12_691;

/// Build the sssp benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("sssp", 0x5559, 256);
    b.regs(28);

    let density_site = b.fresh_site();
    let degree_site = b.fresh_site();
    let relax_site = b.fresh_site();

    let read_worklist = b.block(&[
        Op::IAlu,
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::IAlu,
        Op::IAlu,
        Op::IAlu,
    ]);
    let edge_visit = b.block(&[
        Op::LdGlobal(AddrPattern::Random {
            region: 1,
            bytes: 6 << 20,
        }),
        Op::IAlu,
        Op::LdGlobal(AddrPattern::Random {
            region: 2,
            bytes: 2 << 20,
        }),
    ]);
    let relax = b.block(&[
        Op::IAlu,
        Op::StGlobal(AddrPattern::Random {
            region: 2,
            bytes: 2 << 20,
        }),
        Op::IAlu,
    ]);
    let maybe_relax = b.if_(
        Cond::ThreadProb {
            p: 0.25,
            site: relax_site,
        },
        relax,
        None,
    );
    let edges = {
        let body = b.seq(vec![edge_visit, maybe_relax]);
        b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 14,
                dist: Dist::PowerLaw { alpha: 2.0 },
                site: degree_site,
            },
            body,
        )
    };
    // Worklist density varies in contiguous phases (graph community
    // structure), shifting the memory-to-instruction ratio per phase.
    let dense = b.loop_(
        TripCount::PerBlockPhase {
            base: 1,
            spread: 2,
            phase_len: 168,
            dist: Dist::Uniform,
            site: density_site,
        },
        edges,
    );
    let push = b.block(&[
        Op::IAlu,
        Op::StGlobal(AddrPattern::Coalesced {
            region: 3,
            stride: 4,
        }),
    ]);

    let program = b.seq(vec![read_worklist, dense, push]);
    let kernel = b.finish(program);
    // Worklist algorithms plateau: after the initial ramp, iterations
    // process similar-sized worklists for a long stretch before tapering
    // (a clipped bell). The many equal-sized mid launches are what
    // inter-launch sampling merges.
    let mut weights = bell_weights(LAUNCHES as usize);
    let cap = 0.55 * weights.iter().cloned().fold(f64::MIN, f64::max);
    for w in &mut weights {
        *w = w.min(cap);
    }
    KernelRun {
        kernel,
        launches: distribute_launches(TOTAL_TBS, &weights, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 49);
        assert_eq!(r.total_blocks(), 12_691);
        r.kernel.validate().unwrap();
    }
}

//! `bfs` — breadth-first search (lonestar). Irregular, Type I.
//!
//! Signature reproduced: 13 frontier-shaped launches totalling 10,619
//! thread blocks; per-thread work follows the graph's power-law degree
//! distribution (heavy intra-warp divergence); neighbour visits are
//! data-dependent gathers over a multi-megabyte edge array (memory
//! divergent and cache sensitive — the paper calls bfs out as needing a
//! long warming period at low occupancy); per-block frontier density
//! varies, giving the irregular Fig. 8 scatter.

use super::{bell_weights, distribute_launches};
use crate::Scale;
use tbpoint_ir::{AddrPattern, Cond, Dist, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 13 launches, 10,619 thread blocks.
pub const LAUNCHES: u32 = 13;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 10_619;

/// Build the bfs benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("bfs", 0xB_F5, 256);
    b.regs(24);

    let density_site = b.fresh_site();
    let degree_site = b.fresh_site();
    let update_site = b.fresh_site();

    // Fixed per-node overhead: read the frontier entry, bookkeeping
    // arithmetic (this part does NOT scale with frontier density, which
    // is what makes the stall probability differ across phases).
    let read_frontier = b.block(&[
        Op::IAlu,
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::IAlu,
        Op::IAlu,
        Op::IAlu,
    ]);
    // Visit one neighbour: gather from the edge array, maybe update the
    // visited set.
    let visit = b.block(&[
        Op::LdGlobal(AddrPattern::Random {
            region: 1,
            bytes: 8 << 20,
        }),
        Op::IAlu,
    ]);
    let update = b.block(&[
        Op::StGlobal(AddrPattern::Random {
            region: 2,
            bytes: 2 << 20,
        }),
        Op::IAlu,
    ]);
    let maybe_update = b.if_(
        Cond::ThreadProb {
            p: 0.3,
            site: update_site,
        },
        update,
        None,
    );
    let neighbour_loop = {
        let body = b.seq(vec![visit, maybe_update]);
        b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 24,
                dist: Dist::PowerLaw { alpha: 2.5 },
                site: degree_site,
            },
            body,
        )
    };
    // Frontier density is *phase-structured* across the grid (graph
    // communities occupy contiguous worklist ranges): blocks in a dense
    // phase traverse the gather loop more often, raising that phase's
    // memory-to-instruction ratio — consecutive epochs within one phase
    // are homogeneous, phase boundaries change the stall probability.
    let dense_region = b.loop_(
        TripCount::PerBlockPhase {
            base: 1,
            spread: 3,
            phase_len: 210,
            dist: Dist::Uniform,
            site: density_site,
        },
        neighbour_loop,
    );
    let write_out = b.block(&[
        Op::IAlu,
        Op::StGlobal(AddrPattern::Coalesced {
            region: 3,
            stride: 4,
        }),
    ]);

    let program = b.seq(vec![read_frontier, dense_region, write_out]);
    let kernel = b.finish(program);
    // Sharpen the frontier bell: real BFS frontiers start and end with a
    // handful of nodes, so the first/last launches have FEWER thread
    // blocks than the GPU has slots — they run at partial occupancy with
    // much lower IPC. Random sampling tends to miss those launches; this
    // is exactly where the paper reports its "much higher error rate ...
    // especially for the irregular kernels".
    let weights: Vec<f64> = bell_weights(LAUNCHES as usize)
        .into_iter()
        .map(|w| w.powf(2.5))
        .collect();
    KernelRun {
        kernel,
        launches: distribute_launches(TOTAL_TBS, &weights, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 13);
        assert_eq!(r.total_blocks(), 10_619);
        r.kernel.validate().unwrap();
    }

    #[test]
    fn launches_are_frontier_shaped() {
        let r = run(Scale::Full);
        let sizes: Vec<u32> = r.launches.iter().map(|l| l.num_blocks).collect();
        let peak = *sizes.iter().max().unwrap();
        assert!(
            sizes[0] < peak / 3,
            "first launch should be small: {sizes:?}"
        );
        assert!(
            sizes[12] < peak / 3,
            "last launch should be small: {sizes:?}"
        );
    }
}

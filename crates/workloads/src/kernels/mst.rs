//! `mst` — minimum spanning tree (lonestar). Irregular, Type I.
//!
//! The paper's hardest case: component-contraction launches of
//! geometrically shrinking size, and **outlier thread blocks** whose
//! instruction counts dwarf their neighbours' (large components being
//! merged). Those outliers are invisible to BBVs — they execute the same
//! code, just far more of it — which is why Ideal-SimPoint posts its
//! worst error (8.5%) on mst, while TBPoint's variation factor isolates
//! the affected epochs and pays for it with a larger sample (55%).

use super::distribute_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, Dist, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 10 launches, 2,331 thread blocks.
pub const LAUNCHES: u32 = 10;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 2_331;

/// Build the mst benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("mst", 0x357, 256);
    b.regs(32);

    let component_site = b.fresh_site();

    let find_min_edge = b.block(&[
        Op::LdGlobal(AddrPattern::Random {
            region: 0,
            bytes: 4 << 20,
        }),
        Op::IAlu,
        Op::IAlu,
    ]);
    // Component size is bimodal: ~0.2% of blocks contract a huge
    // component (40x the work) — sparse *outlier TBs*. At Fermi occupancy
    // (~56-TB epochs) roughly a tenth of the epochs contain one, so the
    // variation factor isolates about half the launch — reproducing mst's
    // outsized 55% sample size (Fig. 10) and the BBV blindness that gives
    // Ideal-SimPoint its worst error (Fig. 9).
    let program = b.loop_(
        TripCount::PerBlock {
            base: 20,
            spread: 780,
            dist: Dist::Bimodal { p_heavy: 0.002 },
            site: component_site,
        },
        find_min_edge,
    );
    let kernel = b.finish(program);

    // Contraction halves the component count each round (geometric).
    let weights: Vec<f64> = (0..LAUNCHES).map(|i| 0.62f64.powi(i as i32)).collect();
    KernelRun {
        kernel,
        launches: distribute_launches(TOTAL_TBS, &weights, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 10);
        assert_eq!(r.total_blocks(), 2_331);
        r.kernel.validate().unwrap();
    }

    #[test]
    fn launches_shrink_geometrically() {
        let r = run(Scale::Full);
        let sizes: Vec<u32> = r.launches.iter().map(|l| l.num_blocks).collect();
        assert!(sizes[0] > sizes[4], "{sizes:?}");
        assert!(sizes[4] > sizes[9], "{sizes:?}");
    }
}

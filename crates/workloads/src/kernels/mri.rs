//! `mri` — MRI-Gridding (parboil). Irregular, Type I.
//!
//! One huge launch (18,158 TBs): each block grids the k-space samples of
//! one bin; bin densities follow a power law, so block work varies widely
//! within the single launch — all sampling savings must come from
//! intra-launch sampling.

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, Dist, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 1 launch, 18,158 thread blocks.
pub const LAUNCHES: u32 = 1;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 18_158;

/// Build the mri benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("mri", 0x309, 128);
    b.regs(30).smem(2048);

    let density_site = b.fresh_site();

    let load_bin = b.block(&[
        Op::IAlu,
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 8,
        }),
        Op::FAlu,
        Op::FAlu,
        Op::IAlu,
    ]);
    let grid_sample = b.block(&[
        Op::LdGlobal(AddrPattern::Random {
            region: 1,
            bytes: 2 << 20,
        }),
        Op::FAlu,
        Op::FAlu,
        Op::Sfu,
        Op::FAlu,
    ]);
    // Sample density sweeps across k-space: bins with nearby ids share a
    // density (phases), the dense centre doing ~20x the work of the
    // sparse edges — irregular in Fig. 8's sense, but with long
    // homogeneous stretches the intra sampler can exploit.
    let density_loop = b.loop_(
        TripCount::PerBlockPhase {
            base: 2,
            spread: 40,
            phase_len: 672,
            dist: Dist::PowerLaw { alpha: 1.8 },
            site: density_site,
        },
        grid_sample,
    );
    let store = b.block(&[Op::StGlobal(AddrPattern::Coalesced {
        region: 2,
        stride: 8,
    })]);

    let program = b.seq(vec![load_bin, density_loop, store]);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 1);
        assert_eq!(r.total_blocks(), 18_158);
        r.kernel.validate().unwrap();
    }
}

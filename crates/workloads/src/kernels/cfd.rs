//! `cfd` — computational fluid dynamics solver (rodinia). Regular,
//! Type II.
//!
//! 100 identical time-step launches of 506 TBs each: uniform flux
//! computation with coalesced cell data plus strided neighbour accesses.
//! Inter-launch sampling collapses the 100 launches to one (the dominant
//! savings for regular kernels in Fig. 11).

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 100 launches, 50,600 thread blocks.
pub const LAUNCHES: u32 = 100;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 50_600;

/// Build the cfd benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("cfd", 0xCFD, 128);
    b.regs(48);

    let flux = b.block(&[
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::LdGlobal(AddrPattern::Strided {
            region: 1,
            stride: 128,
        }),
        Op::FAlu,
        Op::FAlu,
        Op::FAlu,
        Op::StGlobal(AddrPattern::Coalesced {
            region: 2,
            stride: 4,
        }),
    ]);
    let program = b.loop_(TripCount::Const(3), flux);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 100);
        assert_eq!(r.total_blocks(), 50_600);
        r.kernel.validate().unwrap();
    }
}

//! `kmeans` — k-means clustering (rodinia). Regular, Type II.
//!
//! 30 identical iteration launches of 1,936 TBs: each thread computes
//! distances from its point to the centroid table (broadcast reads) —
//! compute-heavy, uniform blocks.

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 30 launches, 58,080 thread blocks.
pub const LAUNCHES: u32 = 30;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 58_080;

/// Build the kmeans benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("kmeans", 0x3A15, 256);
    b.regs(18);

    let distance = b.block(&[
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::LdGlobal(AddrPattern::Broadcast { region: 1 }),
        Op::FAlu,
        Op::FAlu,
        Op::IAlu,
    ]);
    let body = b.loop_(TripCount::Const(4), distance);
    let assign = b.block(&[Op::StGlobal(AddrPattern::Coalesced {
        region: 2,
        stride: 4,
    })]);
    let program = b.seq(vec![body, assign]);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 30);
        assert_eq!(r.total_blocks(), 58_080);
        r.kernel.validate().unwrap();
    }
}

//! The 12 benchmark generators, one module each, plus shared helpers.
//!
//! Every generator returns a [`KernelRun`](tbpoint_ir::KernelRun) whose launch count matches
//! Table VI exactly and whose total thread blocks match at
//! [`Scale::Full`].

pub mod bfs;
pub mod black;
pub mod cfd;
pub mod conv;
pub mod hotspot;
pub mod kmeans;
pub mod lbm;
pub mod mri;
pub mod mst;
pub mod spmv;
pub mod sssp;
pub mod stream;

use crate::Scale;
use tbpoint_ir::{LaunchId, LaunchSpec};

/// Split `total` blocks over launches proportionally to `weights`
/// (largest-remainder rounding; every launch gets at least one block) and
/// scale each launch with `scale`.
pub(crate) fn distribute_launches(total: u32, weights: &[f64], scale: Scale) -> Vec<LaunchSpec> {
    assert!(!weights.is_empty());
    let wsum: f64 = weights.iter().sum();
    assert!(wsum > 0.0, "weights must be positive");
    // Ideal (real-valued) shares and floors.
    let mut blocks: Vec<u32> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u32;
    for (i, w) in weights.iter().enumerate() {
        let share = total as f64 * w / wsum;
        // share <= total: u32, so the saturating cast cannot wrap.
        #[allow(clippy::cast_possible_truncation)]
        let fl = (share.floor() as u32).max(1);
        blocks.push(fl);
        assigned += fl;
        remainders.push((i, share - fl as f64));
    }
    // Distribute the leftover by largest remainder (or trim overshoot
    // from the smallest remainders).
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut i = 0;
    while assigned < total {
        blocks[remainders[i % remainders.len()].0] += 1;
        assigned += 1;
        i += 1;
    }
    let mut j = remainders.len();
    while assigned > total {
        j = if j == 0 { remainders.len() - 1 } else { j - 1 };
        let idx = remainders[j].0;
        if blocks[idx] > 1 {
            blocks[idx] -= 1;
            assigned -= 1;
        }
    }
    blocks
        .into_iter()
        .enumerate()
        .map(|(i, full)| LaunchSpec {
            // Launch counts are small (weights.len()).
            #[allow(clippy::cast_possible_truncation)]
            launch_id: LaunchId(i as u32),
            num_blocks: scale.blocks(full, 2),
            work_scale: 1.0,
        })
        .collect()
}

/// `n` identical launches totalling exactly `total` blocks (remainder
/// spread over the first launches), scaled.
pub(crate) fn uniform_launches(total: u32, n: u32, scale: Scale) -> Vec<LaunchSpec> {
    let base = total / n;
    let extra = total % n;
    (0..n)
        .map(|i| LaunchSpec {
            launch_id: LaunchId(i),
            num_blocks: scale.blocks(base + u32::from(i < extra), 2),
            work_scale: 1.0,
        })
        .collect()
}

/// Bell-curve weights for frontier-style launch sequences (bfs, sssp):
/// small start, peak in the middle, small tail.
pub(crate) fn bell_weights(n: usize) -> Vec<f64> {
    let mid = (n as f64 - 1.0) / 2.0;
    let sigma = n as f64 / 4.0;
    (0..n)
        .map(|i| {
            let d = (i as f64 - mid) / sigma;
            (-0.5 * d * d).exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribute_hits_exact_total() {
        for &total in &[10619u32, 2331, 12691] {
            let w = bell_weights(13);
            let launches = distribute_launches(total, &w, Scale::Full);
            let sum: u32 = launches.iter().map(|l| l.num_blocks).sum();
            assert_eq!(sum, total);
            assert!(launches.iter().all(|l| l.num_blocks >= 1));
        }
    }

    #[test]
    fn distribute_is_bell_shaped() {
        let launches = distribute_launches(10000, &bell_weights(13), Scale::Full);
        let mid = launches[6].num_blocks;
        assert!(mid > launches[0].num_blocks * 3);
        assert!(mid > launches[12].num_blocks * 3);
    }

    #[test]
    fn uniform_hits_exact_total() {
        let launches = uniform_launches(2688, 211, Scale::Full);
        assert_eq!(launches.len(), 211);
        let sum: u32 = launches.iter().map(|l| l.num_blocks).sum();
        assert_eq!(sum, 2688);
        // Sizes differ by at most one block.
        let min = launches.iter().map(|l| l.num_blocks).min().unwrap();
        let max = launches.iter().map(|l| l.num_blocks).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn scaling_shrinks_launches_not_counts() {
        let full = distribute_launches(10619, &bell_weights(13), Scale::Full);
        let dev = distribute_launches(10619, &bell_weights(13), Scale::Dev);
        assert_eq!(full.len(), dev.len());
        let fs: u32 = full.iter().map(|l| l.num_blocks).sum();
        let ds: u32 = dev.iter().map(|l| l.num_blocks).sum();
        assert!(ds < fs / 4);
    }
}

//! `black` — BlackScholes option pricing (CUDA SDK). Regular, Type II.
//!
//! One launch of 41,760 uniform TBs: coalesced loads of option
//! parameters, SFU-heavy math (exp, log, sqrt via the CND polynomial),
//! coalesced stores. One launch means every saving is intra-launch
//! (Fig. 11 groups it with hotspot on that account).

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 1 launch, 41,760 thread blocks.
pub const LAUNCHES: u32 = 1;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 41_760;

/// Build the black benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("black", 0xB1AC, 128);
    b.regs(20);

    let price = b.block(&[
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 1,
            stride: 4,
        }),
        Op::Sfu,
        Op::Sfu,
        Op::FAlu,
        Op::FAlu,
        Op::FAlu,
        Op::StGlobal(AddrPattern::Coalesced {
            region: 2,
            stride: 4,
        }),
    ]);
    let program = b.loop_(TripCount::Const(2), price);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 1);
        assert_eq!(r.total_blocks(), 41_760);
        r.kernel.validate().unwrap();
    }
}

//! `spmv` — sparse matrix-vector product (parboil). Irregular, Type I.
//!
//! Fifty identical launches (the solver iterates on the same matrix), so
//! inter-launch sampling collapses them to one; inside a launch, row
//! lengths follow a power law and the source-vector gather is
//! data-dependent, with heavy-row block clusters (matrix band structure)
//! driving stall-probability changes across epochs — the case where the
//! intra feature beats BBVs on sample size (Fig. 10's irregular half).

use super::uniform_launches;
use crate::Scale;
use tbpoint_ir::{AddrPattern, Dist, KernelBuilder, KernelRun, Op, TripCount};

/// Table VI row: 50 launches, 38,250 thread blocks.
pub const LAUNCHES: u32 = 50;
/// Total thread blocks at full scale.
pub const TOTAL_TBS: u32 = 38_250;

/// Build the spmv benchmark at the given scale.
pub fn run(scale: Scale) -> KernelRun {
    let mut b = KernelBuilder::new("spmv", 0x59D7, 128);
    b.regs(20);

    let band_site = b.fresh_site();
    let row_site = b.fresh_site();

    let row_ptr = b.block(&[
        Op::IAlu,
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
        Op::IAlu,
        Op::IAlu,
    ]);
    let nnz = b.block(&[
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 1,
            stride: 8,
        }),
        Op::LdGlobal(AddrPattern::Random {
            region: 2,
            bytes: 4 << 20,
        }),
        Op::FAlu,
    ]);
    let row_loop = b.loop_(
        TripCount::PerThread {
            base: 1,
            spread: 11,
            dist: Dist::PowerLaw { alpha: 2.0 },
            site: row_site,
        },
        nnz,
    );
    // Band structure: contiguous row ranges (= contiguous TB id ranges)
    // form dense bands doing ~3x the rows — phase-structured, so epochs
    // inside a band are homogeneous while band boundaries shift the
    // stall probability.
    let band = b.loop_(
        TripCount::PerBlockPhase {
            base: 1,
            spread: 2,
            phase_len: 336,
            dist: Dist::Bimodal { p_heavy: 0.33 },
            site: band_site,
        },
        row_loop,
    );
    let store = b.block(&[Op::StGlobal(AddrPattern::Coalesced {
        region: 3,
        stride: 8,
    })]);

    let program = b.seq(vec![row_ptr, band, store]);
    let kernel = b.finish(program);
    KernelRun {
        kernel,
        launches: uniform_launches(TOTAL_TBS, LAUNCHES, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_vi() {
        let r = run(Scale::Full);
        assert_eq!(r.num_launches(), 50);
        assert_eq!(r.total_blocks(), 38_250);
        r.kernel.validate().unwrap();
    }

    #[test]
    fn launches_are_identical() {
        let r = run(Scale::Full);
        let first = r.launches[0].num_blocks;
        assert!(r.launches.iter().all(|l| l.num_blocks.abs_diff(first) <= 1));
    }
}

//! A parameterised synthetic-kernel builder: turn a handful of
//! high-level knobs into a [`KernelRun`].
//!
//! The Table-VI roster covers the paper's evaluation; this builder
//! exists for everything else — unit tests that need a kernel with a
//! specific property, benches that sweep memory intensity, and users who
//! want to probe how the sampler behaves on *their* workload shape
//! before writing a full program tree by hand.

use serde::{Deserialize, Serialize};
use tbpoint_ir::{
    AddrPattern, Cond, Dist, KernelBuilder, KernelRun, LaunchId, LaunchSpec, Op, TripCount,
};

/// High-level workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Kernel name.
    pub name: String,
    /// RNG seed.
    pub seed: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Number of identical launches.
    pub launches: u32,
    /// Thread blocks per launch.
    pub blocks_per_launch: u32,
    /// Base loop iterations per thread.
    pub iterations: u32,
    /// ALU instructions per iteration.
    pub alu_per_iter: u32,
    /// Global loads per iteration.
    pub loads_per_iter: u32,
    /// Fraction of loads that are data-dependent gathers (0 = all
    /// coalesced, 1 = all random).
    pub gather_fraction: f64,
    /// Per-thread iteration spread (0 = no control divergence).
    pub divergence_spread: u32,
    /// Contiguous grid phases with different work multipliers (1 = none;
    /// Fig. 8 Type-I irregularity).
    pub phases: PhaseSpec,
    /// Probability that a thread takes an extra-work branch.
    pub branch_prob: f64,
}

/// Phase-structured per-block work variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhaseSpec {
    /// Uniform blocks.
    None,
    /// Phases of `phase_len` blocks with multipliers in `1..=max_mult`.
    Phased {
        /// Blocks per phase.
        phase_len: u32,
        /// Largest work multiplier.
        max_mult: u32,
    },
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            name: "synthetic".into(),
            seed: 0xD1CE,
            threads_per_block: 128,
            launches: 4,
            blocks_per_launch: 256,
            iterations: 16,
            alu_per_iter: 3,
            loads_per_iter: 1,
            gather_fraction: 0.0,
            divergence_spread: 0,
            phases: PhaseSpec::None,
            branch_prob: 0.0,
        }
    }
}

impl SyntheticSpec {
    /// Materialise the workload.
    pub fn build(&self) -> KernelRun {
        let mut b = KernelBuilder::new(&self.name, self.seed, self.threads_per_block);
        let div_site = b.fresh_site();
        let branch_site = b.fresh_site();
        let phase_site = b.fresh_site();

        // Iteration body: ALU work plus loads split between coalesced
        // streams and random gathers per `gather_fraction`.
        let mut ops: Vec<Op> = Vec::new();
        for _ in 0..self.alu_per_iter {
            ops.push(Op::IAlu);
        }
        // gather_fraction is in [0, 1], so gathers <= loads_per_iter: u32.
        #[allow(clippy::cast_possible_truncation)]
        let gathers = (self.loads_per_iter as f64 * self.gather_fraction).round() as u32;
        for i in 0..self.loads_per_iter {
            if i < gathers {
                ops.push(Op::LdGlobal(AddrPattern::Random {
                    region: 1,
                    bytes: 8 << 20,
                }));
            } else {
                ops.push(Op::LdGlobal(AddrPattern::Coalesced {
                    region: 0,
                    stride: 4,
                }));
            }
        }
        let mut body = b.block(&ops);

        // Optional divergent extra-work branch.
        if self.branch_prob > 0.0 {
            let extra = b.block(&[Op::IAlu, Op::IAlu]);
            let branch = b.if_(
                Cond::ThreadProb {
                    p: self.branch_prob,
                    site: branch_site,
                },
                extra,
                None,
            );
            body = b.seq(vec![body, branch]);
        }

        // Iteration loop: divergent when spread > 0.
        let trips = if self.divergence_spread > 0 {
            TripCount::PerThread {
                base: self.iterations,
                spread: self.divergence_spread,
                dist: Dist::Uniform,
                site: div_site,
            }
        } else {
            TripCount::Const(self.iterations)
        };
        let mut program = b.loop_(trips, body);

        // Optional phase multiplier.
        if let PhaseSpec::Phased {
            phase_len,
            max_mult,
        } = self.phases
        {
            program = b.loop_(
                TripCount::PerBlockPhase {
                    base: 1,
                    spread: max_mult.saturating_sub(1),
                    phase_len,
                    dist: Dist::Uniform,
                    site: phase_site,
                },
                program,
            );
        }

        let store = b.block(&[Op::StGlobal(AddrPattern::Coalesced {
            region: 2,
            stride: 4,
        })]);
        let program = b.seq(vec![program, store]);
        let kernel = b.finish(program);
        debug_assert!(kernel.validate().is_ok());
        KernelRun {
            kernel,
            launches: (0..self.launches)
                .map(|i| LaunchSpec {
                    launch_id: LaunchId(i),
                    num_blocks: self.blocks_per_launch,
                    work_scale: 1.0,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels; // ensure roster module links
    use tbpoint_emu::{profile_launch, DivergenceReport};

    #[test]
    fn default_spec_builds_valid_kernel() {
        let run = SyntheticSpec::default().build();
        run.kernel.validate().unwrap();
        assert_eq!(run.num_launches(), 4);
        assert_eq!(run.total_blocks(), 4 * 256);
        let _ = kernels::bfs::TOTAL_TBS; // roster still reachable
    }

    #[test]
    fn gather_fraction_controls_memory_divergence() {
        let coalesced = SyntheticSpec {
            gather_fraction: 0.0,
            ..Default::default()
        }
        .build();
        let gathering = SyntheticSpec {
            gather_fraction: 1.0,
            ..Default::default()
        }
        .build();
        let pc = profile_launch(&coalesced.kernel, &coalesced.launches[0], 1);
        let pg = profile_launch(&gathering.kernel, &gathering.launches[0], 1);
        let rc = DivergenceReport::from_profile(&pc);
        let rg = DivergenceReport::from_profile(&pg);
        assert!(
            rg.requests_per_mem_inst > rc.requests_per_mem_inst * 5.0,
            "gathers {} vs coalesced {}",
            rg.requests_per_mem_inst,
            rc.requests_per_mem_inst
        );
    }

    #[test]
    fn divergence_spread_costs_simd_efficiency() {
        let flat = SyntheticSpec::default().build();
        let div = SyntheticSpec {
            divergence_spread: 24,
            ..Default::default()
        }
        .build();
        let pf = profile_launch(&flat.kernel, &flat.launches[0], 1);
        let pd = profile_launch(&div.kernel, &div.launches[0], 1);
        let ef = DivergenceReport::from_profile(&pf).simd_efficiency;
        let ed = DivergenceReport::from_profile(&pd).simd_efficiency;
        assert!(ef > 0.99);
        assert!(ed < 0.9, "divergent spec should lose lanes, eff = {ed}");
    }

    #[test]
    fn phases_create_block_size_variation() {
        let flat = SyntheticSpec::default().build();
        let phased = SyntheticSpec {
            phases: PhaseSpec::Phased {
                phase_len: 32,
                max_mult: 4,
            },
            ..Default::default()
        }
        .build();
        let pf = profile_launch(&flat.kernel, &flat.launches[0], 1);
        let pp = profile_launch(&phased.kernel, &phased.launches[0], 1);
        assert_eq!(pf.tb_size_cov(), 0.0);
        assert!(pp.tb_size_cov() > 0.2, "cov = {}", pp.tb_size_cov());
    }
}

//! Workload scaling: full paper-size grids vs. cheaper development sizes.

use serde::{Deserialize, Serialize};

/// How much to shrink each launch's grid relative to Table VI.
///
/// Launch *counts* are never scaled (inter-launch sampling depends on
/// them); only thread blocks per launch shrink, with a floor so epochs
/// and regions still form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Exact Table VI thread-block counts (the benchmark harness).
    Full,
    /// 1/8 of the blocks (integration tests, quick experiments).
    Dev,
    /// 1/64 of the blocks (unit tests).
    Tiny,
}

impl Scale {
    /// Grid divisor.
    pub fn divisor(self) -> u32 {
        match self {
            Scale::Full => 1,
            Scale::Dev => 8,
            Scale::Tiny => 64,
        }
    }

    /// Scale a per-launch block count, keeping at least `floor` blocks.
    pub fn blocks(self, full: u32, floor: u32) -> u32 {
        (full / self.divisor()).max(floor.min(full.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_identity() {
        assert_eq!(Scale::Full.blocks(1000, 4), 1000);
    }

    #[test]
    fn dev_divides_by_eight() {
        assert_eq!(Scale::Dev.blocks(1000, 4), 125);
    }

    #[test]
    fn floor_is_respected() {
        assert_eq!(Scale::Tiny.blocks(100, 8), 8);
        // But the floor never exceeds the full count.
        assert_eq!(Scale::Tiny.blocks(3, 8), 3);
    }
}

//! Fixture: NaN-unsafe float ordering and comparisons.
fn sort_unsafe(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn max_unsafe(v: &[f64]) -> f64 {
    *v.iter()
        .max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
        .unwrap_or(&0.0)
}

fn exact_eq(x: f64) -> bool {
    x == 0.0
}

fn exact_ne(x: f64) -> bool {
    x != 1.5
}

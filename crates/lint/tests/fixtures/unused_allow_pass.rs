//! Fixture: an allow that suppresses a real diagnostic is not stale.

fn guarded(ok: bool) {
    if !ok {
        // Broken internal invariant: aborting loudly is the least-bad option.
        // tbpoint-lint: allow(no-panic-in-library)
        panic!("invariant violated");
    }
}

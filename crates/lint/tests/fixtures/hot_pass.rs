//! Fixture: hot functions reusing caller-owned scratch pass; cold
//! functions may allocate freely.

// tbpoint-hot
fn hot_reuses_scratch(scratch: &mut Vec<u64>, xs: &[u64]) -> u64 {
    scratch.clear();
    for &x in xs {
        scratch.push(x);
    }
    scratch.iter().sum()
}

fn cold_allocates(n: usize) -> Vec<u64> {
    let mut v = Vec::with_capacity(n);
    v.resize(n, 0);
    v
}

//! Fixture: a deliberate one-off shared access via the escape hatch.

fn warm_caches(sys: &mut System) {
    // Runs strictly before any worker thread spawns, so no window
    // discipline applies yet.
    // tbpoint-lint: allow(barrier-phase-discipline)
    sys.l2.prefill();
}

//! Fixture: shared-state touches without coordinator discipline.

fn peek_occupancy(sys: &System) -> u64 {
    sys.l2.occupancy()
}

// tbpoint-phase: shard
fn shard_build(cfg: &Config) -> u64 {
    let path = SharedMemPath::new(cfg);
    path.len()
}

// tbpoint-phase: shard
fn shard_replay() {
    at_barrier_replay();
}

// tbpoint-phase: coordinator
fn at_barrier_replay() {}

fn forward(mem: &mut MemorySystem, line: u64, now: u64) -> u64 {
    mem.store_line(line, now)
}

// tbpoint-phase: conductor
fn mislabeled() {}

//! Fixture: stale and misspelled allow directives.

fn tidy(x: u64) -> u64 {
    // tbpoint-lint: allow(no-panic-in-library)
    x + 1
}

fn misspelled(ok: bool) {
    if !ok {
        // tbpoint-lint: allow(no-pannic-in-library)
        panic!("invariant violated");
    }
}

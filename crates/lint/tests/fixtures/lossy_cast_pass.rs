//! Fixture: widening casts and non-counter identifiers pass.
fn widens(cycle_count: u32) -> u64 {
    cycle_count as u64
}

fn non_counter(color: u64) -> u32 {
    color as u32
}

fn checked(cycle_count: u64) -> u32 {
    u32::try_from(cycle_count).unwrap_or(u32::MAX)
}

//! Fixture: a justified invariant panic via the escape hatch.
fn checked_invariant(ok: bool) {
    if !ok {
        // Broken internal invariant: aborting loudly is the least-bad option.
        // tbpoint-lint: allow(no-panic-in-library)
        panic!("invariant violated");
    }
}

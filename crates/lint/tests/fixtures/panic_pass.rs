//! Fixture: non-panicking handling passes, and test code is exempt.
fn handled(o: Option<u32>) -> u32 {
    o.unwrap_or(0)
}

fn propagated(o: Option<u32>) -> Option<u32> {
    let v = o?;
    Some(v + 1)
}

// Definitions named `unwrap`/`expect` are not method calls.
fn unwrap() -> u32 {
    41
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("test-only panic is exempt");
        }
    }
}

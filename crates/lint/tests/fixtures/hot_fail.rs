//! Fixture: allocations in a hot function.

// tbpoint-hot
fn hot_with_allocs(xs: &[u64]) -> u64 {
    let mut buf = Vec::new();
    for &x in xs {
        buf.push(x);
    }
    let doubled: Vec<u64> = xs.iter().map(|&x| x * 2).collect();
    let label = format!("{}", doubled.len());
    let copy = buf.clone();
    let tag = label.to_string();
    copy.iter().sum::<u64>() + tag.len() as u64
}

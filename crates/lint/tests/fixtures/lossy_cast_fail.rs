//! Fixture: truncating casts on counter-like values.
fn truncates(cycle_count: u64, warp_insts: u64) -> (u32, u16) {
    let c = cycle_count as u32;
    let w = warp_insts as u16;
    (c, w)
}

fn block_math(block_id: u64) -> u8 {
    block_id as u8
}

//! Fixture: a justified truncating cast via the escape hatch.
fn bounded(warp_count: u64) -> u16 {
    // Warp counts are architecturally bounded well below u16::MAX.
    // tbpoint-lint: allow(no-lossy-cast)
    warp_count as u16
}

//! Fixture: the deterministic equivalents pass.
use std::collections::{BTreeMap, BTreeSet};

fn seeded(seed: u64) -> u64 {
    tbpoint_stats::mix64(seed)
}

fn ordered() -> (BTreeMap<u32, u32>, BTreeSet<u32>) {
    (BTreeMap::new(), BTreeSet::new())
}

// `Instant` without `::now` is fine (e.g. in a type position).
fn takes_instant(_t: std::time::Instant) {}

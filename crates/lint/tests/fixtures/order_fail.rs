//! Fixture: ad-hoc (cycle, sm) sort keys.

fn replay_order(reqs: &mut Vec<Req>) {
    reqs.sort_unstable_by_key(|r| (r.cycle, r.sm));
}

fn trail_order(trail: &mut Vec<Entry>) {
    trail.sort_by(|a, b| (a.cycle, a.sm).cmp(&(b.cycle, b.sm)));
}

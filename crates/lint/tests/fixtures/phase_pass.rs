//! Fixture: disciplined phase annotations pass.

// tbpoint-phase: coordinator
fn replay_at_barrier(sys: &mut MemorySystem, line: u64, now: u64) -> u64 {
    sys.shared.store_line(line, now)
}

// tbpoint-phase: shard
fn buffer_request(reqs: &mut Vec<Req>, cycle: u64, sm: usize) {
    reqs.push(Req { cycle, sm });
}

fn unrelated(x: u64) -> u64 {
    x + 1
}

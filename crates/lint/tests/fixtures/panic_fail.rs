//! Fixture: every no-panic-in-library trigger.
fn unwraps(o: Option<u32>) -> u32 {
    o.unwrap()
}

fn expects(o: Option<u32>) -> u32 {
    o.expect("present")
}

fn panics() {
    panic!("boom");
}

fn unreachable_arm(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

fn not_done() {
    todo!()
}

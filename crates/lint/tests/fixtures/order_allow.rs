//! Fixture: a deliberately reversed replay order via the escape hatch.

fn reverse_replay(reqs: &mut Vec<Req>) {
    // Diagnostic mode replays newest-first on purpose.
    // tbpoint-lint: allow(canonical-order-sort)
    reqs.sort_unstable_by_key(|r| (u64::MAX - r.cycle, r.sm));
}

//! Fixture: the escape hatch silences a justified HashSet.
fn membership_only() -> bool {
    // Membership queries only; iteration order never observed.
    // tbpoint-lint: allow(no-nondeterminism)
    let s: std::collections::HashSet<u32> = Default::default();
    s.contains(&1)
}

//! Fixture: total_cmp and epsilon comparisons pass.
fn sort_safe(v: &mut Vec<f64>) {
    v.sort_by(f64::total_cmp);
}

fn near_zero(x: f64) -> bool {
    x.abs() < f64::MIN_POSITIVE
}

fn compares_without_floats(a: u64, b: u64) -> bool {
    // Integer ==/!= and compound float operators are all fine.
    let mut acc = 0.0f64;
    acc += 1.0;
    acc *= 2.0;
    a == b && acc >= 1.0
}

//! Fixture: a one-off allocation in a hot fn via the escape hatch.

// tbpoint-hot
fn hot_with_waiver(xs: &[u64]) -> u64 {
    // Grows once on first use, then amortises to zero.
    // tbpoint-lint: allow(no-alloc-in-hot-path)
    let buf: Vec<u64> = xs.to_vec();
    buf.iter().sum()
}

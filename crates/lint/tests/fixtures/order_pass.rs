//! Fixture: the blessed comparator and non-(cycle, sm) sorts pass.

fn replay_order(reqs: &mut Vec<Req>) {
    reqs.sort_unstable_by_key(|r| cycle_sm_key(r.cycle, r.sm));
}

fn by_gid(cores: &mut Vec<(usize, Core)>) {
    cores.sort_unstable_by_key(|&(gid, _)| gid);
}

//! Fixture: every no-nondeterminism trigger in one file.
use std::collections::{HashMap, HashSet};

fn entropy() -> u64 {
    let rng = thread_rng();
    rng.gen()
}

fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn hashed() -> (HashMap<u32, u32>, HashSet<u32>) {
    (HashMap::new(), HashSet::new())
}

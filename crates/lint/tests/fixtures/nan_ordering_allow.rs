//! Fixture: a justified exact float comparison via the escape hatch.
fn sentinel_check(x: f64) -> bool {
    // The sentinel is produced by this exact literal, so bit equality holds.
    x == 1.0 // tbpoint-lint: allow(no-nan-unsafe-ordering)
}

#![allow(clippy::unwrap_used)] // tests assert by panicking

//! Fixture tests: each rule gets a failing, a passing, and an
//! allow-escape fixture, analyzed in-memory by mapping the fixture onto a
//! path inside the crate scope the rule targets. A final set of tests
//! drives the compiled `tbpoint-lint` binary against a fixture tree on
//! disk to pin down the exit-code contract CI relies on.

use tbpoint_lint::{analyze_source, rules, Severity};

/// Analyze a fixture as if it lived at `rel_path`, returning only the
/// diagnostics of `rule`.
fn diags_for(rule: &str, rel_path: &str, src: &str) -> Vec<tbpoint_lint::Diagnostic> {
    analyze_source(rel_path, src)
        .into_iter()
        .filter(|d| d.rule == rule)
        .collect()
}

// ---- no-nondeterminism ------------------------------------------------

#[test]
fn nondeterminism_fail_fixture_flags_every_trigger() {
    let src = include_str!("fixtures/nondeterminism_fail.rs");
    let diags = diags_for(rules::NO_NONDETERMINISM, "crates/emu/src/fixture.rs", src);
    // use-decl (2) + thread_rng + Instant::now + SystemTime::now +
    // HashMap::new + HashSet::new = 7 hits.
    assert!(diags.len() >= 5, "expected >= 5 diagnostics, got {diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    assert!(diags.iter().any(|d| d.message.contains("thread_rng")));
    assert!(diags.iter().any(|d| d.message.contains("Instant::now")));
    assert!(diags.iter().any(|d| d.message.contains("SystemTime::now")));
    assert!(diags.iter().any(|d| d.message.contains("HashMap")));
}

#[test]
fn nondeterminism_pass_fixture_is_clean() {
    let src = include_str!("fixtures/nondeterminism_pass.rs");
    let diags = analyze_source("crates/emu/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn nondeterminism_allow_fixture_is_suppressed() {
    let src = include_str!("fixtures/nondeterminism_allow.rs");
    let diags = analyze_source("crates/emu/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn nondeterminism_not_enforced_outside_library_crates() {
    let src = include_str!("fixtures/nondeterminism_fail.rs");
    assert!(analyze_source("crates/cli/src/fixture.rs", src).is_empty());
    assert!(analyze_source("crates/emu/tests/fixture.rs", src).is_empty());
    assert!(analyze_source("vendor/serde/src/lib.rs", src).is_empty());
}

// ---- no-nan-unsafe-ordering -------------------------------------------

#[test]
fn nan_ordering_fail_fixture_flags_all_four_sites() {
    let src = include_str!("fixtures/nan_ordering_fail.rs");
    let diags = diags_for(
        rules::NO_NAN_UNSAFE_ORDERING,
        "crates/cluster/src/fixture.rs",
        src,
    );
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    assert!(diags.iter().any(|d| d.message.contains("total_cmp")));
}

#[test]
fn nan_float_eq_only_applies_to_clustering_and_stats() {
    let src = include_str!("fixtures/nan_ordering_fail.rs");
    // In sim, partial_cmp-unwrap still fires but float == does not.
    let diags = diags_for(
        rules::NO_NAN_UNSAFE_ORDERING,
        "crates/sim/src/fixture.rs",
        src,
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.message.contains("partial_cmp")));
}

#[test]
fn nan_ordering_pass_fixture_is_clean() {
    let src = include_str!("fixtures/nan_ordering_pass.rs");
    let diags = diags_for(
        rules::NO_NAN_UNSAFE_ORDERING,
        "crates/stats/src/fixture.rs",
        src,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn nan_ordering_allow_fixture_is_suppressed() {
    let src = include_str!("fixtures/nan_ordering_allow.rs");
    let diags = analyze_source("crates/stats/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- no-panic-in-library ----------------------------------------------

#[test]
fn panic_fail_fixture_flags_all_five_sites() {
    let src = include_str!("fixtures/panic_fail.rs");
    let diags = diags_for(
        rules::NO_PANIC_IN_LIBRARY,
        "crates/workloads/src/fixture.rs",
        src,
    );
    assert_eq!(diags.len(), 5, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn panic_pass_fixture_is_clean_including_test_module() {
    let src = include_str!("fixtures/panic_pass.rs");
    let diags = analyze_source("crates/workloads/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_allow_fixture_is_suppressed() {
    let src = include_str!("fixtures/panic_allow.rs");
    let diags = analyze_source("crates/workloads/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- no-lossy-cast ----------------------------------------------------

#[test]
fn lossy_cast_fail_fixture_warns_on_counter_truncation() {
    let src = include_str!("fixtures/lossy_cast_fail.rs");
    let diags = diags_for(rules::NO_LOSSY_CAST, "crates/sim/src/fixture.rs", src);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn lossy_cast_only_applies_to_sim_and_core() {
    let src = include_str!("fixtures/lossy_cast_fail.rs");
    let diags = diags_for(rules::NO_LOSSY_CAST, "crates/stats/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lossy_cast_pass_fixture_is_clean() {
    let src = include_str!("fixtures/lossy_cast_pass.rs");
    let diags = diags_for(rules::NO_LOSSY_CAST, "crates/core/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lossy_cast_allow_fixture_is_suppressed() {
    let src = include_str!("fixtures/lossy_cast_allow.rs");
    let diags = diags_for(rules::NO_LOSSY_CAST, "crates/sim/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- barrier-phase-discipline -----------------------------------------

#[test]
fn phase_fail_fixture_flags_every_discipline_breach() {
    let src = include_str!("fixtures/phase_fail.rs");
    let diags = diags_for(
        rules::BARRIER_PHASE_DISCIPLINE,
        "crates/sim/src/fixture.rs",
        src,
    );
    // Unannotated field access + shard type-use line + shard tainted-use
    // line + shard->coordinator call + unannotated param handle +
    // invalid phase value = 6 sites.
    assert_eq!(diags.len(), 6, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    assert!(diags.iter().any(|d| d.message.contains("field `.l2`")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("type `SharedMemPath`")));
    assert!(diags.iter().any(|d| d
        .message
        .contains("coordinator-phase fn `at_barrier_replay`")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("shared-state handle `mem`")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("unknown phase `conductor`")));
}

#[test]
fn phase_roster_only_enforced_in_sim() {
    let src = include_str!("fixtures/phase_fail.rs");
    let diags = diags_for(
        rules::BARRIER_PHASE_DISCIPLINE,
        "crates/stats/src/fixture.rs",
        src,
    );
    // Outside the phase crates only annotation hygiene applies: the
    // invalid phase value still errors, roster accesses do not.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("unknown phase"));
}

#[test]
fn phase_pass_fixture_is_clean() {
    let src = include_str!("fixtures/phase_pass.rs");
    let diags = analyze_source("crates/sim/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn phase_allow_fixture_is_suppressed() {
    let src = include_str!("fixtures/phase_allow.rs");
    let diags = analyze_source("crates/sim/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- no-alloc-in-hot-path ----------------------------------------------

#[test]
fn hot_fail_fixture_flags_every_allocation() {
    let src = include_str!("fixtures/hot_fail.rs");
    let diags = diags_for(
        rules::NO_ALLOC_IN_HOT_PATH,
        "crates/sim/src/fixture.rs",
        src,
    );
    // Vec::new + collect + format! + clone + to_string = 5 sites.
    assert_eq!(diags.len(), 5, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    assert!(diags.iter().any(|d| d.message.contains("Vec::new")));
    assert!(diags.iter().any(|d| d.message.contains("collect")));
    assert!(diags.iter().any(|d| d.message.contains("format!")));
    assert!(diags.iter().any(|d| d.message.contains("clone")));
}

#[test]
fn hot_pass_fixture_is_clean() {
    let src = include_str!("fixtures/hot_pass.rs");
    let diags = analyze_source("crates/sim/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn hot_allow_fixture_is_suppressed() {
    let src = include_str!("fixtures/hot_allow.rs");
    let diags = analyze_source("crates/sim/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- canonical-order-sort ----------------------------------------------

#[test]
fn order_fail_fixture_flags_adhoc_cycle_sm_keys() {
    let src = include_str!("fixtures/order_fail.rs");
    let diags = diags_for(
        rules::CANONICAL_ORDER_SORT,
        "crates/sim/src/fixture.rs",
        src,
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    assert!(diags.iter().all(|d| d.message.contains("cycle_sm_key")));
}

#[test]
fn order_rule_only_applies_to_sim() {
    let src = include_str!("fixtures/order_fail.rs");
    let diags = diags_for(
        rules::CANONICAL_ORDER_SORT,
        "crates/core/src/fixture.rs",
        src,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn order_pass_fixture_is_clean() {
    let src = include_str!("fixtures/order_pass.rs");
    let diags = analyze_source("crates/sim/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn order_allow_fixture_is_suppressed() {
    let src = include_str!("fixtures/order_allow.rs");
    let diags = analyze_source("crates/sim/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- unused-allow-directive --------------------------------------------
//
// No allow-escape fixture: the staleness warning is deliberately not
// self-suppressible (an allow cannot vouch for itself), so the trio
// collapses to fail/pass.

#[test]
fn unused_allow_fail_fixture_warns_on_stale_and_misspelled() {
    let src = include_str!("fixtures/unused_allow_fail.rs");
    let diags = diags_for(
        rules::UNUSED_ALLOW_DIRECTIVE,
        "crates/sim/src/fixture.rs",
        src,
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("no-pannic-in-library")));
}

#[test]
fn unused_allow_pass_fixture_is_clean() {
    let src = include_str!("fixtures/unused_allow_pass.rs");
    let diags = analyze_source("crates/sim/src/fixture.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---- binary exit-code contract ----------------------------------------

/// Materialize fixtures into a throwaway workspace-shaped tree and run the
/// compiled binary against it.
fn run_binary_on(label: &str, files: &[(&str, &str)], extra_args: &[&str]) -> (i32, String) {
    // Tests in this binary run concurrently in one process, so the label
    // (not just the pid) keeps their scratch trees disjoint.
    let root = std::env::temp_dir().join(format!(
        "tbpoint-lint-fixture-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, src) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, src).unwrap();
    }
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tbpoint-lint"))
        .arg("--root")
        .arg(&root)
        .args(extra_args)
        .output()
        .unwrap();
    let _ = std::fs::remove_dir_all(&root);
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_violations() {
    let (code, stdout) = run_binary_on(
        "violations",
        &[(
            "crates/sim/src/bad.rs",
            include_str!("fixtures/panic_fail.rs"),
        )],
        &[],
    );
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("no-panic-in-library"));
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let (code, stdout) = run_binary_on(
        "clean",
        &[(
            "crates/sim/src/good.rs",
            include_str!("fixtures/panic_pass.rs"),
        )],
        &[],
    );
    assert_eq!(code, 0, "stdout: {stdout}");
}

#[test]
fn binary_warnings_fail_only_under_deny_warnings() {
    let files = [(
        "crates/sim/src/warny.rs",
        include_str!("fixtures/lossy_cast_fail.rs"),
    )];
    let (code, _) = run_binary_on("warn-default", &files, &[]);
    assert_eq!(code, 0, "warnings alone must not fail by default");
    let (code, stdout) = run_binary_on("warn-deny", &files, &["--deny-warnings"]);
    assert_eq!(code, 1, "stdout: {stdout}");
}

#[test]
fn binary_json_output_is_machine_readable() {
    let (code, stdout) = run_binary_on(
        "json",
        &[
            (
                "crates/cluster/src/bad.rs",
                include_str!("fixtures/nan_ordering_fail.rs"),
            ),
            (
                "crates/emu/src/bad.rs",
                include_str!("fixtures/nondeterminism_fail.rs"),
            ),
        ],
        &["--format", "json"],
    );
    assert_eq!(code, 1);
    let v = serde_json::parse(&stdout).unwrap();
    let obj = v.as_obj().unwrap();
    let violations = obj
        .iter()
        .find(|(k, _)| k == "violations")
        .and_then(|(_, v)| v.as_arr())
        .unwrap();
    assert!(!violations.is_empty());
    for d in violations {
        let d = d.as_obj().unwrap();
        for key in ["file", "line", "rule", "severity", "message"] {
            assert!(d.iter().any(|(k, _)| k == key), "missing key {key}");
        }
    }
}

#[test]
fn binary_exits_two_on_bad_usage() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tbpoint-lint"))
        .arg("--format")
        .arg("yaml")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

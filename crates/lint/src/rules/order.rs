//! `canonical-order-sort`: `(cycle, sm)` event sorts go through one
//! blessed comparator.
//!
//! Replay order *is* the parallel simulator's determinism contract:
//! buffered cross-SM requests are applied at the barrier sorted by
//! `(cycle, sm)`. Two call sites sorting by subtly different key tuples
//! — `(cycle, sm)` here, `(sm, cycle)` there, or a tuple that drops the
//! tiebreaker — would each be deterministic alone yet disagree with each
//! other, which is exactly the class of bug bit-identity tests catch
//! late and painfully. So the workspace defines one key function,
//! `tbpoint_sim::order::cycle_sm_key`, and this rule flags any sort
//! whose key closure mentions both `cycle` and `sm` identifiers without
//! routing them through it.

use super::{ident, punct, CANONICAL_ORDER_SORT};
use crate::lexer::Tok;
use crate::{Diagnostic, FileContext, Severity};

/// Crates whose event buffers carry the `(cycle, sm)` contract.
const ORDER_CRATES: &[&str] = &["sim"];

/// Sorting methods whose key/comparator closure we inspect.
const SORT_METHODS: &[&str] = &[
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// The one blessed key function.
pub const BLESSED_KEY_FN: &str = "cycle_sm_key";

/// Run the rule over one file.
pub fn check(ctx: &FileContext, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    if !ORDER_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        let Some(name) = ident(Some(tok)) else {
            continue;
        };
        if !SORT_METHODS.contains(&name)
            || punct(tokens.get(i.wrapping_sub(1))) != Some('.')
            || punct(tokens.get(i + 1)) != Some('(')
        {
            continue;
        }
        // Scan the argument (the key/comparator closure) to the matching
        // close paren and collect the identifiers inside.
        let mut depth = 0i64;
        let mut j = i + 1;
        let mut has_cycle = false;
        let mut has_sm = false;
        let mut has_blessed = false;
        while j < tokens.len() {
            match punct(tokens.get(j)) {
                Some('(') => depth += 1,
                Some(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            match ident(tokens.get(j)) {
                Some("cycle") => has_cycle = true,
                Some("sm") => has_sm = true,
                Some(BLESSED_KEY_FN) => has_blessed = true,
                _ => {}
            }
            j += 1;
        }
        if has_cycle && has_sm && !has_blessed {
            out.push(ctx.diagnostic(
                CANONICAL_ORDER_SORT,
                Severity::Error,
                tok.line,
                format!(
                    "`.{name}(..)` builds an ad-hoc (cycle, sm) key; replay order is \
                     the determinism contract — route the key through \
                     `crate::order::{BLESSED_KEY_FN}` so every event buffer agrees \
                     on one canonical order"
                ),
            ));
        }
    }
}

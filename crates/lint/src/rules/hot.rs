//! `no-alloc-in-hot-path`: functions annotated `tbpoint-hot` must not
//! allocate.
//!
//! PR 4/5 made the steady-state simulation loop allocation-free by hand
//! (reused scratch buffers, fixed arrays, `Vec::push` into pre-grown
//! buffers) and claimed so in comments. This rule turns the claim into a
//! checked property: mark the hot function with a plain `//` comment
//! line reading `tbpoint-hot` directly above it, and any construct that
//! allocates on every call — container constructors, `collect`,
//! `format!`/`vec!`, `to_string`/`to_owned`/`to_vec`, `clone` — becomes
//! an error. `Vec::push` on a caller-owned buffer stays legal: amortized
//! growth on a reused buffer is the intended idiom.

use super::{ident, punct, NO_ALLOC_IN_HOT_PATH};
use crate::lexer::Tok;
use crate::parser::ItemTree;
use crate::{Diagnostic, FileContext, Severity};

/// Container types whose associated constructors allocate (or set up an
/// allocation) when called per-iteration.
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "Box",
    "String",
    "VecDeque",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "Rc",
    "Arc",
];

/// Associated functions on the above that allocate.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "default"];

/// Methods that allocate a fresh container/string per call.
const ALLOC_METHODS: &[&str] = &["collect", "to_string", "to_owned", "to_vec", "clone"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Run the rule over one file.
pub fn check(ctx: &FileContext, tokens: &[Tok], tree: &ItemTree, out: &mut Vec<Diagnostic>) {
    for f in &tree.fns {
        if !f.hot || f.body.is_empty() {
            continue;
        }
        for i in f.body.clone() {
            let Some(name) = ident(tokens.get(i)) else {
                continue;
            };
            let line = tokens[i].line;
            let prev = punct(tokens.get(i.wrapping_sub(1)));
            let next = punct(tokens.get(i + 1));
            let found = if ALLOC_TYPES.contains(&name)
                && next == Some(':')
                && punct(tokens.get(i + 2)) == Some(':')
                && ident(tokens.get(i + 3)).is_some_and(|m| ALLOC_CTORS.contains(&m))
            {
                ident(tokens.get(i + 3)).map(|m| format!("`{name}::{m}`"))
            } else if prev == Some('.')
                && ALLOC_METHODS.contains(&name)
                // `collect::<T>()` and `collect()` both start `.collect`
                && matches!(next, Some('(') | Some(':'))
            {
                Some(format!("`.{name}(..)`"))
            } else if ALLOC_MACROS.contains(&name) && next == Some('!') {
                Some(format!("`{name}!`"))
            } else {
                None
            };
            if let Some(found) = found {
                out.push(ctx.diagnostic(
                    NO_ALLOC_IN_HOT_PATH,
                    Severity::Error,
                    line,
                    format!(
                        "{found} allocates inside hot fn `{}`; steady-state windows \
                         must reuse caller-owned scratch buffers (push into a \
                         pre-grown Vec, index into fixed arrays) instead of \
                         allocating per call",
                        f.name
                    ),
                ));
            }
        }
    }
}

//! The project-specific rule set.
//!
//! Every rule pattern-matches over the flat token stream from
//! [`crate::lexer`], restricted to non-test code of the crates it is
//! scoped to. See DESIGN.md ("Determinism invariants & static analysis")
//! for the rationale behind each rule.

pub mod hot;
pub mod order;
pub mod phase;

use crate::lexer::{Tok, TokKind};
use crate::parser::ItemTree;
use crate::{Diagnostic, FileContext, Severity};

/// Names of all rules, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    NO_NONDETERMINISM,
    NO_NAN_UNSAFE_ORDERING,
    NO_PANIC_IN_LIBRARY,
    NO_LOSSY_CAST,
    BARRIER_PHASE_DISCIPLINE,
    NO_ALLOC_IN_HOT_PATH,
    CANONICAL_ORDER_SORT,
    UNUSED_ALLOW_DIRECTIVE,
];

/// Forbid wall-clock and OS-entropy randomness plus hash-order iteration.
pub const NO_NONDETERMINISM: &str = "no-nondeterminism";
/// Forbid NaN-panicking float comparisons in clustering/stats code.
pub const NO_NAN_UNSAFE_ORDERING: &str = "no-nan-unsafe-ordering";
/// Forbid `unwrap`/`expect`/`panic!` in library code paths.
pub const NO_PANIC_IN_LIBRARY: &str = "no-panic-in-library";
/// Flag truncating `as` casts on counter-like values in hot paths.
pub const NO_LOSSY_CAST: &str = "no-lossy-cast";
/// Cross-SM shared state only from coordinator-phase functions.
pub const BARRIER_PHASE_DISCIPLINE: &str = "barrier-phase-discipline";
/// No allocation inside `tbpoint-hot` regions.
pub const NO_ALLOC_IN_HOT_PATH: &str = "no-alloc-in-hot-path";
/// `(cycle, sm)` event sorts must use the blessed comparator.
pub const CANONICAL_ORDER_SORT: &str = "canonical-order-sort";
/// An allow directive that suppressed nothing is itself a finding.
pub const UNUSED_ALLOW_DIRECTIVE: &str = "unused-allow-directive";

/// One-line description per rule (for `--list-rules`).
pub fn describe(rule: &str) -> &'static str {
    match rule {
        NO_NONDETERMINISM => {
            "forbids thread_rng/from_entropy/SystemTime::now/Instant::now and \
             HashMap/HashSet (iteration order nondeterminism) in library crates"
        }
        NO_NAN_UNSAFE_ORDERING => {
            "forbids partial_cmp(..).unwrap()/expect() in library crates and \
             float ==/!= against literals in clustering/stats code; use f64::total_cmp"
        }
        NO_PANIC_IN_LIBRARY => {
            "forbids .unwrap()/.expect()/panic!/unreachable!/todo!/unimplemented! \
             in non-test library code; return Result instead"
        }
        NO_LOSSY_CAST => {
            "flags truncating `as` casts on counter-like identifiers (cycle/block/\
             inst/warp/...) in sim and core hot paths; use try_from or u64 math"
        }
        BARRIER_PHASE_DISCIPLINE => {
            "cross-SM shared state (MSHRs/L2/DRAM, MemorySystem handles) may only \
             be touched by functions annotated `tbpoint-phase: coordinator`; \
             shard-phase or unannotated access is an error"
        }
        NO_ALLOC_IN_HOT_PATH => {
            "forbids Vec::new/Box::new/collect/format!/to_string/clone and \
             friends inside functions annotated `tbpoint-hot` — steady-state \
             windows must stay allocation-free"
        }
        CANONICAL_ORDER_SORT => {
            "sorts keyed on (cycle, sm) event order must go through the blessed \
             tbpoint_sim::order::cycle_sm_key comparator, not ad-hoc key tuples"
        }
        UNUSED_ALLOW_DIRECTIVE => {
            "a tbpoint-lint allow(...) directive that suppresses no diagnostic \
             is stale and must be removed (warning; promoted by --deny-warnings)"
        }
        _ => "unknown rule",
    }
}

/// Crates whose results must be bit-reproducible: the profiling, sampling
/// and simulation substrate. `cli`, `bench` and the lint tool itself are
/// presentation/tooling layers and exempt.
pub const LIBRARY_CRATES: &[&str] = &[
    "core",
    "pool",
    "sim",
    "emu",
    "obs",
    "cluster",
    "stats",
    "workloads",
    "baselines",
    "model",
    "ir",
    "resilience",
    "serve",
];

/// Crates where float `==`/`!=` on distances/features is NaN-hazardous.
const FLOAT_CMP_CRATES: &[&str] = &["cluster", "stats"];

/// Crates with cycle/TB-counter hot paths where truncation is silent data
/// corruption.
const LOSSY_CAST_CRATES: &[&str] = &["sim", "core"];

/// Identifier substrings that mark a value as a counter in the hot paths.
const COUNTER_HINTS: &[&str] = &["cycle", "inst", "block", "warp", "request", "epoch", "tb"];

/// Integer types an `as` cast can silently truncate a 64-bit counter to.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Run every applicable rule over one file's tokens and item tree.
///
/// `tokens` must already have test-only ranges removed (see
/// [`crate::strip_test_ranges`]), and `tree` must have been parsed from
/// that same stripped stream.
pub fn check_file(ctx: &FileContext, tokens: &[Tok], tree: &ItemTree, out: &mut Vec<Diagnostic>) {
    if !ctx.is_library {
        return;
    }
    check_nondeterminism(ctx, tokens, out);
    check_nan_ordering(ctx, tokens, out);
    check_panic(ctx, tokens, out);
    if LOSSY_CAST_CRATES.contains(&ctx.crate_name.as_str()) {
        check_lossy_cast(ctx, tokens, out);
    }
    phase::check(ctx, tokens, tree, out);
    hot::check(ctx, tokens, tree, out);
    order::check(ctx, tokens, out);
}

pub(crate) fn ident(tok: Option<&Tok>) -> Option<&str> {
    match tok.map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct(tok: Option<&Tok>) -> Option<char> {
    match tok.map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// `tok[i..]` starts with `::<name>` (path segment).
fn path_seg(tokens: &[Tok], i: usize, name: &str) -> bool {
    punct(tokens.get(i)) == Some(':')
        && punct(tokens.get(i + 1)) == Some(':')
        && ident(tokens.get(i + 2)) == Some(name)
}

fn check_nondeterminism(ctx: &FileContext, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, tok) in tokens.iter().enumerate() {
        let TokKind::Ident(name) = &tok.kind else {
            continue;
        };
        let message = match name.as_str() {
            "thread_rng" | "from_entropy" => Some(format!(
                "`{name}` draws OS entropy; results must be a pure function of the \
                 benchmark seed — use tbpoint_stats::SplitMix64 or the stateless \
                 rng::mix64 family"
            )),
            "SystemTime" | "Instant" if path_seg(tokens, i + 1, "now") => Some(format!(
                "`{name}::now()` makes results depend on wall-clock time; thread \
                 timing through explicit cycle counters or config instead"
            )),
            "HashMap" | "HashSet" => Some(format!(
                "`{name}` iteration order is nondeterministic and can leak into \
                 results; use BTreeMap/BTreeSet (or allow-list a membership-only \
                 use with a justification comment)"
            )),
            _ => None,
        };
        if let Some(message) = message {
            out.push(ctx.diagnostic(NO_NONDETERMINISM, Severity::Error, tok.line, message));
        }
    }
}

fn check_nan_ordering(ctx: &FileContext, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    // `partial_cmp( ... ).unwrap()` / `.expect(` — panics on NaN input.
    for (i, tok) in tokens.iter().enumerate() {
        if ident(Some(tok)) != Some("partial_cmp") || punct(tokens.get(i + 1)) != Some('(') {
            continue;
        }
        // Find the matching close paren.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            match punct(tokens.get(j)) {
                Some('(') => depth += 1,
                Some(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if punct(tokens.get(j + 1)) == Some('.') {
            if let Some(m @ ("unwrap" | "expect")) = ident(tokens.get(j + 2)) {
                out.push(ctx.diagnostic(
                    NO_NAN_UNSAFE_ORDERING,
                    Severity::Error,
                    tok.line,
                    format!(
                        "`partial_cmp(..).{m}()` panics on NaN; use `f64::total_cmp` \
                         for a total order over floats"
                    ),
                ));
            }
        }
    }

    // Float literal ==/!= comparisons in distance/feature code.
    if !FLOAT_CMP_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for i in 0..tokens.len().saturating_sub(1) {
        let pair = (punct(tokens.get(i)), punct(tokens.get(i + 1)));
        let op = match pair {
            (Some('='), Some('=')) => "==",
            (Some('!'), Some('=')) => "!=",
            _ => continue,
        };
        // Exclude compound operators ending in `=` (`<=`, `>=`, `+=`, ...)
        // and `===`-like accidents by checking the preceding token.
        if op == "=="
            && matches!(
                punct(tokens.get(i.wrapping_sub(1))),
                Some('<' | '>' | '=' | '!' | '+' | '-' | '*' | '/' | '%' | '^' | '&' | '|')
            )
        {
            continue;
        }
        let float_neighbor =
            matches!(
                tokens.get(i.wrapping_sub(1)).map(|t| &t.kind),
                Some(TokKind::Float)
            ) || matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokKind::Float));
        if float_neighbor {
            out.push(ctx.diagnostic(
                NO_NAN_UNSAFE_ORDERING,
                Severity::Error,
                tokens[i].line,
                format!(
                    "float `{op}` comparison is NaN-unsafe and rounding-fragile in \
                     clustering/stats code; compare with an epsilon or use \
                     `total_cmp`/bit patterns"
                ),
            ));
        }
    }
}

fn check_panic(ctx: &FileContext, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, tok) in tokens.iter().enumerate() {
        let TokKind::Ident(name) = &tok.kind else {
            continue;
        };
        match name.as_str() {
            // `.unwrap()` / `.expect(...)` method calls only: a leading `.`
            // distinguishes them from definitions or `unwrap_or`-family
            // idents (those lex as different identifiers anyway).
            "unwrap" | "expect"
                if punct(tokens.get(i.wrapping_sub(1))) == Some('.')
                    && punct(tokens.get(i + 1)) == Some('(') =>
            {
                out.push(ctx.diagnostic(
                    NO_PANIC_IN_LIBRARY,
                    Severity::Error,
                    tok.line,
                    format!(
                        "`.{name}()` can panic in library code; propagate a \
                         Result/Option or handle the failure explicitly"
                    ),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if punct(tokens.get(i + 1)) == Some('!') =>
            {
                out.push(ctx.diagnostic(
                    NO_PANIC_IN_LIBRARY,
                    Severity::Error,
                    tok.line,
                    format!(
                        "`{name}!` aborts the caller from library code; return \
                         an error (or allow-list a provably unreachable arm \
                         with a justification comment)"
                    ),
                ));
            }
            _ => {}
        }
    }
}

fn check_lossy_cast(ctx: &FileContext, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len().saturating_sub(2) {
        let Some(castee) = ident(tokens.get(i)) else {
            continue;
        };
        if ident(tokens.get(i + 1)) != Some("as") {
            continue;
        }
        let Some(target) = ident(tokens.get(i + 2)) else {
            continue;
        };
        if !NARROW_INTS.contains(&target) {
            continue;
        }
        let lower = castee.to_ascii_lowercase();
        if COUNTER_HINTS.iter().any(|hint| lower.contains(hint)) {
            out.push(ctx.diagnostic(
                NO_LOSSY_CAST,
                Severity::Warning,
                tokens[i].line,
                format!(
                    "`{castee} as {target}` silently truncates a counter-like value; \
                     use `{target}::try_from` or keep the arithmetic in u64"
                ),
            ));
        }
    }
}

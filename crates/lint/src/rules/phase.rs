//! `barrier-phase-discipline`: cross-SM shared state may only be touched
//! from coordinator-phase functions.
//!
//! The sharded parallel simulator is bit-identical to serial only
//! because shard workers never touch MSHR/L2/DRAM state mid-window; all
//! cross-SM coupling happens at window barriers, on one thread, in
//! canonical order. This rule makes that convention checkable: functions
//! in `crates/sim` declare their phase with an annotation comment
//! (`tbpoint-phase:` followed by `coordinator` or `shard`, anchored at
//! the start of a plain `//` comment directly above the `fn`), and any
//! function that touches the shared-state roster without being declared
//! `coordinator` is an error — whether it is explicitly `shard` or
//! simply unannotated. New code cannot silently grow a shared-state
//! access path.
//!
//! "Touches" is computed three ways: direct roster field access
//! (`.mshrs`, `.l2`, `.dram`, `.shared`, `.mem`), roster type use
//! (`SharedMemPath::...`), and use of a local binding the dataflow pass
//! proved to be a handle to shared state (seeded from constructor calls
//! and from parameters whose type names a roster type). A shard-phase
//! function calling a same-file coordinator function by name is also an
//! error, so discipline cannot be laundered through one level of
//! indirection.

use super::{ident, punct, BARRIER_PHASE_DISCIPLINE};
use crate::dataflow;
use crate::lexer::Tok;
use crate::parser::{FnItem, ItemTree, Phase};
use crate::{Diagnostic, FileContext, Severity};

/// Crates where the shared-state roster below is meaningful. The roster
/// names concrete types/fields of the simulator's memory system; other
/// crates reuse the annotation grammar but have no roster to enforce.
const PHASE_CRATES: &[&str] = &["sim"];

/// Types whose values are cross-SM shared state.
pub const SHARED_TYPES: &[&str] = &["SharedMemPath", "MemorySystem"];

/// Field names that hold cross-SM shared state (exact match after `.`).
pub const SHARED_FIELDS: &[&str] = &["shared", "mshrs", "l2", "dram", "mem"];

/// Run the rule over one file.
pub fn check(ctx: &FileContext, tokens: &[Tok], tree: &ItemTree, out: &mut Vec<Diagnostic>) {
    // Annotation hygiene applies wherever the grammar is used.
    for marker in &tree.dangling {
        out.push(
            ctx.diagnostic(
                BARRIER_PHASE_DISCIPLINE,
                Severity::Warning,
                marker.line,
                "annotation attaches to no function (no `fn` at or below this line); \
             move it directly above the item it describes or remove it"
                    .to_string(),
            ),
        );
    }
    for f in &tree.fns {
        if f.phase_conflict {
            out.push(ctx.diagnostic(
                BARRIER_PHASE_DISCIPLINE,
                Severity::Error,
                f.sig_line,
                format!(
                    "fn `{}` carries conflicting phase annotations; a function is \
                     either coordinator or shard, never both",
                    f.name
                ),
            ));
        }
        for (line, value) in &f.invalid_phases {
            out.push(ctx.diagnostic(
                BARRIER_PHASE_DISCIPLINE,
                Severity::Error,
                *line,
                format!(
                    "unknown phase `{value}`; the grammar accepts `coordinator` or \
                     `shard`"
                ),
            ));
        }
    }

    if !PHASE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }

    let coordinator_fns: Vec<&str> = tree
        .fns
        .iter()
        .filter(|f| f.phase == Some(Phase::Coordinator))
        .map(|f| f.name.as_str())
        .collect();

    for f in &tree.fns {
        if f.body.is_empty() || f.phase == Some(Phase::Coordinator) {
            continue;
        }
        check_fn(ctx, tokens, f, &coordinator_fns, out);
    }
}

/// Check one non-coordinator fn for shared-state accesses.
fn check_fn(
    ctx: &FileContext,
    tokens: &[Tok],
    f: &FnItem,
    coordinator_fns: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    let seeds: Vec<String> = f
        .params
        .iter()
        .filter(|p| {
            p.type_idents
                .iter()
                .any(|t| SHARED_TYPES.contains(&t.as_str()))
        })
        .map(|p| p.name.clone())
        .collect();
    let taint =
        dataflow::tainted_bindings(tokens, f.body.clone(), &seeds, SHARED_TYPES, SHARED_FIELDS);

    // One diagnostic per line keeps multi-access lines readable.
    let mut flagged_lines = std::collections::BTreeSet::new();
    for i in f.body.clone() {
        let Some(name) = ident(tokens.get(i)) else {
            continue;
        };
        let line = tokens[i].line;
        let prev = punct(tokens.get(i.wrapping_sub(1)));
        let what = if prev == Some('.') && SHARED_FIELDS.contains(&name) {
            Some(format!("field `.{name}`"))
        } else if SHARED_TYPES.contains(&name)
            && punct(tokens.get(i + 1)) == Some(':')
            && punct(tokens.get(i + 2)) == Some(':')
        {
            Some(format!("type `{name}`"))
        } else if prev != Some('.')
            && taint.names.contains(name)
            && !taint.binding_sites.contains(&i)
        {
            Some(format!("shared-state handle `{name}`"))
        } else if f.phase == Some(Phase::Shard)
            && prev != Some('.')
            && prev != Some(':')
            && punct(tokens.get(i + 1)) == Some('(')
            && coordinator_fns.contains(&name)
        {
            Some(format!("coordinator-phase fn `{name}`"))
        } else {
            None
        };
        let Some(what) = what else { continue };
        if !flagged_lines.insert(line) {
            continue;
        }
        let message = match f.phase {
            Some(Phase::Shard) => format!(
                "shard-phase fn `{}` touches cross-SM shared state ({what}); shards \
                 may only buffer requests — move the access to a coordinator-phase \
                 function that runs at the window barrier",
                f.name
            ),
            _ => format!(
                "fn `{}` touches cross-SM shared state ({what}) without a phase \
                 annotation; declare its barrier discipline with a comment line \
                 reading `tbpoint-phase: coordinator` (or restructure so the shard \
                 buffers the request)",
                f.name
            ),
        };
        out.push(ctx.diagnostic(BARRIER_PHASE_DISCIPLINE, Severity::Error, line, message));
    }
}

//! Intra-procedural use-def chains ("taint") over a function body.
//!
//! The barrier-phase rule needs to know when a local binding *is* a
//! handle to cross-SM shared state, so that
//! `let shared = SharedMemPath::new(cfg); ... shared.miss_load_obs(..)`
//! is caught even though the second statement never names a roster type
//! or field directly. Full pointer analysis is overkill: in this
//! workspace shared handles flow only through `let` bindings and
//! parameters, so a flat scan for `let <name> = <rhs> ;` statements plus
//! a fixpoint over "rhs mentions something tainted" covers every real
//! chain while staying a few dozen lines.

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;
use std::ops::Range;

/// Result of taint propagation over one function body.
#[derive(Debug, Default)]
pub struct Taint {
    /// Binding names considered handles to shared state.
    pub names: BTreeSet<String>,
    /// Token indices (into the full stream) of the binding occurrences
    /// themselves — `shared` in `let shared = ...` — so a use-site scan
    /// can skip the definition.
    pub binding_sites: BTreeSet<usize>,
}

/// One parsed `let` statement: binding name, its token index, and the
/// token range of the right-hand side.
struct LetStmt {
    name: String,
    name_idx: usize,
    rhs: Range<usize>,
}

/// Compute the tainted binding set for `body` (a token index range into
/// `tokens`). `seed_names` are bindings tainted from outside (parameters
/// whose type mentions a roster type); `types` and `fields` are the
/// roster of shared type and field names that taint a right-hand side.
pub fn tainted_bindings(
    tokens: &[Tok],
    body: Range<usize>,
    seed_names: &[String],
    types: &[&str],
    fields: &[&str],
) -> Taint {
    let mut taint = Taint {
        names: seed_names.iter().cloned().collect(),
        binding_sites: BTreeSet::new(),
    };
    let lets = collect_lets(tokens, body);

    // Fixpoint: a binding becomes tainted when its RHS mentions a roster
    // type, a roster field access, or an already-tainted binding. Chains
    // are at most a handful deep; the loop is bounded by |lets| rounds.
    loop {
        let mut changed = false;
        for stmt in &lets {
            if taint.names.contains(&stmt.name) {
                continue;
            }
            if rhs_is_tainted(tokens, stmt.rhs.clone(), &taint.names, types, fields) {
                taint.names.insert(stmt.name.clone());
                taint.binding_sites.insert(stmt.name_idx);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Even untainted let bindings of tainted names shadow them; this
    // workspace never shadows a shared handle, so we accept the
    // (conservative, error-side) imprecision.
    taint
}

/// Scan a body for `let [mut] <name> [: ty] = <rhs> ;` statements.
/// Destructuring patterns (`let (a, b) = ..`, `let Some(x) = ..`) are
/// skipped: they never bind shared handles in this workspace.
fn collect_lets(tokens: &[Tok], body: Range<usize>) -> Vec<LetStmt> {
    let mut lets = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if ident_at(tokens, i) != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if ident_at(tokens, j) == Some("mut") {
            j += 1;
        }
        let Some(name) = ident_at(tokens, j) else {
            i += 1;
            continue;
        };
        let name_idx = j;
        j += 1;
        // Reject enum/struct patterns (`let Some(x) = ..`, `let Ok { .. }`,
        // `let path::Variant(..)`) — the "name" is a constructor there.
        if matches!(punct_at(tokens, j), Some('(') | Some('{'))
            || (punct_at(tokens, j) == Some(':') && punct_at(tokens, j + 1) == Some(':'))
        {
            i = j;
            continue;
        }
        // Skip an optional `: Type` to the `=` at depth 0.
        let mut depth = 0i64;
        let mut eq = None;
        while j < body.end {
            match punct_at(tokens, j) {
                Some('(') | Some('[') | Some('<') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('>') if punct_at(tokens, j.wrapping_sub(1)) != Some('-') => depth -= 1,
                Some('=') if depth == 0 => {
                    // `==` or `=>` would not follow a let pattern here;
                    // a plain `=` begins the initializer.
                    eq = Some(j);
                    break;
                }
                Some(';') | Some('{') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i += 1;
            continue;
        };
        // RHS: from past `=` to the terminating `;` at delimiter depth 0.
        let mut depth = 0i64;
        let mut k = eq + 1;
        while k < body.end {
            match punct_at(tokens, k) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth -= 1,
                Some(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        lets.push(LetStmt {
            name: name.to_string(),
            name_idx,
            rhs: eq + 1..k.min(body.end),
        });
        i = k + 1;
    }
    lets
}

/// Whether an RHS token range mentions tainted state.
fn rhs_is_tainted(
    tokens: &[Tok],
    rhs: Range<usize>,
    tainted: &BTreeSet<String>,
    types: &[&str],
    fields: &[&str],
) -> bool {
    for i in rhs.clone() {
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        if types.contains(&name) {
            return true;
        }
        if punct_at(tokens, i.wrapping_sub(1)) == Some('.') && fields.contains(&name) {
            return true;
        }
        if tainted.contains(name) && punct_at(tokens, i.wrapping_sub(1)) != Some('.') {
            return true;
        }
    }
    false
}

fn ident_at(tokens: &[Tok], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Tok], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;

    fn taint_of(src: &str, seeds: &[&str]) -> Taint {
        let lexed = lexer::lex(src);
        let tree = parser::parse(&lexed.tokens, &lexed.markers);
        let seed_names: Vec<String> = seeds.iter().map(|s| (*s).to_string()).collect();
        tainted_bindings(
            &lexed.tokens,
            tree.fns[0].body.clone(),
            &seed_names,
            &["SharedMemPath"],
            &["shared"],
        )
    }

    #[test]
    fn direct_constructor_taints() {
        let t = taint_of(
            "fn f() { let mut s = SharedMemPath::new(cfg); s.load(); }",
            &[],
        );
        assert!(t.names.contains("s"));
    }

    #[test]
    fn chained_bindings_taint_transitively() {
        let t = taint_of(
            "fn f() { let a = SharedMemPath::new(cfg); let b = a; let c = b; }",
            &[],
        );
        assert!(t.names.contains("c"));
    }

    #[test]
    fn field_access_taints() {
        let t = taint_of("fn f(sys: &Mem) { let s = sys.shared; s.probe(); }", &[]);
        assert!(t.names.contains("s"));
    }

    #[test]
    fn unrelated_bindings_stay_clean() {
        let t = taint_of("fn f() { let n = cycles + 1; let m = n * 2; }", &[]);
        assert!(t.names.is_empty());
    }

    #[test]
    fn enum_patterns_are_not_bindings() {
        let t = taint_of(
            "fn f() { let s = SharedMemPath::new(cfg); if let Some(x) = s.get() { x; } }",
            &[],
        );
        assert!(t.names.contains("s"));
        assert!(!t.names.contains("Some"));
    }

    #[test]
    fn seeds_propagate() {
        let t = taint_of("fn f(mem: &mut M) { let alias = mem; }", &["mem"]);
        assert!(t.names.contains("alias"));
    }
}

//! Command-line driver for the `tbpoint-lint` / `tbpoint-analyze`
//! workspace analyzer.
//!
//! ```text
//! tbpoint-lint [--root DIR] [--format human|json] [--deny-warnings]
//!              [--quiet] [--list-rules] [PATH ...]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
//! `--quiet` suppresses the report body (CI legs that only gate on the
//! exit code); `--format json` emits a deterministic report — violations
//! sorted by `(file, line, rule)` plus a `summary` object with per-rule
//! and per-severity counts.

use std::path::PathBuf;
use std::process::ExitCode;

use tbpoint_lint::{render_human, render_json, rules, run};

enum Format {
    Human,
    Json,
}

struct Args {
    root: PathBuf,
    format: Format,
    deny_warnings: bool,
    quiet: bool,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: tbpoint-lint [--root DIR] [--format human|json] [--deny-warnings] \
     [--quiet] [--list-rules] [PATH ...]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        format: Format::Human,
        deny_warnings: false,
        quiet: false,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a value".to_string())?,
                );
            }
            "--format" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--format requires a value".to_string())?;
                args.format = match v.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--quiet" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("tbpoint-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in rules::RULE_NAMES {
            println!("{rule}\n    {}", rules::describe(rule));
        }
        return ExitCode::SUCCESS;
    }

    let report = match run(&args.root, &args.paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tbpoint-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if !args.quiet {
        match args.format {
            Format::Human => print!("{}", render_human(&report)),
            Format::Json => println!("{}", render_json(&report)),
        }
    }

    if report.failed(args.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

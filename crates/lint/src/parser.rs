//! A lightweight item parser over the flat token stream.
//!
//! The phase/hot rule families need to know *which function* a token
//! belongs to, what that function's parameters are, and which annotation
//! markers attach to it. A full AST is unnecessary: `fn` items are
//! recognizable as `fn <name> [<generics>] ( params ) [-> ret] { body }`
//! directly in the token stream, and brace matching delimits bodies
//! exactly (strings and comments were already stripped by the lexer, so
//! no brace inside them can confuse the count).
//!
//! Markers attach to the next `fn` whose signature line is at or below
//! the marker line — i.e. the annotation comment sits directly above (or
//! trails the line of) the `fn` it describes. A marker with no following
//! `fn` is reported as dangling so a typo'd or misplaced annotation is a
//! diagnostic, never a silent no-op.

use crate::lexer::{Marker, MarkerKind, Tok, TokKind};

/// Phase discipline declared for a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Runs only at window barriers; may touch cross-SM shared state.
    Coordinator,
    /// Runs concurrently inside a window; must not touch shared state.
    Shard,
}

/// One function parameter: binding name plus the identifiers appearing in
/// its type (enough to see whether the type mentions a roster type).
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`mem` in `mem: &mut MemorySystem`).
    pub name: String,
    /// Identifiers in the type position (`MemorySystem` in the above).
    pub type_idents: Vec<String>,
}

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// Token index range of the body, *excluding* the outer braces.
    /// Empty for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// Declared phase, if annotated.
    pub phase: Option<Phase>,
    /// Whether a `tbpoint-hot` marker attaches here.
    pub hot: bool,
    /// Lines of markers that attached to this fn (for diagnostics).
    pub marker_lines: Vec<u32>,
    /// True if two conflicting phase annotations attached here.
    pub phase_conflict: bool,
    /// Invalid phase values that attached here (with their lines).
    pub invalid_phases: Vec<(u32, String)>,
    /// Named, typed parameters (self receivers and destructured patterns
    /// are skipped — they carry no binding name we can track).
    pub params: Vec<Param>,
}

/// The item tree for one file: every `fn`, plus markers that attached to
/// nothing.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// Markers with no `fn` at or below their line.
    pub dangling: Vec<Marker>,
}

/// Parse the (test-stripped) token stream into an item tree and attach
/// `markers` to the functions they annotate.
pub fn parse(tokens: &[Tok], markers: &[Marker]) -> ItemTree {
    let mut tree = ItemTree::default();
    let mut i = 0usize;
    while i < tokens.len() {
        if ident_at(tokens, i) == Some("fn") {
            if let Some((item, next)) = parse_fn(tokens, i) {
                tree.fns.push(item);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    attach_markers(&mut tree, markers);
    tree
}

fn ident_at(tokens: &[Tok], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Tok], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Parse one `fn` starting at the `fn` keyword. Returns the item and the
/// index to resume scanning from (just past the body for fns with one, so
/// nested closures are never re-parsed as items; Rust has no nested `fn`
/// in this workspace, and closures use `|..|`, not `fn`).
fn parse_fn(tokens: &[Tok], fn_idx: usize) -> Option<(FnItem, usize)> {
    let name = ident_at(tokens, fn_idx + 1)?.to_string();
    let sig_line = tokens[fn_idx].line;
    let mut i = fn_idx + 2;

    // Skip `<generics>` — bracket-matched, with `->` inside `Fn(..) -> R`
    // bounds handled by ignoring a `>` that directly follows a `-`.
    if punct_at(tokens, i) == Some('<') {
        let mut depth = 0i64;
        while i < tokens.len() {
            match punct_at(tokens, i) {
                Some('<') => depth += 1,
                Some('>') if punct_at(tokens, i.wrapping_sub(1)) != Some('-') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Parameter list.
    if punct_at(tokens, i) != Some('(') {
        return None;
    }
    let params_start = i + 1;
    let mut depth = 0i64;
    while i < tokens.len() {
        match punct_at(tokens, i) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let params_end = i.min(tokens.len());
    let params = parse_params(&tokens[params_start..params_end]);
    i += 1;

    // Return type / where clause: scan to the body `{` or a terminating
    // `;` (trait method declaration) at bracket depth 0.
    let mut depth = 0i64;
    let mut body = 0..0;
    while i < tokens.len() {
        match punct_at(tokens, i) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some(';') if depth == 0 => {
                i += 1;
                break;
            }
            Some('{') if depth == 0 => {
                let open = i;
                let mut braces = 0i64;
                while i < tokens.len() {
                    match punct_at(tokens, i) {
                        Some('{') => braces += 1,
                        Some('}') => {
                            braces -= 1;
                            if braces == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                body = open + 1..i.min(tokens.len());
                i = (i + 1).min(tokens.len());
                break;
            }
            _ => {}
        }
        i += 1;
    }

    Some((
        FnItem {
            name,
            sig_line,
            body,
            phase: None,
            hot: false,
            marker_lines: Vec::new(),
            phase_conflict: false,
            invalid_phases: Vec::new(),
            params,
        },
        i,
    ))
}

/// Parse the token slice between a fn's parens into named params.
/// Splits on commas at bracket depth 0; skips self receivers and
/// patterns with no single binding name.
fn parse_params(tokens: &[Tok]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    let mut groups = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        match &tok.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('>') if i > 0 && punct_at(tokens, i - 1) != Some('-') => depth -= 1,
            TokKind::Punct(',') if depth == 0 => {
                groups.push(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < tokens.len() {
        groups.push(&tokens[start..]);
    }
    for group in groups {
        // Find the `:` separating pattern from type at depth 0.
        let mut depth = 0i64;
        let mut colon = None;
        for (i, tok) in group.iter().enumerate() {
            match &tok.kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => depth -= 1,
                // A lone `:` (not `::`).
                TokKind::Punct(':')
                    if depth == 0
                        && punct_at(group, i + 1) != Some(':')
                        && (i == 0 || punct_at(group, i - 1) != Some(':')) =>
                {
                    colon = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(colon) = colon else {
            continue; // self receiver or unparsable pattern
        };
        // Binding name: last ident before the colon (`mut name` → name);
        // more than two idents means a destructuring pattern — skip.
        let pat_idents: Vec<&str> = group[..colon]
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        let name = match pat_idents.as_slice() {
            [n] => (*n).to_string(),
            ["mut", n] => (*n).to_string(),
            _ => continue,
        };
        if name == "self" {
            continue;
        }
        let type_idents = group[colon + 1..]
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        params.push(Param { name, type_idents });
    }
    params
}

/// Attach each marker to the first fn whose signature line is >= the
/// marker's line; unattachable markers become dangling.
fn attach_markers(tree: &mut ItemTree, markers: &[Marker]) {
    for marker in markers {
        let target = tree.fns.iter_mut().find(|f| f.sig_line >= marker.line);
        let Some(f) = target else {
            tree.dangling.push(marker.clone());
            continue;
        };
        f.marker_lines.push(marker.line);
        match &marker.kind {
            MarkerKind::Coordinator => match f.phase {
                Some(Phase::Shard) => f.phase_conflict = true,
                _ => f.phase = Some(Phase::Coordinator),
            },
            MarkerKind::Shard => match f.phase {
                Some(Phase::Coordinator) => f.phase_conflict = true,
                _ => f.phase = Some(Phase::Shard),
            },
            MarkerKind::Hot => f.hot = true,
            MarkerKind::InvalidPhase(v) => f.invalid_phases.push((marker.line, v.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn tree_of(src: &str) -> ItemTree {
        let lexed = lexer::lex(src);
        parse(&lexed.tokens, &lexed.markers)
    }

    #[test]
    fn fns_and_bodies_are_found() {
        let src = "
            pub fn alpha(x: u64) -> u64 { x + 1 }
            impl Foo {
                fn beta(&mut self, mem: &mut MemorySystem) { mem.load(); }
            }
            trait T { fn gamma(&self); }
        ";
        let tree = tree_of(src);
        let names: Vec<&str> = tree.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
        assert!(!tree.fns[0].body.is_empty());
        assert!(tree.fns[2].body.is_empty(), "bodyless trait method");
    }

    #[test]
    fn params_capture_names_and_type_idents() {
        let src = "fn f(&mut self, mut mem: &mut MemorySystem, n: usize) {}";
        let tree = tree_of(src);
        let p = &tree.fns[0].params;
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].name, "mem");
        assert!(p[0].type_idents.contains(&"MemorySystem".to_string()));
        assert_eq!(p[1].name, "n");
    }

    #[test]
    fn generics_with_fn_bounds_are_skipped() {
        let src = "fn f<F: FnMut(u64) -> u64, T: Ord>(g: F, x: Vec<(u64, T)>) -> u64 { g(0) }";
        let tree = tree_of(src);
        assert_eq!(tree.fns.len(), 1);
        assert_eq!(tree.fns[0].params.len(), 2);
        assert_eq!(tree.fns[0].params[1].name, "x");
    }

    #[test]
    fn markers_attach_to_next_fn() {
        let src = "
            // tbpoint-phase: coordinator
            fn a() {}
            // tbpoint-hot
            // tbpoint-phase: shard
            fn b() {}
            fn c() {}
        ";
        let tree = tree_of(src);
        assert_eq!(tree.fns[0].phase, Some(Phase::Coordinator));
        assert_eq!(tree.fns[1].phase, Some(Phase::Shard));
        assert!(tree.fns[1].hot);
        assert_eq!(tree.fns[2].phase, None);
        assert!(!tree.fns[2].hot);
        assert!(tree.dangling.is_empty());
    }

    #[test]
    fn conflicting_and_dangling_markers_are_reported() {
        let src = "
            // tbpoint-phase: coordinator
            // tbpoint-phase: shard
            fn a() {}
            fn b() {}
            // tbpoint-hot
        ";
        let tree = tree_of(src);
        assert!(tree.fns[0].phase_conflict);
        assert_eq!(tree.dangling.len(), 1);
        assert_eq!(tree.dangling[0].kind, lexer::MarkerKind::Hot);
    }
}

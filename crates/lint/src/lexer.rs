//! A small Rust lexer producing a flat, line-annotated token stream.
//!
//! The analyzer does not need a full parse tree: every rule it enforces is
//! expressible over identifier/punctuation sequences once comments, string
//! literals and char literals are stripped (so `"thread_rng"` inside a
//! string never trips a rule). The lexer also extracts
//! `tbpoint-lint: allow(...)` directives from comments, since those live
//! exactly in the trivia a parser would discard.
//!
//! `syn` would be the natural tool, but the build environment is offline;
//! a hand-rolled lexer over `char` indices is ~200 lines and covers every
//! construct in this workspace (including raw strings, nested block
//! comments, lifetimes and numeric literals with type suffixes).

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `as`, `unwrap`).
    Ident(String),
    /// Single punctuation character (`.`, `(`, `=`, ...).
    Punct(char),
    /// Integer literal.
    Int,
    /// Floating-point literal (has a `.` or an exponent).
    Float,
    /// String, byte-string or char literal (contents discarded).
    Str,
    /// Lifetime (`'a`).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// An `allow` escape-hatch directive found in a comment.
///
/// `// tbpoint-lint: allow(rule-a, rule-b)` suppresses the named rules on
/// the directive's own line (trailing comment) and on the following line
/// (standalone comment above the offending code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
}

/// What a `tbpoint-*` annotation comment declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkerKind {
    /// `tbpoint-phase: coordinator` — the next `fn` runs only at window
    /// barriers and may touch cross-SM shared state.
    Coordinator,
    /// `tbpoint-phase: shard` — the next `fn` runs concurrently inside a
    /// window and must not touch cross-SM shared state.
    Shard,
    /// `tbpoint-hot` — the next `fn` is a steady-state hot path and must
    /// not allocate.
    Hot,
    /// `tbpoint-phase:` with an unrecognized value (kept for diagnostics).
    InvalidPhase(String),
}

/// A `tbpoint-phase:`/`tbpoint-hot` annotation found in a comment. The
/// comment must *start* with the directive (after whitespace), so prose
/// that merely mentions the grammar — e.g. backtick-quoted examples in
/// doc comments — is not an annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// 1-based line the annotation appears on.
    pub line: u32,
    /// What it declares about the next `fn` item.
    pub kind: MarkerKind,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream with comments/strings stripped.
    pub tokens: Vec<Tok>,
    /// All allow directives, in source order.
    pub allows: Vec<AllowDirective>,
    /// All phase/hot annotations, in source order.
    pub markers: Vec<Marker>,
}

/// Lex Rust source text. Never fails: unrecognized bytes are skipped, so
/// the analyzer degrades gracefully on exotic syntax instead of crashing.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                scan_allow(&text, line, &mut out.allows);
                scan_marker(&text, line, &mut out.markers);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comments, as in real Rust.
                let start = i + 2;
                let mut depth = 1;
                let comment_line = line;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                let text: String = chars[start..end].iter().collect();
                scan_allow(&text, comment_line, &mut out.allows);
                scan_marker(&text, comment_line, &mut out.markers);
            }
            '"' => {
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    line,
                });
                i = skip_string(&chars, i, &mut line);
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    line,
                });
                i = skip_raw_or_byte_string(&chars, i, &mut line);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let is_lifetime = match chars.get(i + 1) {
                    Some(&n) if n.is_alphabetic() || n == '_' => chars.get(i + 2) != Some(&'\''),
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        line,
                    });
                    i = skip_char_literal(&chars, i);
                }
            }
            c if c.is_ascii_digit() => {
                let (next, kind) = lex_number(&chars, i);
                out.tokens.push(Tok { kind, line });
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().collect();
                out.tokens.push(Tok {
                    kind: TokKind::Ident(ident),
                    line,
                });
                i = j;
            }
            c => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True if position `i` starts `r"`, `r#"`, `b"`, `br"`, `br#"` etc.
fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    // `b"..."` (j advanced past `b`) or `r#"..."` (past `r##...`): either
    // way the next char must open a string, and we must have consumed at
    // least one prefix char to be here.
    j > i && chars.get(j) == Some(&'"')
}

/// Skip a plain `"..."` string starting at `i`. Returns index past it.
fn skip_string(chars: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skip a raw/byte string (`r#"..."#`, `b"..."`, `br##"..."##`).
fn skip_raw_or_byte_string(chars: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    j += 1;
    while j < chars.len() {
        match chars[j] {
            '\\' if !raw => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => {
                let mut k = j + 1;
                let mut seen = 0;
                while seen < hashes && chars.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skip a char literal `'x'` / `'\n'` / `'\u{1F600}'`.
fn skip_char_literal(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Lex a numeric literal starting at `i`; classify int vs float.
fn lex_number(chars: &[char], i: usize) -> (usize, TokKind) {
    let mut j = i;
    let mut float = false;
    // Radix prefixes are always integers.
    if chars[j] == '0' && matches!(chars.get(j + 1), Some('x' | 'o' | 'b')) {
        j += 2;
        while j < chars.len() && (chars[j].is_ascii_hexdigit() || chars[j] == '_') {
            j += 1;
        }
    } else {
        while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
        // A fractional part: `1.5` but not `1..2` (range) or `1.method()`.
        if chars.get(j) == Some(&'.') && matches!(chars.get(j + 1), Some(d) if d.is_ascii_digit()) {
            float = true;
            j += 1;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
        // Exponent: `1e9`, `2.5E-3`.
        if matches!(chars.get(j), Some('e' | 'E'))
            && matches!(
                chars.get(j + 1),
                Some(d) if d.is_ascii_digit() || *d == '+' || *d == '-'
            )
        {
            float = true;
            j += 1;
            if matches!(chars.get(j), Some('+' | '-')) {
                j += 1;
            }
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (`u64`, `f64`, ...): a suffix beginning with `f` marks a
    // float literal like `1f64`.
    if matches!(chars.get(j), Some(c) if c.is_alphabetic()) {
        if chars[j] == 'f' {
            float = true;
        }
        while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
    }
    (j, if float { TokKind::Float } else { TokKind::Int })
}

/// Extract `tbpoint-lint: allow(a, b)` directives from comment text.
///
/// Listed names must look like rule names (`[a-z0-9-]+`); anything else —
/// e.g. the `allow(<rule>)` placeholder in documentation prose — is
/// dropped rather than recorded as a directive.
fn scan_allow(comment: &str, line: u32, out: &mut Vec<AllowDirective>) {
    let Some(pos) = comment.find("tbpoint-lint:") else {
        return;
    };
    let rest = comment[pos + "tbpoint-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| {
            !r.is_empty()
                && r.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        })
        .collect();
    if !rules.is_empty() {
        out.push(AllowDirective { line, rules });
    }
}

/// Extract a `tbpoint-phase:`/`tbpoint-hot` annotation from comment text.
///
/// Unlike allows (which may trail other text so they can sit after code),
/// annotations are only recognized when the comment *starts* with them.
/// Doc comments (`///`) lex with a leading `/` in their text, so prose
/// examples inside docs never register as annotations.
fn scan_marker(comment: &str, line: u32, out: &mut Vec<Marker>) {
    let text = comment.trim_start();
    if let Some(rest) = text.strip_prefix("tbpoint-phase:") {
        let value = rest.split_whitespace().next().unwrap_or("");
        let kind = match value {
            "coordinator" => MarkerKind::Coordinator,
            "shard" => MarkerKind::Shard,
            other => MarkerKind::InvalidPhase(other.to_string()),
        };
        out.push(Marker { line, kind });
    } else if let Some(rest) = text.strip_prefix("tbpoint-hot") {
        // Require a word boundary so e.g. `tbpoint-hotfix` is prose.
        if rest.is_empty() || !rest.starts_with(|c: char| c.is_alphanumeric() || c == '-') {
            out.push(Marker {
                line,
                kind: MarkerKind::Hot,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // thread_rng in a comment
            /* HashMap in a block comment */
            let x = "thread_rng";
            let y = r#"Instant::now"#;
            let z = 'H';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn float_vs_int_literals() {
        let lexed = lex("1 1.5 1e9 0x1F 1f64 1u32 1..2");
        let kinds: Vec<&TokKind> = lexed.tokens.iter().map(|t| &t.kind).collect();
        assert_eq!(kinds[0], &TokKind::Int);
        assert_eq!(kinds[1], &TokKind::Float);
        assert_eq!(kinds[2], &TokKind::Float);
        assert_eq!(kinds[3], &TokKind::Int);
        assert_eq!(kinds[4], &TokKind::Float);
        assert_eq!(kinds[5], &TokKind::Int);
        // `1..2` lexes as Int, '.', '.', Int — not a float.
        assert_eq!(kinds[6], &TokKind::Int);
        assert_eq!(kinds[7], &TokKind::Punct('.'));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) {}");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn allow_directives_parse() {
        let src = "
            // tbpoint-lint: allow(no-panic-in-library)
            x.unwrap();
            y.unwrap(); // tbpoint-lint: allow(no-panic-in-library, no-lossy-cast)
        ";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].line, 2);
        assert_eq!(lexed.allows[0].rules, vec!["no-panic-in-library"]);
        assert_eq!(lexed.allows[1].line, 4);
        assert_eq!(
            lexed.allows[1].rules,
            vec!["no-panic-in-library", "no-lossy-cast"]
        );
    }

    #[test]
    fn allow_placeholder_names_are_not_directives() {
        // Documentation prose like `tbpoint-lint: allow(<rule>)` must not
        // register: `<rule>` is not a valid rule name.
        let lexed = lex("// the tbpoint-lint: allow(<rule>) escape hatch\nx();");
        assert!(lexed.allows.is_empty(), "{:?}", lexed.allows);
    }

    #[test]
    fn markers_parse_when_anchored() {
        let src = "
            // tbpoint-phase: coordinator
            fn a() {}
            // tbpoint-phase: shard
            fn b() {}
            // tbpoint-hot
            fn c() {}
            // tbpoint-phase: bogus
            fn d() {}
        ";
        let lexed = lex(src);
        let kinds: Vec<&MarkerKind> = lexed.markers.iter().map(|m| &m.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &MarkerKind::Coordinator,
                &MarkerKind::Shard,
                &MarkerKind::Hot,
                &MarkerKind::InvalidPhase("bogus".to_string()),
            ]
        );
        assert_eq!(lexed.markers[0].line, 2);
    }

    #[test]
    fn marker_mentions_in_prose_are_ignored() {
        let src = "
            /// Annotate with `// tbpoint-phase: coordinator` to declare it.
            /// The `// tbpoint-hot` marker bans allocation.
            // see the tbpoint-hot docs
            // tbpoint-hotfix
            fn a() {}
        ";
        let lexed = lex(src);
        assert!(lexed.markers.is_empty(), "{:?}", lexed.markers);
    }
}

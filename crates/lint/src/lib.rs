// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! `tbpoint-lint` — workspace determinism & numeric-safety analyzer.
//!
//! TBPoint's claim — *profile once, simulate a representative subset,
//! trust the numbers* — only holds if workload generation, profiling,
//! clustering and timing simulation are bit-reproducible and NaN-safe.
//! This crate enforces those invariants statically over every `.rs` file
//! in the workspace, with `file:line` diagnostics, severities, a
//! `// tbpoint-lint: allow(<rule>)` escape hatch, human and JSON output,
//! and a non-zero exit code on violations (so CI can gate on it).
//!
//! Rules (see [`rules`]):
//! * `no-nondeterminism` — no `thread_rng`/`from_entropy`, no
//!   `SystemTime::now`/`Instant::now`, no `HashMap`/`HashSet` in library
//!   crates.
//! * `no-nan-unsafe-ordering` — no `partial_cmp(..).unwrap()`, no float
//!   `==`/`!=` in clustering/stats code; use `f64::total_cmp`.
//! * `no-panic-in-library` — no `.unwrap()`/`.expect()`/`panic!` in
//!   non-test library code.
//! * `no-lossy-cast` — no truncating `as` casts on counter-like values in
//!   `sim`/`core` hot paths.
//! * `barrier-phase-discipline` — cross-SM shared state (MSHRs, L2, DRAM,
//!   `MemorySystem` handles) only from functions annotated as
//!   coordinator-phase; see [`parser`] for the annotation grammar.
//! * `no-alloc-in-hot-path` — no per-call allocation inside functions
//!   annotated as hot.
//! * `canonical-order-sort` — `(cycle, sm)` event sorts must use the one
//!   blessed comparator (`tbpoint_sim::order::cycle_sm_key`).
//! * `unused-allow-directive` — an allow directive that suppresses
//!   nothing is stale and reported (warning).
//!
//! Beyond the token scan, the analyzer builds a per-file item tree
//! ([`parser`]) and intra-procedural use-def chains ([`dataflow`]) so
//! the phase rule can track shared-state handles through `let` bindings
//! and parameters — still with no rustc or `syn` dependency.
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions, `tests/`,
//! `benches/`, `examples/` trees) is exempt: panics and ad-hoc hashing are
//! fine where a failure is the *point*.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::path::{Path, PathBuf};

pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod rules;

use lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// Diagnostic severity. `Error` fails the run; `Warning` fails only under
/// `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Severity {
    /// Must be fixed or allow-listed.
    Error,
    /// Advisory; promoted to failing by `--deny-warnings`.
    Warning,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// A single rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Path relative to the analysis root.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (kebab-case).
    pub rule: String,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Everything the rules need to know about the file being checked.
pub struct FileContext {
    /// Display path (relative to the root).
    pub path: String,
    /// Short crate name (`sim`, `cluster`, ...; `tbpoint` for the facade).
    pub crate_name: String,
    /// Whether the file belongs to a determinism-critical library crate.
    pub is_library: bool,
}

impl FileContext {
    fn diagnostic(&self, rule: &str, severity: Severity, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            file: self.path.clone(),
            line,
            rule: rule.to_string(),
            severity,
            message,
        }
    }
}

/// Per-rule and per-severity violation counts, keyed by stable names so
/// the JSON form is machine-diffable across runs.
#[derive(Debug, Default, Serialize)]
pub struct Summary {
    /// Violation count per rule name (rules with zero hits are omitted).
    pub by_rule: BTreeMap<String, usize>,
    /// Violation count per severity (`error`/`warning`).
    pub by_severity: BTreeMap<String, usize>,
}

/// Full analysis result over a file set.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, in (file, line, rule) order.
    pub violations: Vec<Diagnostic>,
    /// Count of error-severity violations.
    pub errors: usize,
    /// Count of warning-severity violations.
    pub warnings: usize,
    /// Aggregated counts for machine consumers.
    pub summary: Summary,
}

impl Report {
    /// Build a report from raw diagnostics: sorts them into the canonical
    /// `(file, line, rule)` order and aggregates the summary, so every
    /// construction path (CLI, tests) produces identical output for
    /// identical findings.
    pub fn from_violations(files_scanned: usize, mut violations: Vec<Diagnostic>) -> Report {
        violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        let errors = violations
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = violations.len() - errors;
        let mut summary = Summary::default();
        for d in &violations {
            *summary.by_rule.entry(d.rule.clone()).or_insert(0) += 1;
            *summary
                .by_severity
                .entry(d.severity.to_string())
                .or_insert(0) += 1;
        }
        Report {
            files_scanned,
            violations,
            errors,
            warnings,
            summary,
        }
    }

    /// Whether the run should exit non-zero.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.errors > 0 || (deny_warnings && self.warnings > 0)
    }
}

/// Analyze one file's source text.
///
/// `rel_path` is used for display and for crate classification, so
/// in-memory fixtures can exercise any scoping by choosing their path.
pub fn analyze_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let Some(class) = classify(rel_path) else {
        return Vec::new();
    };
    let ctx = FileContext {
        path: rel_path.to_string(),
        crate_name: class.crate_name,
        is_library: class.is_library,
    };
    let lexed = lexer::lex(src);
    let (tokens, removed_spans) = strip_test_ranges_spans(&lexed.tokens);
    // Markers inside stripped test ranges must not attach to the next
    // surviving fn — drop them before parsing.
    let live_markers: Vec<lexer::Marker> = lexed
        .markers
        .iter()
        .filter(|m| !in_spans(&removed_spans, m.line))
        .cloned()
        .collect();
    let tree = parser::parse(&tokens, &live_markers);
    let mut diags = Vec::new();
    rules::check_file(&ctx, &tokens, &tree, &mut diags);

    // Apply allow directives: a trailing comment (on a line that has code)
    // suppresses its own line; a standalone comment suppresses the next.
    // Track which directives fire so stale ones become findings.
    let code_lines: std::collections::BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut used = vec![false; lexed.allows.len()];
    diags.retain(|d| {
        let mut suppressed = false;
        for (i, a) in lexed.allows.iter().enumerate() {
            let covered = if code_lines.contains(&a.line) {
                a.line == d.line
            } else {
                a.line + 1 == d.line
            };
            if covered && a.rules.iter().any(|r| r == &d.rule) {
                used[i] = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    // A directive that suppressed nothing is stale. Directives covering
    // test-only code are exempt (the code they covered was stripped, so
    // "suppressed nothing" is expected, not stale), as are whole files
    // outside rule scope. The warning itself is deliberately not
    // allow-listable: silencing "this silencer is dead" with another
    // silencer would defeat the point.
    if ctx.is_library {
        for (i, a) in lexed.allows.iter().enumerate() {
            if used[i] {
                continue;
            }
            let covered_line = if code_lines.contains(&a.line) {
                a.line
            } else {
                a.line + 1
            };
            if in_spans(&removed_spans, a.line) || in_spans(&removed_spans, covered_line) {
                continue;
            }
            let unknown: Vec<&str> = a
                .rules
                .iter()
                .filter(|r| !rules::RULE_NAMES.contains(&r.as_str()))
                .map(String::as_str)
                .collect();
            let detail = if unknown.is_empty() {
                "it suppresses no diagnostic — remove it (or the fix regressed \
                 and the rule no longer fires here)"
                    .to_string()
            } else {
                format!(
                    "it names unknown rule(s) {unknown:?} and suppresses no \
                     diagnostic; check `--list-rules` for valid names"
                )
            };
            diags.push(ctx.diagnostic(
                rules::UNUSED_ALLOW_DIRECTIVE,
                Severity::Warning,
                a.line,
                format!("stale allow directive for {:?}: {detail}", a.rules),
            ));
        }
    }
    diags
}

/// True if `line` falls inside any of the (inclusive) line spans.
fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// How a path participates in analysis.
struct Classification {
    crate_name: String,
    is_library: bool,
}

/// Classify a workspace-relative path; `None` means "do not analyze"
/// (vendored stand-ins, generated dirs, test/bench/example trees).
fn classify(rel_path: &str) -> Option<Classification> {
    let norm = rel_path.replace('\\', "/");
    let parts: Vec<&str> = norm.split('/').collect();
    if parts
        .iter()
        .any(|p| matches!(*p, "target" | ".git" | "vendor"))
    {
        return None;
    }
    // Test/bench/example trees are exempt from every rule; skip them.
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
    {
        return None;
    }
    let crate_name = match parts.as_slice() {
        ["crates", name, "src", ..] => (*name).to_string(),
        ["src", ..] => "tbpoint".to_string(),
        _ => return None,
    };
    let is_library =
        crate_name == "tbpoint" || rules::LIBRARY_CRATES.contains(&crate_name.as_str());
    Some(Classification {
        crate_name,
        is_library,
    })
}

/// Remove token ranges belonging to test-only items: any item annotated
/// `#[cfg(test)]` or `#[test]` (attributes may stack).
pub fn strip_test_ranges(tokens: &[Tok]) -> Vec<Tok> {
    strip_test_ranges_spans(tokens).0
}

/// Like [`strip_test_ranges`], but also reports the inclusive line spans
/// of the removed items, so comment directives (allows, annotations)
/// inside test-only code can be exempted from staleness/attachment.
pub fn strip_test_ranges_spans(tokens: &[Tok]) -> (Vec<Tok>, Vec<(u32, u32)>) {
    let mut out = Vec::with_capacity(tokens.len());
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            // Consume this attribute, any further attributes, then the
            // whole annotated item.
            let start = i;
            i = skip_attr(tokens, i);
            while is_attr(tokens, i) {
                i = skip_attr(tokens, i);
            }
            i = skip_item(tokens, i);
            let last = i.saturating_sub(1).min(tokens.len().saturating_sub(1));
            spans.push((tokens[start].line, tokens[last].line));
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    (out, spans)
}

fn is_attr(tokens: &[Tok], i: usize) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct('#')))
        && matches!(
            tokens.get(i + 1).map(|t| &t.kind),
            Some(TokKind::Punct('['))
        )
}

/// `#[test]`, `#[cfg(test)]`, or any `#[cfg(...test...)]` combination
/// (e.g. `#[cfg(any(test, feature = "x"))]` errs on the side of "test").
fn is_test_attr(tokens: &[Tok], i: usize) -> bool {
    if !is_attr(tokens, i) {
        return false;
    }
    let mut depth = 0usize;
    let mut saw_cfg_or_test = false;
    let mut saw_test_ident = false;
    let mut j = i + 1;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident(s) => {
                if s == "test" {
                    saw_test_ident = true;
                }
                if s == "cfg" || s == "test" {
                    saw_cfg_or_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    saw_cfg_or_test && saw_test_ident
}

/// Skip a whole `#[...]` attribute; returns the index just past `]`.
fn skip_attr(tokens: &[Tok], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skip one item: ends at the first top-level `;` seen before any
/// top-level `{`, or at the matching `}` of the first top-level `{`.
fn skip_item(tokens: &[Tok], i: usize) -> usize {
    let mut j = i;
    let mut paren = 0i64;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct(';') if paren == 0 => return j + 1,
            TokKind::Punct('{') if paren == 0 => {
                // Skip to the matching close brace.
                let mut depth = 0i64;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return j + 1;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return j;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Recursively collect `.rs` files under `root`, sorted for deterministic
/// report order. Directories named `target`, `.git` or `vendor` are
/// pruned.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !matches!(name, "target" | ".git" | "vendor") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Analyze every `.rs` file under `root` (or only `paths`, when given).
pub fn run(root: &Path, paths: &[PathBuf]) -> std::io::Result<Report> {
    let files = if paths.is_empty() {
        collect_files(root)?
    } else {
        let mut files = Vec::new();
        for p in paths {
            let p = if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            };
            if p.is_dir() {
                files.extend(collect_files(&p)?);
            } else {
                files.push(p);
            }
        }
        files.sort();
        files
    };

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        scanned += 1;
        violations.extend(analyze_source(&rel, &src));
    }
    Ok(Report::from_violations(scanned, violations))
}

/// Render a report for terminals: one rustc-style block per violation.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.violations {
        out.push_str(&format!(
            "{}[{}]: {}\n  --> {}:{}\n",
            d.severity, d.rule, d.message, d.file, d.line
        ));
    }
    out.push_str(&format!(
        "{} file(s) scanned: {} error(s), {} warning(s)\n",
        report.files_scanned, report.errors, report.warnings
    ));
    for (rule, count) in &report.summary.by_rule {
        out.push_str(&format!("  {rule}: {count}\n"));
    }
    out
}

/// Render a report as pretty-printed JSON.
pub fn render_json(report: &Report) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_crates() {
        assert!(classify("crates/sim/src/sm.rs").is_some_and(|c| c.is_library));
        assert!(classify("crates/cli/src/main.rs").is_some_and(|c| !c.is_library));
        assert!(classify("src/lib.rs").is_some_and(|c| c.is_library));
        assert!(classify("vendor/serde/src/lib.rs").is_none());
        assert!(classify("crates/sim/tests/foo.rs").is_none());
        assert!(classify("crates/bench/benches/foo.rs").is_none());
        assert!(classify("tests/pipeline.rs").is_none());
    }

    #[test]
    fn test_modules_are_stripped() {
        let src = "
            fn lib_code() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
        ";
        let diags = analyze_source("crates/sim/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "
            fn f() {
                // tbpoint-lint: allow(no-panic-in-library)
                x.unwrap();
                y.unwrap(); // tbpoint-lint: allow(no-panic-in-library)
                z.unwrap();
            }
        ";
        let diags = analyze_source("crates/sim/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn allow_of_other_rule_does_not_suppress() {
        let src = "
            // tbpoint-lint: allow(no-lossy-cast)
            fn f() { x.unwrap(); }
        ";
        let diags = analyze_source("crates/sim/src/x.rs", src);
        // The unwrap error survives, and the no-op directive is itself
        // reported as stale.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == rules::NO_PANIC_IN_LIBRARY));
        assert!(diags
            .iter()
            .any(|d| d.rule == rules::UNUSED_ALLOW_DIRECTIVE && d.severity == Severity::Warning));
    }

    #[test]
    fn used_allow_is_not_stale() {
        let src = "
            fn f() {
                // tbpoint-lint: allow(no-panic-in-library)
                x.unwrap();
            }
        ";
        let diags = analyze_source("crates/sim/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_inside_test_code_is_exempt_from_staleness() {
        let src = "
            fn lib_code() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    // tbpoint-lint: allow(no-panic-in-library)
                    y.unwrap();
                }
            }
        ";
        let diags = analyze_source("crates/sim/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_rule_names_are_called_out() {
        let src = "
            // tbpoint-lint: allow(no-such-rule)
            fn f() {}
        ";
        let diags = analyze_source("crates/sim/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("no-such-rule"), "{diags:?}");
    }

    #[test]
    fn report_sorts_by_file_line_rule_and_summarizes() {
        let mk = |file: &str, line: u32, rule: &str, sev: Severity| Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            severity: sev,
            message: String::new(),
        };
        let report = Report::from_violations(
            3,
            vec![
                mk("b.rs", 1, "zz-rule", Severity::Warning),
                mk("a.rs", 9, "m-rule", Severity::Error),
                mk("a.rs", 9, "a-rule", Severity::Error),
                mk("a.rs", 2, "zz-rule", Severity::Error),
            ],
        );
        let order: Vec<(&str, u32, &str)> = report
            .violations
            .iter()
            .map(|d| (d.file.as_str(), d.line, d.rule.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, "zz-rule"),
                ("a.rs", 9, "a-rule"),
                ("a.rs", 9, "m-rule"),
                ("b.rs", 1, "zz-rule"),
            ]
        );
        assert_eq!(report.errors, 3);
        assert_eq!(report.warnings, 1);
        assert_eq!(report.summary.by_rule.get("zz-rule"), Some(&2));
        assert_eq!(report.summary.by_severity.get("error"), Some(&3));
        assert_eq!(report.summary.by_severity.get("warning"), Some(&1));
    }

    #[test]
    fn markers_in_test_code_do_not_leak_onto_library_fns() {
        // The hot annotation sits inside a stripped test module; the
        // allocation in `lib_code` must not be flagged.
        let src = "
            #[cfg(test)]
            mod tests {
                // tbpoint-hot
                fn helper() {}
            }
            fn lib_code() { let v = Vec::new(); v }
        ";
        let diags = analyze_source("crates/sim/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}

//! The pool's headline guarantee, tested end-to-end: every on-disk
//! artifact of a pooled sweep — unit files, the sealed manifest, the
//! final assembled JSON, and the recorder's trace JSONL — is
//! **byte-identical** at every `--pool-workers` value, with or without
//! an interrupt + `--resume` in between. Scheduling order is
//! timing-dependent; the bytes never are.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use tbpoint_cli::experiments::{EvalConfig, EvalUnit};
use tbpoint_cli::output::{self, TraceEntry};
use tbpoint_cli::sweep::{run_units, SweepPlan};
use tbpoint_core::predict::{run_tbpoint_traced_plan, TbpointConfig};
use tbpoint_emu::profile_run;
use tbpoint_pool::ExecPlan;
use tbpoint_sim::GpuConfig;
use tbpoint_workloads::{benchmark_by_name, Benchmark, Scale};

/// Fresh scratch directory per test leg (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tbpoint-poolid-{}-{}-{tag}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "_")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small real roster slice — big enough to be scheduled out of order,
/// small enough for a unit test.
fn roster() -> Vec<Benchmark> {
    ["bfs", "cfd", "spmv"]
        .iter()
        .map(|n| benchmark_by_name(n, Scale::Tiny).expect("roster name"))
        .collect()
}

/// Every file of a sweep directory, keyed by file name.
type DirBytes = BTreeMap<String, Vec<u8>>;

/// Every file under `dir`, keyed by file name, so whole-directory
/// byte-comparison is one map equality.
fn dir_bytes(dir: &Path) -> DirBytes {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read sweep dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).expect("read file"));
    }
    out
}

/// Run the real eval pipeline over the roster slice as a pooled sweep
/// and return (per-file bytes, final artifact bytes).
fn sweep_leg(
    dir: &Path,
    workers: usize,
    resume: bool,
    max_units: Option<usize>,
) -> Option<(DirBytes, Vec<u8>)> {
    let benches = roster();
    let cfg = EvalConfig::new(Scale::Tiny);
    let gpu = GpuConfig::fermi();
    let units: Vec<EvalUnit<'_>> = benches
        .iter()
        .map(|bench| EvalUnit {
            bench,
            cfg: &cfg,
            gpu: &gpu,
            plan: ExecPlan::serial(),
        })
        .collect();
    let plan = SweepPlan {
        name: "poolid".to_string(),
        dir: dir.to_path_buf(),
        resume,
        max_units,
        workers,
    };
    let outcome = run_units(&plan, &units).expect("sweep runs");
    if outcome.partial {
        return None;
    }
    let final_path = dir.join("final.json");
    output::write_json(&final_path, &outcome.into_complete()).expect("write final");
    let files = dir_bytes(dir);
    let final_bytes = std::fs::read(&final_path).expect("read final");
    Some((files, final_bytes))
}

#[test]
fn sweep_artifacts_are_byte_identical_at_every_worker_count() {
    let dir1 = scratch("w1");
    let (files1, final1) = sweep_leg(&dir1, 1, false, None).expect("complete");
    for workers in [2, 4] {
        let dir = scratch(&format!("w{workers}"));
        let (files, final_bytes) = sweep_leg(&dir, workers, false, None).expect("complete");
        assert_eq!(
            files1.keys().collect::<Vec<_>>(),
            files.keys().collect::<Vec<_>>(),
            "workers={workers}: same file set"
        );
        for (name, bytes) in &files1 {
            assert_eq!(
                bytes, &files[name],
                "workers={workers}: {name} must be byte-identical to serial"
            );
        }
        assert_eq!(
            final1, final_bytes,
            "workers={workers}: final artifact must be byte-identical to serial"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&dir1);
}

#[test]
fn interrupted_pooled_sweep_resumes_to_identical_bytes() {
    // Reference: uninterrupted, 2 workers.
    let dir_a = scratch("ref");
    let (files_a, final_a) = sweep_leg(&dir_a, 2, false, None).expect("complete");

    // Interrupted at 1 unit with concurrent writers, then resumed —
    // still 2 workers on the resume leg.
    let dir_b = scratch("resume");
    assert!(
        sweep_leg(&dir_b, 2, false, Some(1)).is_none(),
        "max_units leg must report partial"
    );
    let (files_b, final_b) = sweep_leg(&dir_b, 2, true, None).expect("resume completes");

    for (name, bytes) in &files_a {
        assert_eq!(
            bytes, &files_b[name],
            "{name} must be byte-identical after interrupt + resume"
        );
    }
    assert_eq!(final_a, final_b);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn recorder_trace_jsonl_is_byte_identical_at_every_worker_count() {
    let bench = benchmark_by_name("cfd", Scale::Tiny).expect("roster name");
    let profile = profile_run(&bench.run, 1);
    let gpu = GpuConfig::fermi();
    let cfg = TbpointConfig::default();

    let trace_bytes = |pool_workers: usize| {
        let plan = ExecPlan {
            sim_jobs: 1,
            pool_workers,
        };
        let (result, traces) =
            run_tbpoint_traced_plan(&bench.run, &profile, &cfg, &gpu, plan).expect("pipeline runs");
        let entries: Vec<TraceEntry> = traces
            .into_iter()
            .map(|t| TraceEntry {
                label: bench.name.to_string(),
                launch: t.launch,
                trace: t.trace,
            })
            .collect();
        let path = scratch(&format!("trace-w{pool_workers}")).join("trace.jsonl");
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        output::write_trace_jsonl(&path, &entries).expect("write traces");
        let bytes = std::fs::read(&path).expect("read traces");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
        (result, bytes)
    };

    let (result1, bytes1) = trace_bytes(1);
    for workers in [2, 4] {
        let (result, bytes) = trace_bytes(workers);
        assert_eq!(result1, result, "workers={workers}: result drifted");
        assert_eq!(
            bytes1, bytes,
            "workers={workers}: recorder JSONL must be byte-identical to serial"
        );
    }
}

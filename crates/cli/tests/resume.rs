//! Crash-safety contract of [`tbpoint_cli::sweep::run_units`]:
//! an interrupted-then-resumed sweep must produce final artifacts
//! byte-identical to an uninterrupted run, tampered unit files must be
//! detected and recomputed, and a failing unit must not destroy the
//! units that already finished.
//!
//! The [`SweepUnit`] here is a cheap deterministic stand-in (no
//! simulations) so the tests exercise only the persistence machinery.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use tbpoint_cli::output;
use tbpoint_cli::sweep::{run_units, SweepError, SweepPlan};
use tbpoint_core::TbError;
use tbpoint_pool::SweepUnit;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Unit {
    name: String,
    value: f64,
    series: Vec<f64>,
}

/// Deterministic per-unit payload with awkward floats, so byte-identity
/// actually exercises the shortest-round-trip printer.
fn compute(i: usize, key: &str) -> Result<Unit, TbError> {
    let value = (i as f64 + 1.0) / 3.0;
    Ok(Unit {
        name: key.to_string(),
        value,
        series: (0..4).map(|k| value * 0.1_f64.powi(k)).collect(),
    })
}

/// The test stand-in for a benchmark unit: deterministic output, an
/// optional shared call counter, and an optional induced failure.
struct TestUnit<'a> {
    index: usize,
    key: String,
    calls: Option<&'a AtomicUsize>,
    fail: bool,
}

impl SweepUnit for TestUnit<'_> {
    type Output = Unit;
    type Error = TbError;

    fn id(&self) -> String {
        self.key.clone()
    }

    fn run(&self) -> Result<Unit, TbError> {
        if let Some(calls) = self.calls {
            calls.fetch_add(1, Ordering::Relaxed);
        }
        if self.fail {
            return Err(TbError::BudgetExceeded {
                launch: 0,
                budget_cycles: 1,
            });
        }
        compute(self.index, &self.key)
    }
}

fn keys() -> Vec<String> {
    ["bfs", "cfd", "hotspot", "lud", "nw"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn units() -> Vec<TestUnit<'static>> {
    keys()
        .into_iter()
        .enumerate()
        .map(|(index, key)| TestUnit {
            index,
            key,
            calls: None,
            fail: false,
        })
        .collect()
}

fn plan(dir: &Path) -> SweepPlan {
    SweepPlan {
        name: "test_sweep".to_string(),
        dir: dir.to_path_buf(),
        resume: false,
        max_units: None,
        workers: 2,
    }
}

/// Fresh scratch directory per test (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tbpoint-resume-{}-{}-{tag}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "_")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn final_artifact(dir: &Path, units: &[Unit]) -> Vec<u8> {
    let path = dir.join("final.json");
    output::write_json(&path, &units.to_vec()).expect("write final artifact");
    std::fs::read(&path).expect("read final artifact back")
}

#[test]
fn interrupted_then_resumed_run_is_byte_identical() {
    // Leg A: uninterrupted.
    let dir_a = scratch("a");
    let full = run_units(&plan(&dir_a), &units()).expect("uninterrupted sweep");
    assert!(!full.partial);
    assert_eq!(full.computed, keys().len());
    let bytes_a = final_artifact(&dir_a, &full.into_complete());

    // Leg B: stop after 2 units (the deterministic stand-in for a
    // mid-sweep kill), then resume.
    let dir_b = scratch("b");
    let mut p = plan(&dir_b);
    p.max_units = Some(2);
    let partial = run_units(&p, &units()).expect("partial sweep");
    assert!(partial.partial);
    assert_eq!(partial.computed, 2);
    assert_eq!(partial.results.iter().flatten().count(), 2);

    let mut p = plan(&dir_b);
    p.resume = true;
    let resumed = run_units(&p, &units()).expect("resumed sweep");
    assert!(!resumed.partial);
    assert_eq!(resumed.resumed, 2, "both finished units must be reused");
    assert_eq!(resumed.computed, keys().len() - 2);
    let bytes_b = final_artifact(&dir_b, &resumed.into_complete());

    assert_eq!(
        bytes_a, bytes_b,
        "resumed final artifact must be byte-identical to the uninterrupted one"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn without_resume_everything_is_recomputed() {
    let dir = scratch("noresume");
    run_units(&plan(&dir), &units()).expect("first run");
    let again = run_units(&plan(&dir), &units()).expect("second run");
    assert_eq!(again.resumed, 0);
    assert_eq!(again.computed, keys().len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_unit_file_is_detected_and_recomputed() {
    let dir = scratch("tamper");
    let full = run_units(&plan(&dir), &units()).expect("first run");
    let expected = final_artifact(&dir, &full.into_complete());

    // Flip one byte inside a unit file; the manifest checksum no longer
    // matches, so --resume must recompute exactly that unit.
    let victim = dir.join("test_sweep.unit.cfd.json");
    let mut bytes = std::fs::read(&victim).expect("read unit file");
    let pos = bytes.len() / 2;
    bytes[pos] = bytes[pos].wrapping_add(1);
    std::fs::write(&victim, &bytes).expect("tamper with unit file");

    let calls = AtomicUsize::new(0);
    let counted: Vec<TestUnit<'_>> = units()
        .into_iter()
        .map(|u| TestUnit {
            calls: Some(&calls),
            ..u
        })
        .collect();
    let mut p = plan(&dir);
    p.resume = true;
    let resumed = run_units(&p, &counted).expect("resume over tampered state");
    assert_eq!(resumed.resumed, keys().len() - 1);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        1,
        "only the tampered unit recomputes"
    );
    let healed = final_artifact(&dir, &resumed.into_complete());
    assert_eq!(
        expected, healed,
        "recomputation heals the tampered unit exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_manifest_recomputes_but_still_converges() {
    let dir = scratch("manifest");
    let full = run_units(&plan(&dir), &units()).expect("first run");
    let expected = final_artifact(&dir, &full.into_complete());

    // Chop the manifest mid-record: its integrity trailer no longer
    // verifies, so resume falls back to recomputing everything — but
    // the final bytes still match.
    let manifest = dir.join("test_sweep.manifest.jsonl");
    let text = std::fs::read_to_string(&manifest).expect("read manifest");
    std::fs::write(&manifest, &text[..text.len() / 2]).expect("truncate manifest");

    let mut p = plan(&dir);
    p.resume = true;
    let resumed = run_units(&p, &units()).expect("resume over broken manifest");
    assert_eq!(resumed.resumed, 0, "a broken manifest trusts nothing");
    let healed = final_artifact(&dir, &resumed.into_complete());
    assert_eq!(expected, healed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_staging_files_are_swept_before_the_sweep() {
    // A crash between `write_atomic`'s create and rename leaves a
    // `.tmp` staging file in the unit directory; the next sweep must
    // remove it on startup (it is never valid input) while leaving
    // real unit files alone.
    let dir = scratch("tmpsweep");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stale = dir.join(".test_sweep.unit.bfs.json.tmp");
    std::fs::write(&stale, b"torn half-write").expect("plant stale tmp");
    let full = run_units(&plan(&dir), &units()).expect("sweep over stale tmp");
    assert!(!full.partial);
    assert_eq!(full.computed, keys().len());
    assert!(!stale.exists(), "stale staging file swept on startup");
    assert!(
        dir.join("test_sweep.unit.bfs.json").exists(),
        "real unit files are untouched"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failing_unit_keeps_completed_units_for_resume() {
    let dir = scratch("fail");

    // Serial so the failure point is deterministic: units 0 and 1
    // finish, unit 2 fails, 3 and 4 never run.
    let mut p = plan(&dir);
    p.workers = 1;
    let failing: Vec<TestUnit<'_>> = units()
        .into_iter()
        .map(|u| TestUnit {
            fail: u.index == 2,
            ..u
        })
        .collect();
    let err = run_units(&p, &failing).expect_err("unit 2 must fail the sweep");
    match err {
        SweepError::Pipeline { unit, .. } => assert_eq!(unit, "hotspot"),
        other => panic!("expected a pipeline error, got {other}"),
    }

    // A healthy re-run with --resume picks up the two survivors.
    let mut p = plan(&dir);
    p.resume = true;
    let resumed = run_units(&p, &units()).expect("resume after failure");
    assert_eq!(resumed.resumed, 2);
    assert_eq!(resumed.computed, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Plain-text table rendering and artefact persistence.

use std::io::Write as _;
use std::path::Path;

/// Render rows as an aligned plain-text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = w));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Write a CSV file (quotes are not needed for our numeric content).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Serialise any serde value as pretty JSON.
pub fn write_json<T: serde::Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, serde_json::to_string_pretty(value)?)
}

/// Format a float with the given number of decimals.
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.0265), "2.65%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_jagged_rows() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}

//! Plain-text table rendering and artefact persistence, including the
//! `--trace-out` JSON-lines sink and its on-screen summary.

use std::collections::BTreeMap;
use std::path::Path;
use tbpoint_obs::{EventKind, TraceBundle};

/// Render rows as an aligned plain-text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>w$}", w = w));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Write bytes crash-safely: create the parent, write a hidden
/// `.<name>.tmp` sibling, fsync it, atomically rename it over the
/// destination, then fsync the parent directory so the rename itself
/// is durable. A crash at any point leaves either the old file or the
/// new file — never a torn artifact (the invariant the `--resume`
/// machinery in [`crate::sweep`] depends on). The canonical
/// implementation lives in [`tbpoint_obs::write_atomic`] so the serve
/// cache and the sweep machinery share one crash-consistency story;
/// this re-export keeps the CLI's historical call sites working.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    tbpoint_obs::write_atomic(path, bytes)
}

/// Write a CSV file (quotes are not needed for our numeric content).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    write_atomic(path, out.as_bytes())
}

/// Serialise any serde value as pretty JSON (atomic tmp+rename write).
pub fn write_json<T: serde::Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    write_atomic(path, serde_json::to_string_pretty(value)?.as_bytes())
}

/// Format a float with the given number of decimals.
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// One labelled launch trace destined for `--trace-out`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Which experiment cell produced it (e.g. `"bfs"` or `"bfs@W16S14"`).
    pub label: String,
    /// Launch index within that benchmark's run.
    pub launch: usize,
    /// The recorded events, counters and gauges.
    pub trace: TraceBundle,
}

#[derive(serde::Serialize)]
struct TraceHeader {
    bench: String,
    launch: u64,
}

/// Write traces as deterministic JSON lines: each launch starts with a
/// `{"bench":...,"launch":...}` header line followed by its bundle
/// (events in cycle order, then counters, then gauges). The whole file
/// is sealed with the `tbpoint-obs` integrity trailer, so truncation or
/// bit damage in transit is detectable with [`tbpoint_obs::verify`],
/// and written atomically.
pub fn write_trace_jsonl(path: &Path, entries: &[TraceEntry]) -> std::io::Result<()> {
    let mut out = String::new();
    for e in entries {
        let header = TraceHeader {
            bench: e.label.clone(),
            launch: e.launch as u64,
        };
        out.push_str(&serde_json::to_string(&header)?);
        out.push('\n');
        out.push_str(&e.trace.to_jsonl());
    }
    write_atomic(path, tbpoint_obs::seal(&out).as_bytes())
}

/// Summarise traces on screen: total events by kind, then the top-N
/// memory-stall sites (per-SM MSHR stall cycles, heaviest first).
pub fn render_trace_summary(entries: &[TraceEntry], top_n: usize) -> String {
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    // (label, sm) -> (stall events, stall cycles)
    let mut stall_sites: BTreeMap<(String, u32), (u64, u64)> = BTreeMap::new();
    let mut total_events = 0u64;
    for e in entries {
        for ev in &e.trace.events {
            total_events += 1;
            *by_kind.entry(ev.kind.name()).or_insert(0) += 1;
            if let EventKind::MshrStall { sm, cycles } = ev.kind {
                let site = stall_sites.entry((e.label.clone(), sm)).or_insert((0, 0));
                site.0 += 1;
                site.1 += cycles;
            }
        }
    }

    let kind_rows: Vec<Vec<String>> = by_kind
        .iter()
        .map(|(k, n)| vec![(*k).to_string(), n.to_string()])
        .collect();
    let mut s = format!(
        "trace summary: {} launches, {} events\n",
        entries.len(),
        total_events
    );
    s.push_str(&render_table(&["event kind", "count"], &kind_rows));

    let mut sites: Vec<((String, u32), (u64, u64))> = stall_sites.into_iter().collect();
    // Heaviest stall cycles first; BTreeMap order breaks ties.
    sites.sort_by_key(|site| std::cmp::Reverse(site.1 .1));
    sites.truncate(top_n);
    if !sites.is_empty() {
        let rows: Vec<Vec<String>> = sites
            .into_iter()
            .map(|((label, sm), (n, cycles))| {
                vec![label, format!("SM{sm}"), n.to_string(), cycles.to_string()]
            })
            .collect();
        s.push_str(&format!("top {top_n} memory-stall sites:\n"));
        s.push_str(&render_table(
            &["bench", "sm", "stalls", "stall cycles"],
            &rows,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.0265), "2.65%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_jagged_rows() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}

//! `tbpoint` — regenerate any table or figure from the paper.
//!
//! ```text
//! tbpoint table1 [--scale dev]        Table I   simulation slowdown
//! tbpoint table6 [--scale full]       Table VI  benchmark roster
//! tbpoint fig5   [--samples 10000]    Fig. 5    Monte-Carlo IPC variation
//! tbpoint fig8   [--scale dev]        Fig. 8    TB-size scatter (CSV artefacts)
//! tbpoint eval   [--scale dev]        Figs. 9-11 (computes + caches)
//! tbpoint fig9 | fig10 | fig11        render from the cached eval
//! tbpoint fig12 | fig13 [--scale dev] hardware-sensitivity sweep
//! tbpoint ablate [--scale dev]        design-choice quality ablations
//! tbpoint inspect <bench>             characterisation report
//! tbpoint profile <bench>             save a one-time profile (JSON)
//! tbpoint faultmatrix [--scale tiny]  fault-injection containment matrix
//! tbpoint bench  [--quick]            perf baseline (BENCH_PR9.json)
//! tbpoint serve  [--cache-dir DIR]    long-running JSONL request service
//! tbpoint all    [--scale dev]        everything above
//! ```
//!
//! Parallelism is one [`ExecPlan`](tbpoint_pool::ExecPlan) with two
//! axes, resolved exactly once at startup (precedence: CLI flag >
//! environment variable > auto; adjustments are reported as structured
//! `ExecPlanAdjusted` events on stderr):
//!
//! * `--jobs N` / `TBPOINT_JOBS` — intra-launch: each launch's SMs are
//!   sharded across N threads with bit-identical results (DESIGN.md,
//!   "Deterministic parallel simulation");
//! * `--pool-workers N` / `TBPOINT_POOL_WORKERS` — cross-launch: whole
//!   launches and sweep units are scheduled on the deterministic job
//!   pool, with results merged in canonical order so every artifact is
//!   byte-identical to a serial run (DESIGN.md, "Two-axis parallelism").
//!
//! `--threads` remains the profiler's thread count (the functional
//! emulation is embarrassingly parallel and outside the plan).
//!
//! `--live` switches `eval`, `fig12`/`fig13` and `ablate` to **live
//! single-pass sampling** (`TbpointConfig::mode = Live`, DESIGN.md
//! "Live sampling"): the separate profiling pass is skipped and the
//! online epoch detector decides during the one timing pass when to
//! warm, fast-forward and fall back. Live artifacts cache under
//! distinct names (`eval_live_*.json`, `sensitivity_live_*.json`,
//! `ablate_live_*.json`) so the modes never overwrite each other.
//!
//! `bench` times profile + simulate for the whole roster and writes the
//! committed perf artifact (see EXPERIMENTS.md, "Performance baseline"):
//! the pinned `--scale dev` measurement plus a `tiny` quick section,
//! with a parallel leg per workload on each active axis (`--jobs > 1`,
//! `--pool-workers > 1`), and the host's CPU count for context.
//! Every workload is also timed through both sampling modes (two-phase
//! and live), with each mode's sampled-vs-full error recorded.
//! `--quick` runs only the tiny pass (min of 2 reps) and, with
//! `--check BENCH_PR9.json`, exits non-zero when throughput falls more
//! than 2x below the committed numbers **or** either sampling mode's
//! error breaches the 10% clean-baseline bound — CI's `perf-smoke`
//! job, which also `cmp`s `--counts-out` files from a `--jobs 1` and a
//! `--jobs 2` run byte-for-byte.
//! `--baseline <file>` seeds/replaces the frozen reference section;
//! without it, a regeneration carries the existing artifact's baseline
//! forward (seeding from `BENCH_PR7.json`, then `BENCH_PR5.json`, then
//! `BENCH_PR4.json`, if none exists).
//!
//! Artefacts (JSON + CSV) land in `./artifacts/`.
//!
//! `eval`, `fig8` and `fig12`/`fig13` (the sensitivity sweep) run as
//! **crash-safe resumable sweeps**: each benchmark's result is written
//! to its own atomically-renamed unit file under
//! `artifacts/units/` with a checksummed manifest. `--resume` skips
//! verified units from an interrupted run (the final artifacts are
//! byte-identical to an uninterrupted run); `--max-units K` stops after
//! K units and exits with code 3; `--cycle-budget N` arms a per-launch
//! watchdog that aborts runaway simulations with a `BudgetExceeded`
//! error while keeping finished units on disk.
//!
//! `eval`, `fig12`/`fig13` and `ablate` accept `--trace-out <path>`:
//! the simulated launches are then recorded through the observability
//! layer and written as deterministic, integrity-sealed JSON lines,
//! with a summary (events by kind, heaviest memory-stall sites) printed
//! after the figures. Tracing runs serially and never changes the
//! results.

use std::path::{Path, PathBuf};
use tbpoint_cli::experiments::{self, EvalConfig, EvalUnit, Fig8Unit, SensitivityUnit};
use tbpoint_cli::output;
use tbpoint_cli::sweep::{self, SweepOutcome, SweepPlan};
use tbpoint_pool::ExecPlan;
use tbpoint_workloads::Scale;

/// Exit code for a deliberately partial sweep (`--max-units`).
const EXIT_PARTIAL: i32 = 3;

struct Args {
    command: String,
    target: Option<String>,
    scale: Scale,
    samples: usize,
    threads: usize,
    artifacts: PathBuf,
    trace_out: Option<PathBuf>,
    resume: bool,
    max_units: Option<usize>,
    cycle_budget: Option<u64>,
    quick: bool,
    /// Live single-pass sampling (`TbpointConfig::mode = Live`): fuse
    /// profiling into the timing simulation for `eval`, `fig12`/`fig13`
    /// and `ablate`. Live artifacts cache under distinct names
    /// (`eval_live_*.json`, ...) so the modes never collide.
    live: bool,
    reps: u32,
    jobs: Option<usize>,
    pool_workers: Option<usize>,
    /// The resolved two-axis parallelism plan (CLI > env > auto),
    /// resolved exactly once in [`parse_args`].
    plan: ExecPlan,
    counts_out: Option<PathBuf>,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    baseline: Option<PathBuf>,
    /// `serve`: request file to process instead of streaming stdin.
    requests: Option<PathBuf>,
    /// `serve`: result-cache directory (omit to disable caching).
    cache_dir: Option<PathBuf>,
    /// `serve`: bounded-queue depth per batch window.
    max_pending: usize,
    /// `serve`: retry count override for transient unit failures.
    retries: Option<u32>,
}

/// Print an actionable error and exit non-zero. Every fallible I/O or
/// pipeline path in this binary funnels through here instead of
/// panicking.
fn die(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        target: None,
        scale: Scale::Dev,
        samples: 10_000,
        threads: experiments::default_threads(),
        artifacts: PathBuf::from("artifacts"),
        trace_out: None,
        resume: false,
        max_units: None,
        cycle_budget: None,
        quick: false,
        live: false,
        reps: 3,
        jobs: None,
        pool_workers: None,
        plan: ExecPlan::serial(),
        counts_out: None,
        out: None,
        check: None,
        baseline: None,
        requests: None,
        cache_dir: None,
        max_pending: 256,
        retries: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                args.scale = experiments::parse_scale(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?} (full|dev|tiny)");
                    std::process::exit(2);
                });
            }
            "--samples" => {
                args.samples = it.next().and_then(|v| v.parse().ok()).unwrap_or(10_000);
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.threads);
            }
            "--artifacts" => {
                args.artifacts = PathBuf::from(it.next().unwrap_or_default());
            }
            "--trace-out" => {
                let Some(v) = it.next() else {
                    eprintln!("--trace-out needs a path");
                    std::process::exit(2);
                };
                args.trace_out = Some(PathBuf::from(v));
            }
            "--resume" => args.resume = true,
            "--max-units" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--max-units needs a positive integer");
                    std::process::exit(2);
                };
                args.max_units = Some(n);
            }
            "--cycle-budget" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--cycle-budget needs a positive cycle count");
                    std::process::exit(2);
                };
                args.cycle_budget = Some(n);
            }
            "--quick" => args.quick = true,
            "--live" => args.live = true,
            "--counts-out" => {
                let Some(v) = it.next() else {
                    eprintln!("--counts-out needs a path");
                    std::process::exit(2);
                };
                args.counts_out = Some(PathBuf::from(v));
            }
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--jobs needs a job count");
                    std::process::exit(2);
                };
                args.jobs = Some(n);
            }
            "--pool-workers" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--pool-workers needs a worker count");
                    std::process::exit(2);
                };
                args.pool_workers = Some(n);
            }
            "--reps" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--reps needs a positive integer");
                    std::process::exit(2);
                };
                args.reps = n;
            }
            "--out" => {
                let Some(v) = it.next() else {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                };
                args.out = Some(PathBuf::from(v));
            }
            "--check" => {
                let Some(v) = it.next() else {
                    eprintln!("--check needs a path");
                    std::process::exit(2);
                };
                args.check = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let Some(v) = it.next() else {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                };
                args.baseline = Some(PathBuf::from(v));
            }
            "--requests" => {
                let Some(v) = it.next() else {
                    eprintln!("--requests needs a path");
                    std::process::exit(2);
                };
                args.requests = Some(PathBuf::from(v));
            }
            "--cache-dir" => {
                let Some(v) = it.next() else {
                    eprintln!("--cache-dir needs a path");
                    std::process::exit(2);
                };
                args.cache_dir = Some(PathBuf::from(v));
            }
            "--max-pending" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--max-pending needs a positive integer");
                    std::process::exit(2);
                };
                args.max_pending = n;
            }
            "--retries" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--retries needs a non-negative integer");
                    std::process::exit(2);
                };
                args.retries = Some(n);
            }
            cmd if args.command.is_empty() && !cmd.starts_with('-') => {
                args.command = cmd.to_string();
            }
            tgt if !tgt.starts_with('-') && args.target.is_none() => {
                args.target = Some(tgt.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    // Resolve the two-axis plan exactly once: CLI > environment > auto
    // (serial intra-launch, host CPUs cross-launch). Adjustments are
    // structured events, not free-form warnings.
    let (plan, notes) = tbpoint_pool::resolve_from_env(
        args.jobs,
        args.pool_workers,
        None,
        ExecPlan {
            sim_jobs: 1,
            pool_workers: experiments::default_threads(),
        },
    );
    for note in &notes {
        eprintln!("{}", tbpoint_obs::event_line(&note.event()));
    }
    args.plan = plan;
    args
}

fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Full => "full",
        Scale::Dev => "dev",
        Scale::Tiny => "tiny",
    }
}

/// The sampling mode the `--live` flag selects.
fn sampling_mode(args: &Args) -> tbpoint_core::SamplingMode {
    if args.live {
        tbpoint_core::SamplingMode::Live
    } else {
        tbpoint_core::SamplingMode::TwoPhase
    }
}

/// Artifact/sweep tag distinguishing live results from two-phase ones:
/// the two modes produce different numbers, so their caches and unit
/// files must never collide.
fn mode_tag(args: &Args) -> &'static str {
    if args.live {
        "live_"
    } else {
        ""
    }
}

fn eval_cache_path(args: &Args) -> PathBuf {
    args.artifacts.join(format!(
        "eval_{}{}.json",
        mode_tag(args),
        scale_tag(args.scale)
    ))
}

fn dump_traces(path: &Path, entries: &[output::TraceEntry]) {
    if let Err(e) = output::write_trace_jsonl(path, entries) {
        die(&format!("writing trace file {}", path.display()), e);
    }
    eprintln!(
        "wrote {} launch traces to {}",
        entries.len(),
        path.display()
    );
    println!("{}", output::render_trace_summary(entries, 10));
}

fn write_json_or_die(path: &Path, value: &impl serde::Serialize) {
    if let Err(e) = output::write_json(path, value) {
        die(&format!("writing artefact {}", path.display()), e);
    }
}

/// Build the sweep plan shared by every resumable command: unit files
/// and the manifest live under `<artifacts>/units/`.
fn sweep_plan(args: &Args, name: String) -> SweepPlan {
    SweepPlan {
        name,
        dir: args.artifacts.join("units"),
        resume: args.resume,
        max_units: args.max_units,
        workers: args.plan.pool_workers,
    }
}

/// Unwrap a sweep outcome, handling the two non-success shapes: a
/// failed unit (exit 1 with an actionable message) and a deliberately
/// partial sweep (`--max-units`; progress is reported and the process
/// exits with [`EXIT_PARTIAL`] so scripts can tell "stopped early" from
/// "failed").
fn finish_sweep<T>(result: Result<SweepOutcome<T>, sweep::SweepError>, what: &str) -> Vec<T> {
    let outcome = match result {
        Ok(o) => o,
        Err(e) => die(&format!("{what} sweep failed"), e),
    };
    eprintln!(
        "{what}: {} unit(s) computed, {} resumed from disk",
        outcome.computed, outcome.resumed
    );
    if outcome.partial {
        eprintln!(
            "{what}: stopped after --max-units; re-run with --resume to finish \
             (completed units are kept)"
        );
        std::process::exit(EXIT_PARTIAL);
    }
    outcome.into_complete()
}

fn eval_config(args: &Args) -> EvalConfig {
    let mut cfg = EvalConfig::new(args.scale);
    cfg.tbpoint.cycle_budget = args.cycle_budget;
    cfg.tbpoint.mode = sampling_mode(args);
    cfg
}

fn run_eval(args: &Args) -> experiments::EvalResult {
    let cfg = eval_config(args);
    eprintln!(
        "running {} evaluation at {} scale on {} pool worker(s), {} sim job(s) \
         (this simulates every benchmark in full)...",
        if args.live {
            "live single-pass"
        } else {
            "two-phase"
        },
        scale_tag(args.scale),
        args.plan.pool_workers,
        args.plan.sim_jobs
    );
    let r = if let Some(trace_path) = &args.trace_out {
        // Tracing runs benchmarks serially and in one piece; it does
        // not use the resumable sweep.
        match experiments::eval_traced(&cfg, args.plan) {
            Ok((r, traces)) => {
                dump_traces(trace_path, &traces);
                r
            }
            Err(e) => die("traced evaluation failed", e),
        }
    } else {
        let benches = tbpoint_workloads::all_benchmarks(args.scale);
        let gpu = tbpoint_sim::GpuConfig::fermi();
        // The sweep scheduler spends the pool budget; each unit runs
        // with the unit-level plan.
        let unit_plan = args.plan.unit();
        let units: Vec<EvalUnit<'_>> = benches
            .iter()
            .map(|bench| EvalUnit {
                bench,
                cfg: &cfg,
                gpu: &gpu,
                plan: unit_plan,
            })
            .collect();
        let plan = sweep_plan(
            args,
            format!("eval_{}{}", mode_tag(args), scale_tag(args.scale)),
        );
        let outcome = sweep::run_units(&plan, &units);
        experiments::EvalResult {
            config: cfg,
            benches: finish_sweep(outcome, "eval"),
        }
    };
    write_json_or_die(&eval_cache_path(args), &r);
    r
}

fn load_or_run_eval(args: &Args) -> experiments::EvalResult {
    let path = eval_cache_path(args);
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(r) = serde_json::from_str(&text) {
            eprintln!("using cached evaluation {}", path.display());
            return r;
        }
    }
    run_eval(args)
}

fn cmd_fig5(args: &Args) {
    let r = experiments::fig5(args.samples, args.threads);
    write_json_or_die(&args.artifacts.join("fig5.json"), &r);
    println!(
        "Fig. 5 — IPC variation of a homogeneous interval ({} samples)",
        args.samples
    );
    println!("{}", r.render());
}

fn cmd_fig8(args: &Args) {
    let benches = tbpoint_workloads::all_benchmarks(args.scale);
    // Profiling inside a unit runs single-threaded; the sweep itself
    // fans units out over `--pool-workers` pool workers.
    let units: Vec<Fig8Unit<'_>> = benches
        .iter()
        .map(|bench| Fig8Unit { bench, threads: 1 })
        .collect();
    let plan = sweep_plan(args, format!("fig8_{}", scale_tag(args.scale)));
    let outcome = sweep::run_units(&plan, &units);
    let r = experiments::Fig8Result {
        series: finish_sweep(outcome, "fig8"),
    };
    write_json_or_die(
        &args
            .artifacts
            .join(format!("fig8_{}.json", scale_tag(args.scale))),
        &r,
    );
    for s in &r.series {
        let rows: Vec<Vec<String>> = s
            .size_ratio
            .iter()
            .enumerate()
            .map(|(i, v)| vec![i.to_string(), output::fmt(*v, 4)])
            .collect();
        let csv_path =
            args.artifacts
                .join(format!("fig8_{}_{}.csv", scale_tag(args.scale), s.name));
        if let Err(e) = output::write_csv(&csv_path, &["tb_index", "size_ratio"], &rows) {
            die(&format!("writing artefact {}", csv_path.display()), e);
        }
    }
    println!("Fig. 8 — thread-block size ratios (scatter data in artifacts/fig8_*.csv)");
    println!("{}", r.render());
}

fn cmd_sensitivity(args: &Args, which: &str) {
    let path = args.artifacts.join(format!(
        "sensitivity_{}{}.json",
        mode_tag(args),
        scale_tag(args.scale)
    ));
    // Tracing needs the simulations to actually run, so it bypasses the
    // cached sweep.
    let cached: Option<experiments::SensitivityResult> = if args.trace_out.is_some() {
        None
    } else {
        std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| serde_json::from_str(&t).ok())
    };
    let r: experiments::SensitivityResult = match cached {
        Some(r) => {
            eprintln!("using cached sweep {}", path.display());
            r
        }
        None if args.trace_out.is_some() => {
            let tb_cfg = tbpoint_core::predict::TbpointConfig {
                cycle_budget: args.cycle_budget,
                mode: sampling_mode(args),
                ..Default::default()
            };
            match experiments::sensitivity_traced(args.scale, args.threads, &tb_cfg, args.plan) {
                Ok((r, traces)) => {
                    if let Some(trace_path) = &args.trace_out {
                        dump_traces(trace_path, &traces);
                    }
                    write_json_or_die(&path, &r);
                    r
                }
                Err(e) => die("traced sensitivity sweep failed", e),
            }
        }
        None => {
            eprintln!("running hardware-sensitivity sweep (6 configs x 12 benchmarks)...");
            let benches = tbpoint_workloads::all_benchmarks(args.scale);
            let tb_cfg = tbpoint_core::predict::TbpointConfig {
                cycle_budget: args.cycle_budget,
                mode: sampling_mode(args),
                ..Default::default()
            };
            let unit_plan = args.plan.unit();
            let units: Vec<SensitivityUnit<'_>> = benches
                .iter()
                .map(|bench| SensitivityUnit {
                    bench,
                    tb_cfg: &tb_cfg,
                    plan: unit_plan,
                })
                .collect();
            let plan = sweep_plan(
                args,
                format!("sensitivity_{}{}", mode_tag(args), scale_tag(args.scale)),
            );
            let outcome = sweep::run_units(&plan, &units);
            let rows = finish_sweep(outcome, "sensitivity");
            let r = experiments::SensitivityResult {
                cells: rows.into_iter().flatten().collect(),
            };
            write_json_or_die(&path, &r);
            r
        }
    };
    if which == "fig12" {
        println!("Fig. 12 — TBPoint sampling error across hardware configurations");
        println!("{}", experiments::render_fig12(&r));
    } else {
        println!("Fig. 13 — TBPoint total sample size across hardware configurations");
        println!("{}", experiments::render_fig13(&r));
    }
}

/// `tbpoint bench`: measure the roster, write/refresh the committed perf
/// artifact, or (with `--quick [--check]`) run CI's regression smoke.
fn cmd_bench(args: &Args) {
    use tbpoint_cli::bench;
    let progress = |line: &str| eprintln!("{line}");
    let plan = args.plan;

    if args.quick {
        // Two reps, minimum kept: one rep is cheap but lets a single
        // scheduling hiccup on a shared CI runner read as a 2x
        // throughput regression.
        eprintln!(
            "quick bench: tiny scale, min of 2 reps, jobs={}, pool-workers={}",
            plan.sim_jobs, plan.pool_workers
        );
        let current = bench::measure(Scale::Tiny, 2, plan, progress);
        let t = bench::totals(&current);
        println!(
            "quick bench: {:.1} ms eval total, {:.2} M warp-insts/s simulate",
            t.eval_ms,
            t.warp_insts_per_sec / 1e6
        );
        if let Some(path) = &args.counts_out {
            // Stable per-workload work counts; CI `cmp`s the files from
            // a --jobs 1 and a --jobs 2 run byte-for-byte.
            std::fs::write(path, bench::render_counts(&current))
                .unwrap_or_else(|e| die(&format!("writing {}", path.display()), e));
            eprintln!("wrote {}", path.display());
        }
        if let Some(path) = &args.check {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| die(&format!("reading artifact {}", path.display()), e));
            let committed = bench::parse_report(&bytes)
                .unwrap_or_else(|e| die(&format!("artifact {}", path.display()), e));
            let failures = bench::check_regressions(&current, &committed);
            if failures.is_empty() {
                println!(
                    "perf-smoke OK: all {} workloads within {}x of {}",
                    current.len(),
                    bench::REGRESSION_FACTOR,
                    path.display()
                );
            } else {
                for f in &failures {
                    eprintln!("perf-smoke FAIL: {f}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(bench::DEFAULT_ARTIFACT));
    // The frozen reference: an explicit --baseline file wins; then the
    // existing artifact's baseline section carries forward; then the
    // previous PRs' committed artifacts (BENCH_PR7.json, falling back
    // to BENCH_PR5.json, then BENCH_PR4.json) seed it.
    let baseline = if let Some(bp) = &args.baseline {
        let bytes = std::fs::read(bp)
            .unwrap_or_else(|e| die(&format!("reading baseline {}", bp.display()), e));
        let section: bench::BaselineSection = serde_json::from_slice(&bytes)
            .unwrap_or_else(|e| die(&format!("parsing baseline {}", bp.display()), e));
        Some(section)
    } else {
        std::fs::read(&out_path)
            .ok()
            .and_then(|bytes| bench::parse_report(&bytes).ok())
            .and_then(|r| r.baseline)
            .or_else(|| {
                let v3 = std::fs::read(bench::V3_ARTIFACT).ok()?;
                match bench::baseline_from_v3(&v3) {
                    Ok(section) => {
                        eprintln!("baseline: seeded from {}", bench::V3_ARTIFACT);
                        Some(section)
                    }
                    Err(e) => {
                        eprintln!("warning: ignoring {}: {e}", bench::V3_ARTIFACT);
                        None
                    }
                }
            })
            .or_else(|| {
                let v2 = std::fs::read(bench::V2_ARTIFACT).ok()?;
                match bench::baseline_from_v2(&v2) {
                    Ok(section) => {
                        eprintln!("baseline: seeded from {}", bench::V2_ARTIFACT);
                        Some(section)
                    }
                    Err(e) => {
                        eprintln!("warning: ignoring {}: {e}", bench::V2_ARTIFACT);
                        None
                    }
                }
            })
            .or_else(|| {
                let v1 = std::fs::read(bench::V1_ARTIFACT).ok()?;
                match bench::baseline_from_v1(&v1) {
                    Ok(section) => {
                        eprintln!("baseline: seeded from {}", bench::V1_ARTIFACT);
                        Some(section)
                    }
                    Err(e) => {
                        eprintln!("warning: ignoring {}: {e}", bench::V1_ARTIFACT);
                        None
                    }
                }
            })
    };

    eprintln!(
        "bench: {} scale, best of {} reps, jobs={}, pool-workers={} \
         (pinned protocol; see EXPERIMENTS.md)",
        scale_tag(args.scale),
        args.reps,
        plan.sim_jobs,
        plan.pool_workers
    );
    let workloads = bench::measure(args.scale, args.reps, plan, progress);
    eprintln!("bench: quick section (tiny scale, min of 2 reps)");
    let quick = bench::measure(Scale::Tiny, 2, plan, progress);
    let report = bench::BenchReport {
        schema: bench::SCHEMA.to_string(),
        build: bench::build_label(),
        host_cpus: bench::host_cpus(),
        scale: scale_tag(args.scale).to_string(),
        reps: args.reps,
        totals: bench::totals(&workloads),
        workloads,
        quick_scale: "tiny".to_string(),
        quick,
        baseline,
    };
    write_json_or_die(&out_path, &report);
    println!("{}", bench::render_summary(&report));
    eprintln!("wrote {}", out_path.display());
}

/// `tbpoint serve`: the long-running JSONL request service (see
/// DESIGN.md, "Serve: supervision, deadlines, and the self-healing
/// cache").
///
/// Requests arrive one JSON object per line, in blank-line-delimited
/// batch windows; each gets exactly one JSON response line, in arrival
/// order, byte-identical at every `--pool-workers` count. With
/// `--requests FILE` the file is processed in one pass and the
/// responses are written to `--out` via the crash-safe atomic writer
/// (a kill -9 mid-run leaves the previous output intact, never a torn
/// file) or to stdout; without it the service streams stdin → stdout
/// until EOF or a `shutdown` request drains. A final counters line on
/// stderr reports the admission/retry/deadline/cache traffic — the CI
/// drill greps it to prove cache reuse across a restart.
fn cmd_serve(args: &Args) {
    use tbpoint_serve::{RetryPolicy, ServeOptions, Service};
    let retry = RetryPolicy {
        max_retries: args.retries.unwrap_or(RetryPolicy::default().max_retries),
        ..RetryPolicy::default()
    };
    let opts = ServeOptions {
        plan: args.plan,
        max_pending: args.max_pending,
        retry,
        cache_dir: args.cache_dir.clone(),
        ..ServeOptions::default()
    };
    let mut svc = Service::new(opts).unwrap_or_else(|e| die("opening the serve result cache", e));
    let rec = tbpoint_obs::NullRecorder;

    if let Some(reqs) = &args.requests {
        let text = std::fs::read_to_string(reqs)
            .unwrap_or_else(|e| die(&format!("reading requests {}", reqs.display()), e));
        let responses = tbpoint_serve::process_text(&mut svc, &text, &rec);
        match &args.out {
            Some(path) => {
                if let Err(e) = output::write_atomic(path, responses.as_bytes()) {
                    die(&format!("writing responses {}", path.display()), e);
                }
                eprintln!("wrote {}", path.display());
            }
            None => print!("{responses}"),
        }
    } else {
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout();
        if let Err(e) = tbpoint_serve::run_loop(&mut svc, stdin.lock(), &mut stdout, &rec) {
            die("serve request loop", e);
        }
    }

    let c = svc.counters();
    eprintln!(
        "serve: admitted={} rejected={} retried={} deadline_exceeded={} \
         cache_hits={} cache_quarantined={} cache_stores={} completed_ok={} failed={}",
        c.admitted,
        c.rejected,
        c.retried,
        c.deadline_exceeded,
        c.cache_hits,
        c.cache_quarantined,
        c.cache_stores,
        c.completed_ok,
        c.failed
    );
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "table1" => {
            let r = experiments::table1(args.scale);
            write_json_or_die(
                &args
                    .artifacts
                    .join(format!("table1_{}.json", scale_tag(args.scale))),
                &r,
            );
            println!(
                "Table I — GPU time vs simulation time ({} scale)",
                scale_tag(args.scale)
            );
            println!("{}", r.render());
        }
        "table6" => {
            println!(
                "Table VI — evaluated benchmarks ({} scale)",
                scale_tag(args.scale)
            );
            println!("{}", experiments::table6(args.scale));
        }
        "fig5" => cmd_fig5(&args),
        "fig8" => cmd_fig8(&args),
        "eval" => {
            let r = run_eval(&args);
            println!("{}", experiments::render_fig9(&r));
            println!("{}", experiments::render_fig10(&r));
            println!("{}", experiments::render_fig11(&r));
        }
        "fig9" => {
            let r = load_or_run_eval(&args);
            println!("Fig. 9 — overall IPC and sampling errors");
            println!("{}", experiments::render_fig9(&r));
        }
        "fig10" => {
            let r = load_or_run_eval(&args);
            println!("Fig. 10 — total sample size");
            println!("{}", experiments::render_fig10(&r));
        }
        "fig11" => {
            let r = load_or_run_eval(&args);
            println!("Fig. 11 — skipped-instruction breakdown");
            println!("{}", experiments::render_fig11(&r));
        }
        "fig12" | "fig13" => cmd_sensitivity(&args, &args.command),
        "profile" => {
            let Some(name) = args.target.as_deref() else {
                eprintln!("usage: tbpoint profile <bench> [--scale ...]");
                std::process::exit(2);
            };
            let Some(bench) = tbpoint_workloads::benchmark_by_name(name, args.scale) else {
                eprintln!("unknown benchmark {name:?}; see `tbpoint table6`");
                std::process::exit(2);
            };
            let t0 = std::time::Instant::now();
            let profile = tbpoint_emu::profile_run(&bench.run, args.threads);
            let path =
                args.artifacts
                    .join(format!("profile_{}_{}.json", scale_tag(args.scale), name));
            write_json_or_die(&path, &profile);
            println!(
                "profiled {name}: {} launches, {} thread blocks, {} warp insts in {:?}",
                profile.launches.len(),
                bench.run.total_blocks(),
                profile.total_warp_insts(),
                t0.elapsed()
            );
            println!("saved hardware-independent profile to {}", path.display());
            println!("(reusable for any simulated configuration — Table II's one-time profiling)");
        }
        "inspect" => {
            let Some(name) = args.target.as_deref() else {
                eprintln!("usage: tbpoint inspect <bench> [--scale ...]");
                std::process::exit(2);
            };
            match experiments::inspect(name, args.scale, args.threads) {
                Some(report) => println!("{report}"),
                None => {
                    eprintln!("unknown benchmark {name:?}; see `tbpoint table6`");
                    std::process::exit(2);
                }
            }
        }
        "ablate" => {
            eprintln!(
                "running design-choice ablations at {} scale...",
                scale_tag(args.scale)
            );
            let r = if let Some(trace_path) = &args.trace_out {
                let (r, traces) =
                    experiments::ablate_traced(args.scale, args.plan, sampling_mode(&args));
                dump_traces(trace_path, &traces);
                r
            } else {
                experiments::ablate(args.scale, args.plan, sampling_mode(&args))
            };
            write_json_or_die(
                &args.artifacts.join(format!(
                    "ablate_{}{}.json",
                    mode_tag(&args),
                    scale_tag(args.scale)
                )),
                &r,
            );
            println!(
                "Design-choice ablations ({} scale; * marks the paper's value)",
                scale_tag(args.scale)
            );
            println!("{}", r.render());
        }
        "faultmatrix" => {
            // Containment audit: inject every fault kind at several
            // seeds into every roster benchmark (or just `<bench>` if
            // given) and check the pipeline never panics and never
            // silently accepts corrupt input.
            let benches = tbpoint_workloads::all_benchmarks(args.scale);
            let runs: Vec<(String, tbpoint_ir::KernelRun)> = benches
                .into_iter()
                .filter(|b| args.target.as_deref().is_none_or(|t| t == b.name))
                .map(|b| (b.name.to_string(), b.run))
                .collect();
            if runs.is_empty() {
                eprintln!(
                    "unknown benchmark {:?}; see `tbpoint table6`",
                    args.target.as_deref().unwrap_or("")
                );
                std::process::exit(2);
            }
            let opts = tbpoint_resilience::MatrixOptions::default();
            eprintln!(
                "injecting {} fault kinds x {} seeds into {} benchmark(s)...",
                opts.faults.len(),
                opts.seeds.len(),
                runs.len()
            );
            let report = tbpoint_resilience::run_fault_matrix(&runs, &opts);
            write_json_or_die(
                &args
                    .artifacts
                    .join(format!("faultmatrix_{}.json", scale_tag(args.scale))),
                &report,
            );
            println!(
                "Fault-injection containment matrix ({} cells)",
                report.cells.len()
            );
            println!("{}", report.summary());
            if !report.all_contained() {
                eprintln!(
                    "error: containment violated — {} panic(s), {} silently-accepted corruption(s)",
                    report.panics(),
                    report.silently_accepted()
                );
                std::process::exit(1);
            }
            println!("all faults contained: no panics, no silently accepted corruption");
        }
        "bench" => cmd_bench(&args),
        "serve" => cmd_serve(&args),
        "all" => {
            println!("Table VI\n{}", experiments::table6(args.scale));
            cmd_fig5(&args);
            cmd_fig8(&args);
            let r = run_eval(&args);
            println!("Fig. 9\n{}", experiments::render_fig9(&r));
            println!("Fig. 10\n{}", experiments::render_fig10(&r));
            println!("Fig. 11\n{}", experiments::render_fig11(&r));
            cmd_sensitivity(&args, "fig12");
            cmd_sensitivity(&args, "fig13");
            let t1 = experiments::table1(args.scale);
            println!("Table I\n{}", t1.render());
        }
        "" => {
            eprintln!(
                "usage: tbpoint <table1|table6|fig5|fig8|eval|fig9|fig10|fig11|fig12|fig13|ablate|inspect <bench>|profile <bench>|faultmatrix [bench]|bench|serve|all> \
                 [--scale full|dev|tiny] [--samples N] [--threads N] [--artifacts DIR] [--trace-out FILE] \
                 [--resume] [--max-units K] [--cycle-budget N] [--jobs N] [--pool-workers N] \
                 [--live] [--quick] [--reps N] [--out FILE] [--check FILE] [--baseline FILE] [--counts-out FILE] \
                 [--requests FILE] [--cache-dir DIR] [--max-pending N] [--retries N]"
            );
            std::process::exit(2);
        }
        other => {
            eprintln!("unknown command {other:?}");
            std::process::exit(2);
        }
    }
}

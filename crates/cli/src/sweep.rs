//! Crash-safe, resumable sweep execution on the deterministic job pool.
//!
//! A *sweep* is a list of independent [`SweepUnit`]s (one benchmark, or
//! one benchmark's whole hardware grid). [`run_units`] schedules them
//! across `tbpoint-pool` workers and persists each finished unit
//! immediately:
//!
//! * every unit result is written to its own JSON file via
//!   [`crate::output::write_atomic`] (tmp + fsync + rename), so a crash
//!   leaves each unit either complete or absent — never torn;
//! * after each unit, a *manifest* (JSONL sealed with the `tbpoint-obs`
//!   integrity trailer) is atomically rewritten, recording every
//!   completed unit's file name and FNV-1a-64 checksum;
//! * `--resume` re-reads the manifest, verifies its trailer and each
//!   unit file's checksum, skips verified units and recomputes the
//!   rest. A unit file that was tampered with, torn, or orphaned by a
//!   crash between its rename and the manifest update is simply
//!   recomputed — [`SweepUnit::run`] is deterministic, so the bytes
//!   come out the same;
//! * the final result is assembled by **re-reading every unit file from
//!   disk**, which is why an interrupted-then-resumed sweep produces
//!   final artifacts byte-identical to an uninterrupted one (the
//!   vendored `serde_json` prints floats shortest-round-trip and keeps
//!   field order, so parse -> serialize is the identity on our files);
//! * `--max-units K` stops after K units, reporting a partial sweep
//!   (the CLI exits with code 3) — the deterministic stand-in for
//!   killing the process mid-sweep.
//!
//! Persistence and scheduling are deliberately orthogonal: the pool
//! decides *when* a unit runs (timing-dependent), the manifest records
//! *what* completed (canonical key order), and the final assembly reads
//! units back in key order — so unit files, manifest, and final
//! artifact are all byte-identical at every `--pool-workers` value,
//! with or without an interrupt + `--resume` in between.

use crate::output;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use tbpoint_core::TbError;
use tbpoint_obs::{fnv1a64, seal, verify};
use tbpoint_pool::{run_indexed, SweepUnit};

/// How a sweep failed.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem trouble, with the path involved.
    Io(PathBuf, std::io::Error),
    /// The pipeline rejected one unit (e.g. a `--cycle-budget`
    /// overrun). Completed unit files are preserved for `--resume`.
    Pipeline {
        /// The unit that failed.
        unit: String,
        /// Why.
        err: TbError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            SweepError::Pipeline { unit, err } => {
                write!(
                    f,
                    "unit {unit:?} failed: {err} (completed units are kept; \
                     fix the config and re-run with --resume)"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Sweep identity and resumption policy.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Sweep name; prefixes every unit file and the manifest
    /// (e.g. `"eval_tiny"`).
    pub name: String,
    /// Directory holding unit files and the manifest.
    pub dir: PathBuf,
    /// Reuse verified units from a previous (interrupted) run.
    pub resume: bool,
    /// Stop after computing this many units (partial sweep).
    pub max_units: Option<usize>,
    /// Pool workers for independent units (`ExecPlan::pool_workers`).
    pub workers: usize,
}

/// What [`run_units`] did.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// Per-unit results in key order; `None` for units not yet computed
    /// (only when `partial`).
    pub results: Vec<Option<T>>,
    /// Units computed in this invocation.
    pub computed: usize,
    /// Units skipped because a previous run's verified file covered
    /// them.
    pub resumed: usize,
    /// True when `max_units` stopped the sweep early.
    pub partial: bool,
}

impl<T> SweepOutcome<T> {
    /// The complete result list; call only when `!partial`.
    ///
    /// # Panics
    ///
    /// If the sweep was partial (a caller bug — the CLI exits with
    /// code 3 before reaching this).
    pub fn into_complete(self) -> Vec<T> {
        self.results
            .into_iter()
            .map(|r| match r {
                Some(t) => t,
                None => panic!("sweep incomplete"),
            })
            .collect()
    }
}

/// One manifest line.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    sweep: String,
    unit: String,
    file: String,
    fnv64: String,
}

fn manifest_path(plan: &SweepPlan) -> PathBuf {
    plan.dir.join(format!("{}.manifest.jsonl", plan.name))
}

fn unit_path(plan: &SweepPlan, key: &str) -> PathBuf {
    // Keys are bench names / bench@config labels; keep anything else
    // filesystem-safe.
    let safe: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    plan.dir.join(format!("{}.unit.{safe}.json", plan.name))
}

fn io_err(path: &Path, e: std::io::Error) -> SweepError {
    SweepError::Io(path.to_path_buf(), e)
}

/// Atomically rewrite the manifest from the completed-unit map (sorted
/// by key index, so the final manifest is deterministic no matter in
/// which order pool workers finished).
fn write_manifest(
    plan: &SweepPlan,
    keys: &[String],
    done: &BTreeMap<usize, String>,
) -> Result<(), SweepError> {
    let mut body = String::new();
    for (&i, fnv) in done {
        let entry = ManifestEntry {
            sweep: plan.name.clone(),
            unit: keys[i].clone(),
            file: unit_path(plan, &keys[i])
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            fnv64: fnv.clone(),
        };
        match serde_json::to_string(&entry) {
            Ok(line) => {
                body.push_str(&line);
                body.push('\n');
            }
            Err(e) => return Err(io_err(&manifest_path(plan), std::io::Error::other(e))),
        }
    }
    let path = manifest_path(plan);
    output::write_atomic(&path, seal(&body).as_bytes()).map_err(|e| io_err(&path, e))
}

/// Load the previous manifest and return, per key index, the checksum
/// of a unit file that exists and verifies. Errors in the manifest or
/// a unit file are not fatal: the unit is just recomputed.
fn load_verified_units(plan: &SweepPlan, keys: &[String]) -> BTreeMap<usize, String> {
    let mut verified = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(manifest_path(plan)) else {
        return verified;
    };
    let Ok(body) = verify(&text) else {
        eprintln!(
            "warning: manifest {} failed its integrity check; recomputing every unit",
            manifest_path(plan).display()
        );
        return verified;
    };
    let entries: Vec<ManifestEntry> = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str(l).ok())
        .collect();
    for entry in entries {
        if entry.sweep != plan.name {
            continue;
        }
        let Some(i) = keys.iter().position(|k| *k == entry.unit) else {
            continue;
        };
        let path = unit_path(plan, &keys[i]);
        match std::fs::read(&path) {
            Ok(bytes) if format!("{:016x}", fnv1a64(&bytes)) == entry.fnv64 => {
                verified.insert(i, entry.fnv64);
            }
            Ok(_) => {
                eprintln!(
                    "warning: unit file {} does not match its manifest checksum; recomputing",
                    path.display()
                );
            }
            Err(_) => {}
        }
    }
    verified
}

/// Run (or resume) a sweep of [`SweepUnit`]s on the deterministic job
/// pool.
///
/// Unit identities ([`SweepUnit::id`]) key the unit files and the
/// manifest; [`SweepUnit::run`] must be deterministic — resumption
/// correctness and the byte-identity guarantee both rest on that.
/// Scheduling runs on `plan.workers` pool workers; persistence is
/// serialized under one lock (compute in parallel, persist one at a
/// time), so the manifest on disk always describes a consistent
/// prefix-closed set of finished units.
pub fn run_units<U>(plan: &SweepPlan, units: &[U]) -> Result<SweepOutcome<U::Output>, SweepError>
where
    U: SweepUnit<Error = TbError>,
{
    let keys: Vec<String> = units.iter().map(SweepUnit::id).collect();
    std::fs::create_dir_all(&plan.dir).map_err(|e| io_err(&plan.dir, e))?;
    // Sweep `write_atomic` staging files a crashed previous run left
    // behind, exactly as the serve result cache does on open: a stale
    // `.tmp` is never valid input, and leaving it around masks how much
    // disk the unit directory really holds.
    let swept = tbpoint_obs::clean_stale_tmps(&plan.dir).map_err(|e| io_err(&plan.dir, e))?;
    for path in &swept {
        eprintln!("swept stale staging file {}", path.display());
    }

    let mut done: BTreeMap<usize, String> = if plan.resume {
        load_verified_units(plan, &keys)
    } else {
        BTreeMap::new()
    };
    let resumed = done.len();

    let todo: Vec<usize> = (0..keys.len()).filter(|i| !done.contains_key(i)).collect();
    let allowed = plan.max_units.unwrap_or(todo.len()).min(todo.len());
    let partial = allowed < todo.len();

    // The pool schedules the allowed prefix of missing units; each job
    // computes its unit off-lock, then (under the lock) writes the unit
    // file atomically and rewrites the manifest, so an interrupt at any
    // instant preserves every finished unit. On failure the pool
    // reports the lowest recorded unit index and stops scheduling new
    // units; in-flight units still persist, ready for `--resume`.
    let state: std::sync::Mutex<BTreeMap<usize, String>> =
        std::sync::Mutex::new(std::mem::take(&mut done));
    run_indexed(plan.workers, allowed, |n| {
        let i = todo[n];
        let value = units[i].run().map_err(|err| SweepError::Pipeline {
            unit: keys[i].clone(),
            err,
        })?;
        let path = unit_path(plan, &keys[i]);
        let json = serde_json::to_string_pretty(&value)
            .map_err(|e| io_err(&path, std::io::Error::other(e)))?;
        let fnv = format!("{:016x}", fnv1a64(json.as_bytes()));
        let mut st = state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        output::write_atomic(&path, json.as_bytes()).map_err(|e| io_err(&path, e))?;
        st.insert(i, fnv);
        write_manifest(plan, &keys, &st)
    })
    .map_err(|(_, e)| e)?;

    let done = state
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let computed = done.len() - resumed;

    // Assemble results by re-reading every unit file from disk: the
    // in-memory values never reach the final artifact, so resumed and
    // uninterrupted sweeps serialize identically.
    let mut results: Vec<Option<U::Output>> = Vec::with_capacity(keys.len());
    for (i, key) in keys.iter().enumerate() {
        if !done.contains_key(&i) {
            results.push(None);
            continue;
        }
        let path = unit_path(plan, key);
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        let value: U::Output =
            serde_json::from_slice(&bytes).map_err(|e| io_err(&path, std::io::Error::other(e)))?;
        results.push(Some(value));
    }

    Ok(SweepOutcome {
        results,
        computed,
        resumed,
        partial,
    })
}

//! Quality ablations of the design choices DESIGN.md calls out: how do
//! sampling error and sample size move when a TBPoint design parameter
//! departs from the paper's value? (The runtime cost of the same
//! variants is measured by the Criterion benches in `crates/bench`.)

use crate::output::{self, TraceEntry};
use serde::{Deserialize, Serialize};
use tbpoint_core::inter::{InterAlgo, InterConfig};
use tbpoint_core::intra::IntraConfig;
use tbpoint_core::predict::{
    run_tbpoint_live_plan, run_tbpoint_live_traced_plan, run_tbpoint_plan, run_tbpoint_traced_plan,
    SamplingMode, TbpointConfig,
};
use tbpoint_emu::profile_run;
use tbpoint_pool::{map_indexed, ExecPlan};
use tbpoint_sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint_stats::geometric_mean;
use tbpoint_workloads::{all_benchmarks, Scale};

/// One ablation point: a parameter setting and its aggregate outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Which knob.
    pub knob: String,
    /// The value tried (paper value marked with `*`).
    pub value: String,
    /// Geomean sampling error across the roster, percent.
    pub geomean_error_pct: f64,
    /// Geomean sample size across the roster.
    pub geomean_sample: f64,
}

/// The full ablation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// All points, knob-major.
    pub points: Vec<AblationPoint>,
}

impl AblationResult {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.knob.clone(),
                    p.value.clone(),
                    output::fmt(p.geomean_error_pct, 2),
                    output::pct(p.geomean_sample),
                ]
            })
            .collect();
        output::render_table(&["knob", "value", "geomean err%", "geomean sample"], &rows)
    }
}

/// Evaluate one TBPoint configuration across the whole roster and return
/// (geomean error, geomean sample size). Benchmarks fan out across
/// `plan.pool_workers`; the geomeans fold per-benchmark numbers in
/// roster order, so the score is identical at any worker count.
fn score(cfg: &TbpointConfig, scale: Scale, plan: ExecPlan) -> (f64, f64) {
    let gpu = GpuConfig::fermi();
    let benches = all_benchmarks(scale);
    let unit_plan = plan.unit();
    let scored = map_indexed(plan.pool_workers, benches.len(), |i| {
        let bench = &benches[i];
        let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
        // Every swept value is a valid setting and the profile matches
        // the run, so failure is unreachable.
        let tbp = match cfg.mode {
            SamplingMode::Live => run_tbpoint_live_plan(&bench.run, cfg, &gpu, unit_plan)
                .expect("TBPoint pipeline rejected"),
            SamplingMode::TwoPhase => {
                let profile = profile_run(&bench.run, 1);
                run_tbpoint_plan(&bench.run, &profile, cfg, &gpu, unit_plan)
                    .expect("TBPoint pipeline rejected")
            }
        };
        (
            tbp.error_vs(full.overall_ipc()).max(0.05),
            tbp.sample_size(),
        )
    });
    let errors: Vec<f64> = scored.iter().map(|&(e, _)| e).collect();
    let samples: Vec<f64> = scored.iter().map(|&(_, s)| s).collect();
    (geometric_mean(&errors), geometric_mean(&samples))
}

/// [`ablate`] with observability traces (the `--trace-out` path). The
/// sweep itself is unchanged; the traces come from one extra pass of the
/// paper-default configuration over the roster (tracing every swept
/// point would multiply the trace volume by the number of knob values
/// without showing anything new — the events of interest are the
/// sampler's transitions, which the default pass already exercises).
pub fn ablate_traced(
    scale: Scale,
    plan: ExecPlan,
    mode: SamplingMode,
) -> (AblationResult, Vec<TraceEntry>) {
    let result = ablate(scale, plan, mode);
    let gpu = GpuConfig::fermi();
    let cfg = TbpointConfig {
        mode,
        ..TbpointConfig::default()
    };
    let mut entries = Vec::new();
    for bench in all_benchmarks(scale) {
        let (_, traces) = match mode {
            SamplingMode::Live => run_tbpoint_live_traced_plan(&bench.run, &cfg, &gpu, plan)
                .expect("TBPoint pipeline rejected"),
            SamplingMode::TwoPhase => {
                let profile = profile_run(&bench.run, 1);
                run_tbpoint_traced_plan(&bench.run, &profile, &cfg, &gpu, plan)
                    .expect("TBPoint pipeline rejected")
            }
        };
        entries.extend(traces.into_iter().map(|t| TraceEntry {
            label: format!("default/{}", bench.name),
            launch: t.launch,
            trace: t.trace,
        }));
    }
    (result, entries)
}

/// Run every ablation sweep at the given scale. Each swept point scores
/// the roster on the pool described by `plan`; `mode` selects two-phase
/// or live sampling for every point, so a live ablation shows how the
/// same knobs move the online detector.
pub fn ablate(scale: Scale, plan: ExecPlan, mode: SamplingMode) -> AblationResult {
    let mut points = vec![];
    let base = TbpointConfig {
        mode,
        ..TbpointConfig::default()
    };

    // 1. Inter-launch distance threshold sigma (paper: 0.1).
    for sigma in [0.02, 0.05, 0.1, 0.2, 0.5] {
        let cfg = TbpointConfig {
            inter: InterConfig {
                sigma,
                ..base.inter
            },
            ..base
        };
        let (e, s) = score(&cfg, scale, plan);
        points.push(AblationPoint {
            knob: "inter_sigma".into(),
            value: format!("{sigma}{}", if sigma == 0.1 { "*" } else { "" }),
            geomean_error_pct: e,
            geomean_sample: s,
        });
    }

    // 2. Intra-launch (epoch) distance threshold sigma (paper: 0.2).
    for sigma in [0.05, 0.1, 0.2, 0.4] {
        let cfg = TbpointConfig {
            intra: IntraConfig {
                sigma,
                ..base.intra
            },
            ..base
        };
        let (e, s) = score(&cfg, scale, plan);
        points.push(AblationPoint {
            knob: "intra_sigma".into(),
            value: format!("{sigma}{}", if sigma == 0.2 { "*" } else { "" }),
            geomean_error_pct: e,
            geomean_sample: s,
        });
    }

    // 3. Variation-factor threshold (paper: 0.3).
    for vf in [0.1, 0.3, 0.6, 1.0] {
        let cfg = TbpointConfig {
            intra: IntraConfig {
                variation_factor: vf,
                ..base.intra
            },
            ..base
        };
        let (e, s) = score(&cfg, scale, plan);
        points.push(AblationPoint {
            knob: "variation_factor".into(),
            value: format!("{vf}{}", if vf == 0.3 { "*" } else { "" }),
            geomean_error_pct: e,
            geomean_sample: s,
        });
    }

    // 4. Warming threshold (paper: 10%).
    for wt in [0.02, 0.05, 0.10, 0.20, 0.30] {
        let cfg = TbpointConfig {
            warming_threshold: wt,
            ..base
        };
        let (e, s) = score(&cfg, scale, plan);
        points.push(AblationPoint {
            knob: "warming_threshold".into(),
            value: format!("{wt}{}", if wt == 0.10 { "*" } else { "" }),
            geomean_error_pct: e,
            geomean_sample: s,
        });
    }

    // 5. Footnote-2 extension: BBV appended to the inter features.
    for (label, use_bbv) in [("off*", false), ("on", true)] {
        let cfg = TbpointConfig {
            inter: InterConfig {
                use_bbv,
                ..base.inter
            },
            ..base
        };
        let (e, s) = score(&cfg, scale, plan);
        points.push(AblationPoint {
            knob: "inter_bbv_extension".into(),
            value: label.into(),
            geomean_error_pct: e,
            geomean_sample: s,
        });
    }

    // 6. Inter clustering algorithm (paper: hierarchical).
    for (label, algo) in [
        ("hierarchical*", InterAlgo::Hierarchical),
        ("kmeans_bic", InterAlgo::KMeansBic { max_k: 15 }),
    ] {
        let cfg = TbpointConfig {
            inter: InterConfig { algo, ..base.inter },
            ..base
        };
        let (e, s) = score(&cfg, scale, plan);
        points.push(AblationPoint {
            knob: "inter_algo".into(),
            value: label.into(),
            geomean_error_pct: e,
            geomean_sample: s,
        });
    }

    AblationResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_runs_on_tiny_scale() {
        // A smoke test of the scoring helper on one config (full sweeps
        // are exercised via the CLI / recorded in EXPERIMENTS.md).
        let (e, s) = score(&TbpointConfig::default(), Scale::Tiny, ExecPlan::serial());
        assert!(e.is_finite() && e > 0.0);
        assert!(s > 0.0 && s <= 1.0);

        // The score folds per-benchmark geomeans in roster order, so it
        // is invariant to the worker count.
        let plan = ExecPlan {
            sim_jobs: 1,
            pool_workers: 3,
        };
        let (e3, s3) = score(&TbpointConfig::default(), Scale::Tiny, plan);
        assert_eq!(e, e3);
        assert_eq!(s, s3);
    }
}

//! Fig. 8: regular vs irregular kernels, classified by their per-TB
//! size-ratio scatter (thread instructions per TB normalised by the
//! cross-TB average).

use crate::output;
use serde::{Deserialize, Serialize};
use tbpoint_core::TbError;
use tbpoint_emu::profile_launch;
use tbpoint_pool::{map_indexed, SweepUnit};
use tbpoint_stats::cov;
use tbpoint_workloads::{all_benchmarks, Scale};

/// One benchmark's size-ratio series (concatenated across launches, in
/// dispatch order — red dots in the paper mark launch starts; we record
/// the boundaries instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Series {
    /// Benchmark name.
    pub name: String,
    /// Declared kind from the roster.
    pub kind: String,
    /// Per-TB size ratio (size / mean size), dispatch order.
    pub size_ratio: Vec<f64>,
    /// Indices where each launch starts.
    pub launch_starts: Vec<usize>,
    /// CoV of the sizes — the quantitative regular/irregular signal.
    pub size_cov: f64,
}

/// Fig. 8 output for the full roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One series per benchmark.
    pub series: Vec<Fig8Series>,
}

impl Fig8Result {
    /// Summary table (full scatter data goes to the CSV artefacts).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    s.kind.clone(),
                    s.size_ratio.len().to_string(),
                    output::fmt(s.size_cov, 3),
                    output::fmt(s.size_ratio.iter().cloned().fold(f64::MIN, f64::max), 2),
                ]
            })
            .collect();
        output::render_table(&["bench", "kind", "TBs", "size CoV", "max ratio"], &rows)
    }
}

/// Profile one benchmark and extract its Fig. 8 series — the resumable
/// sweep's unit of work.
pub fn fig8_bench(bench: &tbpoint_workloads::Benchmark, threads: usize) -> Fig8Series {
    let mut sizes: Vec<f64> = vec![];
    let mut launch_starts = vec![];
    for spec in &bench.run.launches {
        launch_starts.push(sizes.len());
        let lp = profile_launch(&bench.run.kernel, spec, threads);
        sizes.extend(lp.tbs.iter().map(|t| t.thread_insts as f64));
    }
    let mean = tbpoint_stats::mean(&sizes);
    let size_cov = cov(&sizes);
    let size_ratio = sizes
        .iter()
        .map(|&s| if mean > 0.0 { s / mean } else { 0.0 })
        .collect();
    Fig8Series {
        name: bench.name.to_string(),
        kind: format!("{:?}", bench.kind),
        size_ratio,
        launch_starts,
        size_cov,
    }
}

/// One benchmark's Fig. 8 extraction as a pool-schedulable
/// [`SweepUnit`].
pub struct Fig8Unit<'a> {
    /// The benchmark to profile.
    pub bench: &'a tbpoint_workloads::Benchmark,
    /// Intra-launch profiling threads (`ExecPlan::sim_jobs`).
    pub threads: usize,
}

impl SweepUnit for Fig8Unit<'_> {
    type Output = Fig8Series;
    type Error = TbError;

    fn id(&self) -> String {
        self.bench.name.to_string()
    }

    fn run(&self) -> Result<Fig8Series, TbError> {
        Ok(fig8_bench(self.bench, self.threads))
    }
}

/// Profile every benchmark and extract the Fig. 8 series, fanning
/// benchmarks out across `workers` pool workers (series order stays
/// roster order at any worker count).
pub fn fig8(scale: Scale, threads: usize, workers: usize) -> Fig8Result {
    let benches = all_benchmarks(scale);
    Fig8Result {
        series: map_indexed(workers, benches.len(), |i| fig8_bench(&benches[i], threads)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_workloads::KernelKind;

    #[test]
    fn irregular_kernels_have_higher_size_cov() {
        let r = fig8(Scale::Tiny, 4, 2);
        assert_eq!(r.series.len(), 12);
        let benches = all_benchmarks(Scale::Tiny);
        let mut irregular = vec![];
        let mut regular = vec![];
        for (s, b) in r.series.iter().zip(&benches) {
            if b.kind == KernelKind::Irregular {
                irregular.push(s.size_cov);
            } else {
                regular.push(s.size_cov);
            }
        }
        let gi = tbpoint_stats::geometric_mean(&irregular);
        let gr = tbpoint_stats::geometric_mean(&regular);
        assert!(
            gi > gr * 3.0,
            "irregular size CoV geomean {gi:.3} should dwarf regular {gr:.3}"
        );
    }

    #[test]
    fn ratios_average_to_one() {
        let r = fig8(Scale::Tiny, 2, 1);
        for s in &r.series {
            let mean = tbpoint_stats::mean(&s.size_ratio);
            assert!((mean - 1.0).abs() < 1e-9, "{}: mean ratio {mean}", s.name);
        }
    }

    #[test]
    fn launch_starts_match_launch_counts() {
        let r = fig8(Scale::Tiny, 2, 1);
        let benches = all_benchmarks(Scale::Tiny);
        for (s, b) in r.series.iter().zip(&benches) {
            assert_eq!(s.launch_starts.len(), b.run.num_launches());
            assert_eq!(s.launch_starts[0], 0);
        }
    }
}

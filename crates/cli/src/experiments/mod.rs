//! One module per paper artefact; each returns serialisable result
//! structs and can render itself as text.

pub mod ablate;
pub mod eval;
pub mod fig5;
pub mod fig8;
pub mod inspect;
pub mod sensitivity;
pub mod table1;
pub mod table6;

pub use ablate::{ablate, ablate_traced, AblationResult};
pub use eval::{
    eval, eval_bench, eval_traced, render_fig10, render_fig11, render_fig9, BenchEval, EvalConfig,
    EvalResult, EvalUnit,
};
pub use fig5::fig5;
pub use fig8::{fig8, fig8_bench, Fig8Result, Fig8Series, Fig8Unit};
pub use inspect::inspect;
pub use sensitivity::{
    render_fig12, render_fig13, sensitivity, sensitivity_bench, sensitivity_traced,
    SensitivityCell, SensitivityResult, SensitivityUnit,
};
pub use table1::table1;
pub use table6::table6;

use tbpoint_workloads::Scale;

/// Parse a `--scale` value.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "full" => Some(Scale::Full),
        "dev" => Some(Scale::Dev),
        "tiny" => Some(Scale::Tiny),
        _ => None,
    }
}

/// Default worker-thread count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

//! One module per paper artefact; each returns serialisable result
//! structs and can render itself as text.

pub mod ablate;
pub mod eval;
pub mod fig5;
pub mod fig8;
pub mod inspect;
pub mod sensitivity;
pub mod table1;
pub mod table6;

pub use ablate::{ablate, ablate_traced, AblationResult};
pub use eval::{
    eval, eval_bench, eval_traced, render_fig10, render_fig11, render_fig9, BenchEval, EvalConfig,
    EvalResult,
};
pub use fig5::fig5;
pub use fig8::{fig8, fig8_bench, Fig8Result, Fig8Series};
pub use inspect::inspect;
pub use sensitivity::{
    render_fig12, render_fig13, sensitivity, sensitivity_bench, sensitivity_traced,
    SensitivityCell, SensitivityResult,
};
pub use table1::table1;
pub use table6::table6;

use tbpoint_workloads::Scale;

/// Parse a `--scale` value.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "full" => Some(Scale::Full),
        "dev" => Some(Scale::Dev),
        "tiny" => Some(Scale::Tiny),
        _ => None,
    }
}

/// Default worker-thread count: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Resolve the intra-launch simulator job count (`SimOptions::jobs` —
/// SM-sharded parallel timing simulation; bit-identical to serial at
/// any value). One resolution path for every command: an explicit
/// `--jobs` wins, then the `TBPOINT_JOBS` environment variable, then
/// serial. `0` clamps to 1 with a warning rather than erroring — the
/// conventional "--jobs 0 = no parallelism" spelling keeps working.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    resolve_jobs_from(explicit, std::env::var("TBPOINT_JOBS").ok().as_deref())
}

/// [`resolve_jobs`] with the environment injected, so the precedence
/// rules are unit-testable without touching process state.
pub fn resolve_jobs_from(explicit: Option<usize>, env: Option<&str>) -> usize {
    if let Some(j) = explicit {
        if j == 0 {
            eprintln!("warning: --jobs 0 requests no parallelism; clamping to 1 (serial)");
            return 1;
        }
        return j;
    }
    if let Some(v) = env {
        match v.trim().parse::<usize>() {
            Ok(0) => {
                eprintln!("warning: TBPOINT_JOBS=0 requests no parallelism; using 1 (serial)");
                return 1;
            }
            Ok(j) => return j,
            Err(_) => {
                eprintln!("warning: TBPOINT_JOBS={v:?} is not a job count; using 1 (serial)");
            }
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::resolve_jobs_from;

    #[test]
    fn explicit_jobs_win_over_environment() {
        assert_eq!(resolve_jobs_from(Some(4), Some("8")), 4);
        assert_eq!(resolve_jobs_from(Some(1), Some("8")), 1);
    }

    #[test]
    fn explicit_zero_clamps_to_serial() {
        assert_eq!(resolve_jobs_from(Some(0), Some("8")), 1);
    }

    #[test]
    fn environment_applies_when_no_flag() {
        assert_eq!(resolve_jobs_from(None, Some("6")), 6);
        assert_eq!(resolve_jobs_from(None, Some(" 2 ")), 2);
    }

    #[test]
    fn bad_or_zero_environment_falls_back_to_serial() {
        assert_eq!(resolve_jobs_from(None, Some("0")), 1);
        assert_eq!(resolve_jobs_from(None, Some("many")), 1);
        assert_eq!(resolve_jobs_from(None, None), 1);
    }
}

//! Figs. 12 and 13: TBPoint accuracy and sample size across hardware
//! configurations with different system occupancy (W warps per SM,
//! S SMs).
//!
//! The point of the experiment (Section V-C) is that only the cheap
//! steps rerun per configuration: the profile is collected **once** and
//! reused, the epoch table is rebuilt (epoch size = system occupancy),
//! and the simulation is re-run. This module is written exactly that
//! way — `profile_run` is called once per benchmark outside the
//! configuration loop.

use crate::output::{self, TraceEntry};
use serde::{Deserialize, Serialize};
use tbpoint_core::predict::{
    run_tbpoint_live_plan, run_tbpoint_live_traced_plan, run_tbpoint_plan, run_tbpoint_traced_plan,
    SamplingMode, TbpointConfig,
};
use tbpoint_core::TbError;
use tbpoint_emu::profile_run;
use tbpoint_pool::{run_indexed, ExecPlan, SweepUnit};
use tbpoint_sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint_workloads::{all_benchmarks, Benchmark, Scale};

/// The evaluated (W, S) grid. The paper's exact pairs are unreadable in
/// the scan; these six bracket the Fermi baseline (48, 14) from both
/// sides, which is what Figs. 12-13 require.
pub const CONFIGS: [(u32, u32); 6] = [(16, 8), (32, 8), (16, 14), (32, 14), (48, 14), (48, 28)];

/// One (benchmark, config) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityCell {
    /// Benchmark name.
    pub bench: String,
    /// Warps per SM.
    pub warps: u32,
    /// Number of SMs.
    pub sms: u32,
    /// TBPoint sampling error (percent) under this configuration.
    pub error_pct: f64,
    /// TBPoint total sample size under this configuration.
    pub sample_size: f64,
    /// System occupancy (epoch size) under this configuration.
    pub occupancy: u32,
}

/// Figs. 12-13 data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityResult {
    /// All cells, benchmark-major.
    pub cells: Vec<SensitivityCell>,
}

impl SensitivityResult {
    fn benches(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cells.iter().map(|c| c.bench.clone()).collect();
        names.dedup();
        names
    }

    fn render(&self, value: impl Fn(&SensitivityCell) -> String) -> String {
        let mut headers: Vec<String> = vec!["bench".into()];
        headers.extend(CONFIGS.iter().map(|(w, s)| format!("W{w}S{s}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .benches()
            .into_iter()
            .map(|name| {
                let mut row = vec![name.clone()];
                for (w, s) in CONFIGS {
                    let cell = self
                        .cells
                        .iter()
                        .find(|c| c.bench == name && c.warps == w && c.sms == s)
                        .expect("grid is complete");
                    row.push(value(cell));
                }
                row
            })
            .collect();
        output::render_table(&headers_ref, &rows)
    }

    /// Fig. 12 table: errors.
    pub fn render_errors(&self) -> String {
        let mut s = self.render(|c| output::fmt(c.error_pct, 2));
        let max = self.cells.iter().map(|c| c.error_pct).fold(0.0, f64::max);
        s.push_str(&format!(
            "max error across configs: {max:.2}% (paper: <14%)\n"
        ));
        s
    }

    /// Fig. 13 table: sample sizes.
    pub fn render_samples(&self) -> String {
        self.render(|c| output::pct(c.sample_size))
    }
}

/// Compute one benchmark's whole row of the (W, S) grid — the
/// resumable sweep's unit of work. Profiles once (the one-time
/// profiling step), then simulates every configuration; the first
/// failing configuration aborts the row with its [`TbError`].
pub fn sensitivity_bench(
    bench: &Benchmark,
    tb_cfg: &TbpointConfig,
    plan: ExecPlan,
) -> Result<Vec<SensitivityCell>, TbError> {
    // Live mode has no profiling step at all — each configuration's
    // single timing pass is the whole pipeline.
    let profile = match tb_cfg.mode {
        SamplingMode::TwoPhase => Some(profile_run(&bench.run, 1)),
        SamplingMode::Live => None,
    };
    CONFIGS
        .iter()
        .map(|&(w, s)| {
            let gpu = GpuConfig::with_occupancy(w, s);
            let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
            let tbp = match &profile {
                Some(p) => run_tbpoint_plan(&bench.run, p, tb_cfg, &gpu, plan)?,
                None => run_tbpoint_live_plan(&bench.run, tb_cfg, &gpu, plan)?,
            };
            Ok(SensitivityCell {
                bench: bench.name.to_string(),
                warps: w,
                sms: s,
                error_pct: tbp.error_vs(full.overall_ipc()),
                sample_size: tbp.sample_size(),
                occupancy: gpu.system_occupancy(&bench.run.kernel),
            })
        })
        .collect()
}

/// One benchmark's whole (W, S) grid row as a pool-schedulable
/// [`SweepUnit`].
pub struct SensitivityUnit<'a> {
    /// The benchmark whose row to compute.
    pub bench: &'a Benchmark,
    /// TBPoint thresholds and budgets shared across the grid.
    pub tb_cfg: &'a TbpointConfig,
    /// Unit-level execution plan — callers pass `plan.unit()` because
    /// the sweep scheduler has already spent the pool-worker budget.
    pub plan: ExecPlan,
}

impl SweepUnit for SensitivityUnit<'_> {
    type Output = Vec<SensitivityCell>;
    type Error = TbError;

    fn id(&self) -> String {
        self.bench.name.to_string()
    }

    fn run(&self) -> Result<Vec<SensitivityCell>, TbError> {
        sensitivity_bench(self.bench, self.tb_cfg, self.plan)
    }
}

/// Run the sensitivity sweep with `tb_cfg` (thresholds and budgets flow
/// through it), fanning benchmark rows out across `plan.pool_workers`
/// pool workers. Each unit profiles once and runs its whole
/// configuration row (same unit shape as the resumable sweep); cells
/// come back benchmark-major in config order — deterministic at any
/// worker count.
pub fn sensitivity(
    scale: Scale,
    plan: ExecPlan,
    tb_cfg: &TbpointConfig,
) -> Result<SensitivityResult, TbError> {
    let benches = all_benchmarks(scale);
    let unit_plan = plan.unit();
    let rows = run_indexed(plan.pool_workers, benches.len(), |i| {
        sensitivity_bench(&benches[i], tb_cfg, unit_plan)
    })
    .map_err(|(_, e)| e)?;
    Ok(SensitivityResult {
        cells: rows.into_iter().flatten().collect(),
    })
}

/// [`sensitivity`] with observability traces (the `--trace-out` path):
/// every (benchmark, config) cell's simulated launches are recorded,
/// labelled `bench@W<warps>S<sms>`. Runs serially for a deterministic
/// trace order; the [`SensitivityResult`] is identical to
/// [`sensitivity`]'s.
pub fn sensitivity_traced(
    scale: Scale,
    threads: usize,
    tb_cfg: &TbpointConfig,
    plan: ExecPlan,
) -> Result<(SensitivityResult, Vec<TraceEntry>), TbError> {
    let benches = all_benchmarks(scale);
    let profiles: Vec<_> = match tb_cfg.mode {
        SamplingMode::TwoPhase => benches
            .iter()
            .map(|b| Some(profile_run(&b.run, threads)))
            .collect(),
        SamplingMode::Live => benches.iter().map(|_| None).collect(),
    };
    let mut cells = Vec::new();
    let mut entries = Vec::new();
    for (bi, bench) in benches.iter().enumerate() {
        for (w, s) in CONFIGS {
            let gpu = GpuConfig::with_occupancy(w, s);
            let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
            let (tbp, traces) = match &profiles[bi] {
                Some(p) => run_tbpoint_traced_plan(&bench.run, p, tb_cfg, &gpu, plan)?,
                None => run_tbpoint_live_traced_plan(&bench.run, tb_cfg, &gpu, plan)?,
            };
            entries.extend(traces.into_iter().map(|t| TraceEntry {
                label: format!("{}@W{w}S{s}", bench.name),
                launch: t.launch,
                trace: t.trace,
            }));
            cells.push(SensitivityCell {
                bench: bench.name.to_string(),
                warps: w,
                sms: s,
                error_pct: tbp.error_vs(full.overall_ipc()),
                sample_size: tbp.sample_size(),
                occupancy: gpu.system_occupancy(&bench.run.kernel),
            });
        }
    }
    Ok((SensitivityResult { cells }, entries))
}

/// Render Fig. 12 (errors).
pub fn render_fig12(r: &SensitivityResult) -> String {
    r.render_errors()
}

/// Render Fig. 13 (sample sizes).
pub fn render_fig13(r: &SensitivityResult) -> String {
    r.render_samples()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_scales_with_config() {
        // Cheap structural check: occupancy must grow with W and S.
        let gpu_small = GpuConfig::with_occupancy(16, 8);
        let gpu_big = GpuConfig::with_occupancy(48, 28);
        let bench = &all_benchmarks(Scale::Tiny)[6]; // cfd
        assert!(
            gpu_big.system_occupancy(&bench.run.kernel)
                > gpu_small.system_occupancy(&bench.run.kernel)
        );
    }
}

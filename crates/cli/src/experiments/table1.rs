//! Table I: GPU execution time vs. simulation time.
//!
//! The paper's Table I motivates sampling with an ~80,000x slowdown of
//! cycle-level simulation over an NVIDIA Quadro 6000. We reproduce the
//! *measurement methodology* on our own substrate: simulated GPU time is
//! `cycles / 1.15 GHz`; simulation time is the wall clock of the full
//! simulation; slowdown is their ratio. (Absolute slowdowns differ from
//! the paper's — our simulator models less detail than Macsim and the
//! workloads are scaled — but the table's message, "even second-long
//! kernels take unacceptably long to simulate", reproduces.)

use crate::output;
use serde::{Deserialize, Serialize};
use tbpoint_sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint_workloads::{all_benchmarks, Scale};

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub bench: String,
    /// Simulated GPU time in milliseconds (cycles / clock).
    pub gpu_ms: f64,
    /// Wall-clock simulation time in seconds.
    pub sim_seconds: f64,
    /// Slowdown factor.
    pub slowdown: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated warp instructions.
    pub warp_insts: u64,
}

/// Table I data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Rows in Table VI order.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Render the table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.bench.clone(),
                    output::fmt(r.gpu_ms, 3),
                    output::fmt(r.sim_seconds, 2),
                    format!("{:.0}x", r.slowdown),
                    r.cycles.to_string(),
                    r.warp_insts.to_string(),
                ]
            })
            .collect();
        output::render_table(
            &[
                "bench",
                "GPU (msec)",
                "sim (sec)",
                "slowdown",
                "cycles",
                "warp insts",
            ],
            &rows,
        )
    }
}

/// Measure the slowdown table at the given scale.
pub fn table1(scale: Scale) -> Table1Result {
    let gpu = GpuConfig::fermi();
    let rows = all_benchmarks(scale)
        .iter()
        .map(|bench| {
            let t0 = std::time::Instant::now();
            let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
            let sim_seconds = t0.elapsed().as_secs_f64();
            let cycles = full.total_cycles();
            let gpu_ms = gpu.cycles_to_ms(cycles);
            Table1Row {
                bench: bench.name.to_string(),
                gpu_ms,
                sim_seconds,
                slowdown: sim_seconds * 1e3 / gpu_ms,
                cycles,
                warp_insts: full.total_issued_warp_insts(),
            }
        })
        .collect();
    Table1Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_is_substantial_even_at_tiny_scale() {
        let r = table1(Scale::Tiny);
        assert_eq!(r.rows.len(), 12);
        for row in &r.rows {
            assert!(row.cycles > 0);
            assert!(row.gpu_ms > 0.0);
            assert!(
                row.slowdown > 1.0,
                "{}: slowdown {:.1}",
                row.bench,
                row.slowdown
            );
        }
        assert!(r.render().contains("slowdown"));
    }
}

//! The core evaluation (Figs. 9, 10 and 11): for every Table-VI
//! benchmark, compare Full / Random / Ideal-SimPoint / TBPoint on
//! predicted overall IPC, sampling error and total sample size, plus the
//! inter/intra savings breakdown.
//!
//! One expensive pass produces everything: the full timing simulation
//! (which also yields the baselines' sampling units) and the TBPoint
//! pipeline. Benchmarks fan out over the deterministic job pool — they
//! are completely independent, so results are bit-identical at every
//! worker count. Parallelism arrives as an [`ExecPlan`], never through
//! the serialized [`EvalConfig`]: artifacts must not change bytes when
//! only the worker count changes.

use crate::output::{self, TraceEntry};
use serde::{Deserialize, Serialize};
use tbpoint_baselines::{
    collect_units, ideal_simpoint, random_sampling, systematic_sampling, IdealSimpointConfig,
    RandomConfig, SystematicConfig,
};
use tbpoint_core::predict::{
    run_tbpoint_live_plan, run_tbpoint_live_traced_plan, run_tbpoint_plan, run_tbpoint_traced_plan,
    SamplingMode, TbpointConfig, TbpointResult,
};
use tbpoint_core::TbError;
use tbpoint_emu::profile_run;
use tbpoint_pool::{run_indexed, ExecPlan, SweepUnit};
use tbpoint_sim::GpuConfig;
use tbpoint_stats::geometric_mean;
use tbpoint_workloads::{all_benchmarks, Benchmark, KernelKind, Scale};

/// Evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Target number of sampling units per benchmark. The paper uses
    /// fixed one-million-instruction units on multi-billion-instruction
    /// workloads; our scaled workloads use `total / target` so the unit
    /// *count* lands in the same regime (documented in DESIGN.md).
    pub target_units: u64,
    /// TBPoint thresholds (paper defaults).
    pub tbpoint: TbpointConfig,
}

impl EvalConfig {
    /// Paper-faithful defaults at the given scale.
    pub fn new(scale: Scale) -> Self {
        EvalConfig {
            scale,
            target_units: 60,
            tbpoint: TbpointConfig::default(),
        }
    }
}

/// Per-approach prediction summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproachEval {
    /// Predicted overall IPC.
    pub predicted_ipc: f64,
    /// Absolute sampling error vs. Full, in percent.
    pub error_pct: f64,
    /// Total sample size as a fraction of warp instructions.
    pub sample_size: f64,
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEval {
    /// Benchmark abbreviation.
    pub name: String,
    /// Regular or irregular.
    pub kind: KernelKind,
    /// Full-simulation overall IPC (the reference).
    pub full_ipc: f64,
    /// Total warp instructions.
    pub total_warp_insts: u64,
    /// Full-simulation cycles.
    pub full_cycles: u64,
    /// Random sampling.
    pub random: ApproachEval,
    /// Systematic (periodic) sampling — the Related-Work alternative.
    pub systematic: ApproachEval,
    /// Ideal-SimPoint.
    pub ideal_simpoint: ApproachEval,
    /// TBPoint.
    pub tbpoint: ApproachEval,
    /// Fraction of TBPoint's skipped instructions attributable to
    /// inter-launch sampling (Fig. 11).
    pub inter_fraction: f64,
    /// Launches simulated / total (diagnostics).
    pub launches_simulated: usize,
    /// Total launches.
    pub launches_total: usize,
    /// Sampling units collected.
    pub num_units: usize,
}

/// The whole evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Configuration used.
    pub config: EvalConfig,
    /// Per-benchmark results, Table VI order.
    pub benches: Vec<BenchEval>,
}

impl EvalResult {
    /// Floor for per-benchmark errors entering the geometric mean: a
    /// benchmark predicted essentially exactly (error ~ 0%) should read
    /// as "0.05%", not drag the geomean to zero.
    pub const ERROR_FLOOR_PCT: f64 = 0.05;

    /// Geometric-mean error of an approach across benchmarks, percent.
    pub fn geomean_error(&self, f: impl Fn(&BenchEval) -> &ApproachEval) -> f64 {
        geometric_mean(
            &self
                .benches
                .iter()
                .map(|b| f(b).error_pct.max(Self::ERROR_FLOOR_PCT))
                .collect::<Vec<_>>(),
        )
    }

    /// Geometric-mean sample size of an approach across benchmarks.
    pub fn geomean_sample(&self, f: impl Fn(&BenchEval) -> &ApproachEval) -> f64 {
        geometric_mean(
            &self
                .benches
                .iter()
                .map(|b| f(b).sample_size)
                .collect::<Vec<_>>(),
        )
    }
}

fn build_bench_eval(
    bench: &Benchmark,
    cfg: &EvalConfig,
    gpu: &GpuConfig,
    tbp: impl FnOnce(&tbpoint_emu::RunProfile) -> Result<TbpointResult, TbError>,
) -> Result<BenchEval, TbError> {
    // One-time hardware-independent profile (the GPUOcelot step).
    let profile = profile_run(&bench.run, 1);
    let total_insts = profile.total_warp_insts();

    // Full simulation + sampling units for the baselines.
    let unit_size = (total_insts / cfg.target_units).clamp(2_000, 1_000_000);
    let (units, full_ipc) = collect_units(&bench.run, gpu, unit_size, true);

    // Full cycles derive from the recorded units plus IPC identity.
    let full_cycles = (total_insts as f64 / full_ipc).round() as u64;

    let rnd = random_sampling(&units, &RandomConfig::default());
    let sys = systematic_sampling(&units, &SystematicConfig::default());
    let ideal = ideal_simpoint(&units, &IdealSimpointConfig::default());
    let tbp = tbp(&profile)?;

    Ok(BenchEval {
        name: bench.name.to_string(),
        kind: bench.kind,
        full_ipc,
        total_warp_insts: total_insts,
        full_cycles,
        random: ApproachEval {
            predicted_ipc: rnd.predicted_ipc,
            error_pct: rnd.error_vs(full_ipc),
            sample_size: rnd.sample_size,
        },
        systematic: ApproachEval {
            predicted_ipc: sys.predicted_ipc,
            error_pct: sys.error_vs(full_ipc),
            sample_size: sys.sample_size,
        },
        ideal_simpoint: ApproachEval {
            predicted_ipc: ideal.predicted_ipc,
            error_pct: ideal.error_vs(full_ipc),
            sample_size: ideal.sample_size,
        },
        tbpoint: ApproachEval {
            predicted_ipc: tbp.predicted_ipc,
            error_pct: tbp.error_vs(full_ipc),
            sample_size: tbp.sample_size(),
        },
        inter_fraction: tbp.breakdown.inter_fraction(),
        launches_simulated: tbp.num_simulated_launches,
        launches_total: tbp.num_launches,
        num_units: units.len(),
    })
}

/// Evaluate one benchmark — the resumable sweep's unit of work. Errors
/// (an invalid config, a `cycle_budget` overrun) surface as [`TbError`]
/// instead of a panic so the sweep runner can keep its finished units.
pub fn eval_bench(
    bench: &Benchmark,
    cfg: &EvalConfig,
    gpu: &GpuConfig,
    plan: ExecPlan,
) -> Result<BenchEval, TbError> {
    build_bench_eval(bench, cfg, gpu, |profile| match cfg.tbpoint.mode {
        // Live mode never consumes the profile — the online detector
        // learns everything from the retire stream. The profile is
        // still collected above because the baseline approaches and
        // the unit-size choice need the instruction totals.
        SamplingMode::Live => run_tbpoint_live_plan(&bench.run, &cfg.tbpoint, gpu, plan),
        SamplingMode::TwoPhase => run_tbpoint_plan(&bench.run, profile, &cfg.tbpoint, gpu, plan),
    })
}

/// One benchmark evaluation as a pool-schedulable [`SweepUnit`].
pub struct EvalUnit<'a> {
    /// The benchmark to evaluate.
    pub bench: &'a Benchmark,
    /// Shared evaluation parameters.
    pub cfg: &'a EvalConfig,
    /// Simulated GPU configuration.
    pub gpu: &'a GpuConfig,
    /// Unit-level execution plan — callers pass `plan.unit()` because
    /// the sweep scheduler has already spent the pool-worker budget.
    pub plan: ExecPlan,
}

impl SweepUnit for EvalUnit<'_> {
    type Output = BenchEval;
    type Error = TbError;

    fn id(&self) -> String {
        self.bench.name.to_string()
    }

    fn run(&self) -> Result<BenchEval, TbError> {
        eval_bench(self.bench, self.cfg, self.gpu, self.plan)
    }
}

fn eval_one_traced(
    bench: &Benchmark,
    cfg: &EvalConfig,
    gpu: &GpuConfig,
    plan: ExecPlan,
) -> Result<(BenchEval, Vec<TraceEntry>), TbError> {
    let mut entries = Vec::new();
    let b = build_bench_eval(bench, cfg, gpu, |profile| {
        let (tbp, traces) = match cfg.tbpoint.mode {
            SamplingMode::Live => {
                run_tbpoint_live_traced_plan(&bench.run, &cfg.tbpoint, gpu, plan)?
            }
            SamplingMode::TwoPhase => {
                run_tbpoint_traced_plan(&bench.run, profile, &cfg.tbpoint, gpu, plan)?
            }
        };
        entries = traces
            .into_iter()
            .map(|t| TraceEntry {
                label: bench.name.to_string(),
                launch: t.launch,
                trace: t.trace,
            })
            .collect();
        Ok(tbp)
    })?;
    Ok((b, entries))
}

/// [`eval`] with observability traces of every simulated representative
/// launch (the `--trace-out` path). Benchmarks run serially so the
/// trace order is deterministic; inside each benchmark the
/// representatives still fan out across `plan.pool_workers` (the traced
/// pipeline merges traces in canonical order). The [`EvalResult`] is
/// identical to [`eval`]'s — recording never perturbs the simulation.
pub fn eval_traced(
    cfg: &EvalConfig,
    plan: ExecPlan,
) -> Result<(EvalResult, Vec<TraceEntry>), TbError> {
    let gpu = GpuConfig::fermi();
    let benches = all_benchmarks(cfg.scale);
    let mut results = Vec::with_capacity(benches.len());
    let mut entries = Vec::new();
    for bench in &benches {
        let (b, t) = eval_one_traced(bench, cfg, &gpu, plan)?;
        results.push(b);
        entries.extend(t);
    }
    Ok((
        EvalResult {
            config: *cfg,
            benches: results,
        },
        entries,
    ))
}

/// Run the evaluation over the full roster, fanning benchmarks out
/// across `plan.pool_workers` pool workers (each benchmark runs with
/// the unit-level plan, so the pool budget is spent exactly once). The
/// failing benchmark with the lowest roster index aborts the
/// evaluation with its [`TbError`].
pub fn eval(cfg: &EvalConfig, plan: ExecPlan) -> Result<EvalResult, TbError> {
    let gpu = GpuConfig::fermi();
    let benches = all_benchmarks(cfg.scale);
    let unit_plan = plan.unit();
    let results = run_indexed(plan.pool_workers, benches.len(), |i| {
        eval_bench(&benches[i], cfg, &gpu, unit_plan)
    })
    .map_err(|(_, e)| e)?;
    Ok(EvalResult {
        config: *cfg,
        benches: results,
    })
}

/// Fig. 9: overall IPCs and sampling errors.
pub fn render_fig9(r: &EvalResult) -> String {
    let rows: Vec<Vec<String>> = r
        .benches
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:?}", b.kind),
                output::fmt(b.full_ipc, 3),
                output::fmt(b.random.predicted_ipc, 3),
                output::fmt(b.systematic.predicted_ipc, 3),
                output::fmt(b.ideal_simpoint.predicted_ipc, 3),
                output::fmt(b.tbpoint.predicted_ipc, 3),
                output::fmt(b.random.error_pct, 2),
                output::fmt(b.systematic.error_pct, 2),
                output::fmt(b.ideal_simpoint.error_pct, 2),
                output::fmt(b.tbpoint.error_pct, 2),
            ]
        })
        .collect();
    let mut s = output::render_table(
        &[
            "bench", "kind", "full", "random", "system", "ideal", "tbpoint", "err_rnd%",
            "err_sys%", "err_isp%", "err_tbp%",
        ],
        &rows,
    );
    s.push_str(&format!(
        "geomean error: random {:.2}%  systematic {:.2}%  ideal-simpoint {:.2}%  tbpoint {:.2}%\n",
        r.geomean_error(|b| &b.random),
        r.geomean_error(|b| &b.systematic),
        r.geomean_error(|b| &b.ideal_simpoint),
        r.geomean_error(|b| &b.tbpoint),
    ));
    s
}

/// Fig. 10: total sample sizes.
pub fn render_fig10(r: &EvalResult) -> String {
    let rows: Vec<Vec<String>> = r
        .benches
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:?}", b.kind),
                output::pct(b.random.sample_size),
                output::pct(b.systematic.sample_size),
                output::pct(b.ideal_simpoint.sample_size),
                output::pct(b.tbpoint.sample_size),
            ]
        })
        .collect();
    let mut s = output::render_table(
        &[
            "bench",
            "kind",
            "random",
            "systematic",
            "ideal-simpoint",
            "tbpoint",
        ],
        &rows,
    );
    s.push_str(&format!(
        "geomean sample size: random {}  systematic {}  ideal-simpoint {}  tbpoint {}\n",
        output::pct(r.geomean_sample(|b| &b.random)),
        output::pct(r.geomean_sample(|b| &b.systematic)),
        output::pct(r.geomean_sample(|b| &b.ideal_simpoint)),
        output::pct(r.geomean_sample(|b| &b.tbpoint)),
    ));
    s
}

/// Fig. 11: relative skipped-instruction breakdown.
pub fn render_fig11(r: &EvalResult) -> String {
    let rows: Vec<Vec<String>> = r
        .benches
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                output::pct(b.inter_fraction),
                output::pct(1.0 - b.inter_fraction),
                format!("{}/{}", b.launches_simulated, b.launches_total),
            ]
        })
        .collect();
    output::render_table(
        &[
            "bench",
            "inter-launch",
            "intra-launch",
            "launches sim/total",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_tiny_scale_shapes_hold() {
        // The headline qualitative claims, checked at tiny scale so the
        // test stays fast. Absolute numbers differ from the paper; the
        // orderings must not.
        let cfg = EvalConfig::new(Scale::Tiny);
        let plan = ExecPlan {
            sim_jobs: 1,
            pool_workers: super::super::default_threads(),
        };
        let r = eval(&cfg, plan).expect("default config evaluates cleanly");
        assert_eq!(r.benches.len(), 12);
        for b in &r.benches {
            assert!(b.full_ipc > 0.0, "{}: zero full IPC", b.name);
            assert!(b.tbpoint.sample_size > 0.0 && b.tbpoint.sample_size <= 1.0);
        }
        // TBPoint must beat Random on error geomean.
        let g_rnd = r.geomean_error(|b| &b.random);
        let g_tbp = r.geomean_error(|b| &b.tbpoint);
        assert!(
            g_tbp < g_rnd,
            "TBPoint geomean error {g_tbp:.2}% should beat random {g_rnd:.2}%"
        );
        // Rendering works.
        assert!(render_fig9(&r).contains("geomean"));
        assert!(render_fig10(&r).contains("tbpoint"));
        assert!(render_fig11(&r).contains("inter-launch"));
    }
}

//! `tbpoint inspect <bench>` — a characterisation report for one
//! benchmark: the kernel program, static/profile summaries, occupancy,
//! and the timing simulator's per-SM statistics. The nvprof-style view
//! an architect reads before deciding how to sample.

use crate::output;
use tbpoint_core::inter::{inter_launch_sample, InterConfig};
use tbpoint_core::intra::{build_epochs, identify_regions, IntraConfig};
use tbpoint_emu::profile_run;
use tbpoint_ir::render_program;
use tbpoint_sim::{simulate_launch, GpuConfig, NullSampling};
use tbpoint_workloads::{benchmark_by_name, Scale};

/// Produce the report (None if the benchmark name is unknown).
pub fn inspect(name: &str, scale: Scale, threads: usize) -> Option<String> {
    let bench = benchmark_by_name(name, scale)?;
    let gpu = GpuConfig::fermi();
    let kernel = &bench.run.kernel;
    let mut out = String::new();

    out.push_str(&format!(
        "== {} ({:?}, {:?}) ==\n\n",
        bench.name, bench.suite, bench.kind
    ));
    out.push_str(&format!(
        "kernel: {} threads/block ({} warps), {} regs/thread, {} B smem, {} basic blocks\n",
        kernel.threads_per_block,
        kernel.warps_per_block(),
        kernel.regs_per_thread,
        kernel.smem_per_block,
        kernel.num_basic_blocks
    ));
    out.push_str(&format!(
        "occupancy (Fermi): {} blocks/SM, epoch size {}\n",
        gpu.sm_occupancy(kernel),
        gpu.system_occupancy(kernel)
    ));
    out.push_str(&format!(
        "launches: {} totalling {} thread blocks\n\n",
        bench.run.num_launches(),
        bench.run.total_blocks()
    ));
    out.push_str("program:\n");
    out.push_str(&render_program(&kernel.program));

    // Profile summary.
    let profile = profile_run(&bench.run, threads);
    let total_w = profile.total_warp_insts();
    let total_t = profile.total_thread_insts();
    let total_m: u64 = profile.launches.iter().map(|l| l.mem_requests()).sum();
    out.push_str(&format!(
        "\nprofile: {} warp insts, {} thread insts (SIMD eff {:.1}%), {} mem requests (p = {:.3})\n",
        total_w,
        total_t,
        total_t as f64 / (total_w as f64 * 32.0) * 100.0,
        total_m,
        total_m as f64 / total_w as f64
    ));

    // Inter-launch view.
    let inter = inter_launch_sample(&profile, &InterConfig::default());
    out.push_str(&format!(
        "inter-launch: {} clusters over {} launches\n",
        inter.num_simulated(),
        bench.run.num_launches()
    ));

    // Intra-launch view of the biggest launch.
    let (li, lp) = profile
        .launches
        .iter()
        .enumerate()
        .max_by_key(|(_, l)| l.tbs.len())
        .expect("at least one launch");
    let epochs = build_epochs(lp, gpu.system_occupancy(kernel));
    let table = identify_regions(&epochs, &IntraConfig::default());
    let isolated = epochs.iter().filter(|e| e.variation_factor > 0.3).count();
    out.push_str(&format!(
        "intra-launch (launch {li}): {} epochs, {} isolated by VF, {} regions covering {} TBs\n",
        epochs.len(),
        isolated,
        table.regions.len(),
        table.covered_tbs()
    ));

    // Timing simulation of that launch.
    let r = simulate_launch(
        kernel,
        &bench.run.launches[li],
        &gpu,
        &mut NullSampling,
        None,
    );
    out.push_str(&format!(
        "\ntiming (launch {li}): IPC {:.3} over {} cycles\n",
        r.ipc(),
        r.cycles
    ));
    out.push_str(&format!(
        "memory: L1 {:.1}%  L2 {:.1}%  row-buffer {:.1}%  avg DRAM wait {:.0} cyc\n",
        r.l1_hit_rate * 100.0,
        r.l2_hit_rate * 100.0,
        r.dram_row_hit_rate * 100.0,
        r.dram_avg_wait
    ));
    let mut mix = tbpoint_sim::InstMix::default();
    for s in &r.sm_stats {
        mix.merge(&s.mix);
    }
    out.push_str(&format!(
        "mix: alu {} sfu {} gmem {} smem {} bar {}  (gmem fraction {:.1}%)\n",
        mix.alu,
        mix.sfu,
        mix.global_mem,
        mix.shared_mem,
        mix.barrier,
        mix.global_mem_fraction() * 100.0
    ));
    let rows: Vec<Vec<String>> = r
        .sm_stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                format!("SM{i}"),
                s.issued_warp_insts.to_string(),
                output::fmt(s.ipc(), 3),
                output::pct(s.stall_fraction()),
                output::pct(s.simd_efficiency()),
                s.blocks_retired.to_string(),
            ]
        })
        .collect();
    out.push_str("\nper-SM statistics:\n");
    out.push_str(&output::render_table(
        &["sm", "insts", "ipc", "stall", "simd eff", "blocks"],
        &rows,
    ));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspect_produces_full_report() {
        let s = inspect("hotspot", Scale::Tiny, 2).expect("hotspot exists");
        assert!(s.contains("== hotspot"));
        assert!(s.contains("bar.sync"), "program listing missing:\n{s}");
        assert!(s.contains("per-SM statistics"));
        assert!(s.contains("SM13"), "all 14 SMs should report");
        assert!(s.contains("regions covering"));
    }

    #[test]
    fn inspect_unknown_benchmark_is_none() {
        assert!(inspect("nope", Scale::Tiny, 1).is_none());
    }
}

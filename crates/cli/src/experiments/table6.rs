//! Table VI: the evaluated benchmark roster.

use crate::output;
use tbpoint_workloads::{all_benchmarks, Scale};

/// Render Table VI at the given scale (at `Scale::Full` the launch and
/// thread-block counts match the paper exactly).
pub fn table6(scale: Scale) -> String {
    let rows: Vec<Vec<String>> = all_benchmarks(scale)
        .iter()
        .map(|b| {
            vec![
                b.name.to_string(),
                format!("{:?}", b.suite).to_lowercase(),
                match b.kind {
                    tbpoint_workloads::KernelKind::Irregular => "I".to_string(),
                    tbpoint_workloads::KernelKind::Regular => "II".to_string(),
                },
                b.run.num_launches().to_string(),
                b.run.total_blocks().to_string(),
                b.run.kernel.threads_per_block.to_string(),
            ]
        })
        .collect();
    output::render_table(
        &[
            "bench",
            "suite",
            "type",
            "launches",
            "thread blocks",
            "threads/block",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper() {
        let t = table6(Scale::Full);
        assert!(t.contains("202752"), "conv TB count missing:\n{t}");
        assert!(t.contains("108000"), "lbm TB count missing:\n{t}");
        assert!(t.contains("lonestar"));
    }
}

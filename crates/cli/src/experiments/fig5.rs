//! Fig. 5: Monte-Carlo IPC variation of a homogeneous interval.
//!
//! One curve per legend entry (p, M, N); the paper's claim is that every
//! configuration keeps >95% of its 10,000 samples within ±10% of the
//! mean IPC.

use crate::output;
use serde::{Deserialize, Serialize};
use tbpoint_model::{ipc_variation, IpcVariationConfig, IpcVariationResult};

/// The paper's legend entries (e.g. `p0.05M100N4`), reconstructed from
/// the figure: stall probabilities 0.05/0.1/0.2, stall lengths 100-400,
/// 4 and 8 warps.
pub fn paper_configs() -> Vec<IpcVariationConfig> {
    vec![
        IpcVariationConfig::paper(0.05, 100.0, 4),
        IpcVariationConfig::paper(0.05, 100.0, 8),
        IpcVariationConfig::paper(0.1, 200.0, 4),
        IpcVariationConfig::paper(0.1, 200.0, 8),
        IpcVariationConfig::paper(0.1, 400.0, 4),
        IpcVariationConfig::paper(0.1, 400.0, 8),
        IpcVariationConfig::paper(0.2, 100.0, 4),
        IpcVariationConfig::paper(0.2, 400.0, 8),
    ]
}

/// Fig. 5 output: one result per configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Per-configuration Monte-Carlo outcomes.
    pub results: Vec<IpcVariationResult>,
}

impl Fig5Result {
    /// Does Lemma 4.1 hold for every configuration?
    pub fn lemma_holds(&self) -> bool {
        self.results.iter().all(|r| r.fraction_within_band > 0.95)
    }

    /// Render the results table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|r| {
                vec![
                    r.config.label(),
                    output::fmt(r.nominal_ipc, 4),
                    output::fmt(r.mean_ipc, 4),
                    output::fmt(r.p2_5, 4),
                    output::fmt(r.p97_5, 4),
                    output::pct(r.fraction_within_band),
                ]
            })
            .collect();
        let mut s = output::render_table(
            &["config", "nominal", "mean", "p2.5", "p97.5", "within±10%"],
            &rows,
        );
        s.push_str(&format!(
            "Lemma 4.1 (>95% of samples within 10% of mean IPC): {}\n",
            if self.lemma_holds() {
                "HOLDS for all configs"
            } else {
                "VIOLATED"
            }
        ));
        s
    }
}

/// Run the Fig. 5 experiment with `samples` Monte-Carlo draws per
/// configuration (paper: 10,000) across `threads` workers.
pub fn fig5(samples: usize, threads: usize) -> Fig5Result {
    let results = paper_configs()
        .into_iter()
        .map(|mut cfg| {
            cfg.samples = samples;
            ipc_variation(&cfg, threads)
        })
        .collect();
    Fig5Result { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_holds_at_reduced_samples() {
        let r = fig5(1_500, 4);
        assert_eq!(r.results.len(), 8);
        assert!(r.lemma_holds(), "{}", r.render());
    }

    #[test]
    fn render_contains_labels() {
        let r = fig5(200, 2);
        let s = r.render();
        assert!(s.contains("p0.05M100N4"));
        assert!(s.contains("Lemma 4.1"));
    }
}

//! `tbpoint bench` — the recorded performance trajectory.
//!
//! Times the two eval stages (functional profile, cycle-level simulate)
//! for every Table VI workload over the shared `tbpoint-workloads`
//! fixtures (the same roster the Criterion benches in `crates/bench`
//! draw from) and writes a schema'd artifact (`BENCH_PR9.json`) holding
//! per-stage wall times, throughputs, interner hit counts, **both
//! parallel axes** of the [`ExecPlan`] — the SM-sharded intra-launch
//! speedup (`--jobs`) and the cross-launch pool speedup
//! (`--pool-workers`) — and **both sampling modes**: the paper's
//! two-phase pipeline (profile then sample) against the live
//! single-pass pipeline, each with its wall time and sampled-vs-full
//! error, plus the previous PR's numbers as the frozen baseline for the
//! speedup comparison. Each future perf PR regenerates the artifact
//! (seeding `baseline` from the previous one), growing a measured
//! trajectory instead of anecdotes.
//!
//! Methodology: per workload, `reps` measurements of each stage
//! (single-threaded, whole-launch) and the **minimum** is kept — the
//! standard wall-clock estimator under scheduler noise. The pinned scale
//! for the committed artifact is `dev`; `--quick` (CI's `perf-smoke`
//! job) runs one rep at `tiny` and compares against the artifact's
//! `quick` section with a deliberately generous regression threshold.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tbpoint_core::{run_tbpoint_live_plan, run_tbpoint_plan, SamplingMode, TbpointConfig};
use tbpoint_pool::{map_indexed, ExecPlan};
use tbpoint_sim::{simulate_launch_perf, GpuConfig, NullSampling, SimPerf};
use tbpoint_workloads::{all_benchmarks, Scale};

/// Artifact schema identifier; bump on breaking shape changes.
pub const SCHEMA: &str = "tbpoint-bench/v4";

/// The previous PR's schema; still readable, but only to seed the new
/// artifact's baseline section (see [`baseline_from_v3`]).
pub const V3_SCHEMA: &str = "tbpoint-bench/v3";

/// The PR-5 schema; readable through [`baseline_from_v2`] for the same
/// purpose.
pub const V2_SCHEMA: &str = "tbpoint-bench/v2";

/// The PR-4 schema; readable through [`baseline_from_v1`] for the same
/// purpose.
pub const V1_SCHEMA: &str = "tbpoint-bench/v1";

/// Default artifact path (repo root, committed).
pub const DEFAULT_ARTIFACT: &str = "BENCH_PR9.json";

/// The previous PR's committed artifact, consumed as the default
/// baseline when the new artifact is first generated.
pub const V3_ARTIFACT: &str = "BENCH_PR7.json";

/// The PR-5 committed artifact, the next baseline seed fallback.
pub const V2_ARTIFACT: &str = "BENCH_PR5.json";

/// The PR-4 committed artifact, the baseline seed of last resort.
pub const V1_ARTIFACT: &str = "BENCH_PR4.json";

/// Fail `--check` when current throughput falls below `committed / 2` —
/// generous on purpose: CI runners are noisy, and the check exists to
/// catch order-of-magnitude hot-path regressions, not 10% drift.
pub const REGRESSION_FACTOR: f64 = 2.0;

/// Fail `--check` when either sampling mode's sampled-vs-full error
/// exceeds this bound. It is the clean-baseline anchor of the
/// resilience suite's error-growth curve (zero injected faults keeps
/// `curve[0].mean_err_pct` under 10%), so a quick bench that breaches
/// it means accuracy regressed, not that the runner was slow.
pub const ERROR_BOUND_PCT: f64 = 10.0;

/// One workload's measurements.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WorkloadBench {
    /// Table VI abbreviation.
    pub name: String,
    /// `regular` or `irregular` (Fig. 8 Type II / Type I).
    pub kind: String,
    /// Launches in the run.
    pub launches: u64,
    /// Total thread blocks across launches.
    pub blocks: u64,
    /// Functional-profile stage wall time (best of `reps`).
    pub profile_ms: f64,
    /// Cycle-level simulation wall time for every launch (best of `reps`).
    pub simulate_ms: f64,
    /// `profile_ms + simulate_ms`.
    pub eval_ms: f64,
    /// Warp instructions issued by the simulation.
    pub warp_insts: u64,
    /// Simulated cycles summed over launches.
    pub cycles: u64,
    /// Simulation throughput: `warp_insts / simulate_ms`.
    pub warp_insts_per_sec: f64,
    /// Simulation throughput: `cycles / simulate_ms`.
    pub cycles_per_sec: f64,
    /// Warp traces served from the interner.
    pub intern_hits: u64,
    /// Warp traces emulated and cached.
    pub intern_misses: u64,
    /// Warp traces emulated with caching bypassed (thread-varying).
    pub intern_uncacheable: u64,
    /// Worker threads inside each launch simulation for the parallel
    /// leg (`ExecPlan::sim_jobs`); 1 = the leg was skipped.
    pub jobs: u64,
    /// Cycle-level simulation wall time at `jobs` workers (best of
    /// `reps`); equals `simulate_ms` when `jobs` is 1.
    pub simulate_par_ms: f64,
    /// `simulate_ms / simulate_par_ms` — intra-launch parallel speedup.
    pub par_speedup: f64,
    /// Pool workers scheduling whole launches for the cross-launch leg
    /// (`ExecPlan::pool_workers`); 1 = the leg was skipped.
    pub pool_workers: u64,
    /// Cycle-level simulation wall time with launches fanned out over
    /// `pool_workers` (best of `reps`); equals `simulate_ms` when
    /// `pool_workers` is 1.
    pub simulate_pool_ms: f64,
    /// `simulate_ms / simulate_pool_ms` — cross-launch pool speedup.
    pub pool_speedup: f64,
    /// Two-phase TBPoint pipeline wall time (best of `reps`): sampling
    /// and prediction on an already-collected profile. The full
    /// two-phase cost is `profile_ms + two_phase_ms`.
    pub two_phase_ms: f64,
    /// Two-phase sampled-vs-full IPC error (absolute %).
    pub two_phase_err_pct: f64,
    /// Live single-pass pipeline wall time (best of `reps`); live mode
    /// needs no profile, so this is its whole cost.
    pub live_ms: f64,
    /// Live sampled-vs-full IPC error (absolute %).
    pub live_err_pct: f64,
    /// `(profile_ms + two_phase_ms) / live_ms` — end-to-end gain from
    /// fusing profiling into the timing simulation.
    pub live_speedup: f64,
}

/// Suite-wide sums.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct BenchTotals {
    /// Sum of per-workload profile times.
    pub profile_ms: f64,
    /// Sum of per-workload simulate times.
    pub simulate_ms: f64,
    /// Sum of per-workload eval times.
    pub eval_ms: f64,
    /// Total warp instructions.
    pub warp_insts: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// `warp_insts / simulate_ms`.
    pub warp_insts_per_sec: f64,
}

/// One workload of the frozen pre-optimisation baseline (no interner
/// existed there, so no hit counts).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BaselineWorkload {
    /// Table VI abbreviation.
    pub name: String,
    /// Functional-profile stage wall time.
    pub profile_ms: f64,
    /// Cycle-level simulation wall time.
    pub simulate_ms: f64,
    /// `profile_ms + simulate_ms`.
    pub eval_ms: f64,
    /// Warp instructions issued (must match the current build's).
    pub warp_insts: u64,
    /// Simulated cycles (must match the current build's).
    pub cycles: u64,
}

/// The frozen reference build's measurements, embedded in the artifact
/// and carried over verbatim when the artifact is regenerated.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BaselineSection {
    /// Human description of the reference build.
    pub build: String,
    /// Scale of `workloads` (matches the artifact's pinned scale).
    pub scale: String,
    /// Repetitions (minimum taken).
    pub reps: u32,
    /// Per-workload baseline at the pinned scale.
    pub workloads: Vec<BaselineWorkload>,
    /// Per-workload baseline at the `--quick` scale.
    pub quick: Vec<BaselineWorkload>,
}

/// The committed artifact.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BenchReport {
    /// Must equal [`SCHEMA`].
    pub schema: String,
    /// Build description of the measured binary.
    pub build: String,
    /// Logical CPUs visible to the measuring process. Context for the
    /// parallel columns: `par_speedup > 1` is only attainable when this
    /// exceeds 1 — on a single-CPU host the parallel leg measures pure
    /// coordination overhead.
    pub host_cpus: u64,
    /// Pinned scale of `workloads`.
    pub scale: String,
    /// Repetitions per stage (minimum taken).
    pub reps: u32,
    /// Per-workload measurements at the pinned scale.
    pub workloads: Vec<WorkloadBench>,
    /// Suite-wide sums at the pinned scale.
    pub totals: BenchTotals,
    /// Scale of the `quick` section (CI smoke runs).
    pub quick_scale: String,
    /// One-rep measurements at `quick_scale`, compared by `--check`.
    pub quick: Vec<WorkloadBench>,
    /// The frozen pre-optimisation reference, if recorded.
    pub baseline: Option<BaselineSection>,
}

/// Logical CPUs available to this process (1 if undeterminable).
pub fn host_cpus() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Description of the currently-measured build (kept in lockstep with
/// `[profile.release]` in the workspace `Cargo.toml` and the hot-path
/// defaults in `tbpoint-sim`).
pub fn build_label() -> String {
    "release, thin LTO, codegen-units=1; trace interning + event horizon on; \
     two-axis ExecPlan parallelism available (--jobs, --pool-workers); \
     live single-pass sampling available (--live)"
        .to_string()
}

/// Canonical scale tag used inside the artifact.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Full => "full",
        Scale::Dev => "dev",
        Scale::Tiny => "tiny",
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn per_sec(count: u64, ms: f64) -> f64 {
    if ms <= 0.0 {
        0.0
    } else {
        (count as f64 / (ms / 1e3)).round()
    }
}

/// Measure every Table VI workload at `scale`, `reps` times per stage,
/// keeping the minimum. Each active [`ExecPlan`] axis adds a leg that
/// re-times the same simulations — SM-sharded within each launch when
/// `plan.sim_jobs > 1`, whole launches fanned out over the job pool
/// when `plan.pool_workers > 1` — and asserts the counted work is
/// identical, so each speedup is measured *and* its bit-identity
/// spot-checked in the same breath. Progress lines go to stderr via
/// `progress`.
pub fn measure(
    scale: Scale,
    reps: u32,
    plan: ExecPlan,
    mut progress: impl FnMut(&str),
) -> Vec<WorkloadBench> {
    let plan = plan.normalized();
    let jobs = plan.sim_jobs;
    let pool = plan.pool_workers;
    let cfg = GpuConfig::fermi();
    let tb_cfg = TbpointConfig::default();
    let live_cfg = TbpointConfig {
        mode: SamplingMode::Live,
        ..TbpointConfig::default()
    };
    let mut out = Vec::new();
    for bench in all_benchmarks(scale) {
        let mut best_profile = f64::MAX;
        let mut best_sim = f64::MAX;
        let mut best_par = f64::MAX;
        let mut best_pool = f64::MAX;
        let mut best_two = f64::MAX;
        let mut best_live = f64::MAX;
        let mut two_err = 0.0f64;
        let mut live_err = 0.0f64;
        let mut warp_insts = 0u64;
        let mut cycles = 0u64;
        let mut perf = SimPerf::default();
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let profile = tbpoint_emu::profile_run(&bench.run, 1);
            let profile_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t1 = Instant::now();
            let mut wi = 0u64;
            let mut cy = 0u64;
            let mut p = SimPerf::default();
            for spec in &bench.run.launches {
                let (r, lp) =
                    simulate_launch_perf(&bench.run.kernel, spec, &cfg, &mut NullSampling, None, 1);
                wi += r.issued_warp_insts;
                cy += r.cycles;
                p.accumulate(&lp);
            }
            let sim_ms = t1.elapsed().as_secs_f64() * 1e3;

            // The two stages walk the same deterministic programs; a
            // mismatch means the simulator dropped or duplicated work.
            assert_eq!(
                wi,
                profile.total_warp_insts(),
                "{}: simulate disagrees with profile",
                bench.name
            );

            if jobs > 1 {
                let t2 = Instant::now();
                let mut wi_par = 0u64;
                let mut cy_par = 0u64;
                for spec in &bench.run.launches {
                    let (r, _) = simulate_launch_perf(
                        &bench.run.kernel,
                        spec,
                        &cfg,
                        &mut NullSampling,
                        None,
                        jobs,
                    );
                    wi_par += r.issued_warp_insts;
                    cy_par += r.cycles;
                }
                let par_ms = t2.elapsed().as_secs_f64() * 1e3;
                // The whole point of the sharded simulator: same bits,
                // less wall clock. A count drift is a correctness bug.
                assert_eq!(
                    (wi_par, cy_par),
                    (wi, cy),
                    "{}: parallel simulation (jobs={jobs}) disagrees with serial",
                    bench.name
                );
                best_par = best_par.min(par_ms);
            }

            if pool > 1 {
                let specs = &bench.run.launches;
                let t3 = Instant::now();
                let counts = map_indexed(pool, specs.len(), |i| {
                    let mut sampling = NullSampling;
                    let (r, _) = simulate_launch_perf(
                        &bench.run.kernel,
                        &specs[i],
                        &cfg,
                        &mut sampling,
                        None,
                        1,
                    );
                    (r.issued_warp_insts, r.cycles)
                });
                let pool_ms = t3.elapsed().as_secs_f64() * 1e3;
                let (wi_pool, cy_pool) = counts
                    .iter()
                    .fold((0u64, 0u64), |(a, b), &(w, c)| (a + w, b + c));
                // Launches are independent and the merge is canonical,
                // so the pooled counts must equal the serial ones.
                assert_eq!(
                    (wi_pool, cy_pool),
                    (wi, cy),
                    "{}: pooled simulation (pool_workers={pool}) disagrees with serial",
                    bench.name
                );
                best_pool = best_pool.min(pool_ms);
            }

            // The sampling-mode legs: the paper's two-phase pipeline on
            // the profile already in hand, then the live single-pass
            // pipeline that needs none. Both run serially so the
            // comparison is free of scheduling noise; both are exact
            // about accuracy — the errors are deterministic, the wall
            // times take the per-rep minimum like every other stage.
            let full_ipc = if cy > 0 { wi as f64 / cy as f64 } else { 0.0 };
            let t4 = Instant::now();
            let tbp = run_tbpoint_plan(&bench.run, &profile, &tb_cfg, &cfg, ExecPlan::serial())
                .expect("two-phase pipeline rejected");
            let two_ms = t4.elapsed().as_secs_f64() * 1e3;
            let t5 = Instant::now();
            let live = run_tbpoint_live_plan(&bench.run, &live_cfg, &cfg, ExecPlan::serial())
                .expect("live pipeline rejected");
            let live_ms = t5.elapsed().as_secs_f64() * 1e3;
            two_err = tbp.error_vs(full_ipc);
            live_err = live.error_vs(full_ipc);
            best_two = best_two.min(two_ms);
            best_live = best_live.min(live_ms);

            best_profile = best_profile.min(profile_ms);
            best_sim = best_sim.min(sim_ms);
            warp_insts = wi;
            cycles = cy;
            perf = p;
        }
        if jobs <= 1 {
            best_par = best_sim;
        }
        if pool <= 1 {
            best_pool = best_sim;
        }
        let eval_ms = best_profile + best_sim;
        progress(&format!(
            "{:8} {:>9.1} ms eval ({:>8.1} profile + {:>9.1} simulate{}), {} warp insts",
            bench.name,
            eval_ms,
            best_profile,
            best_sim,
            match (jobs > 1, pool > 1) {
                (true, true) => {
                    format!(" serial, {best_par:.1} at jobs={jobs}, {best_pool:.1} at pool={pool}")
                }
                (true, false) => format!(" serial, {best_par:.1} at jobs={jobs}"),
                (false, true) => format!(" serial, {best_pool:.1} at pool={pool}"),
                (false, false) => String::new(),
            },
            warp_insts
        ));
        progress(&format!(
            "{:8} sampling: two-phase {:>7.1} ms (err {:.2}%), live {:>7.1} ms (err {:.2}%)",
            "", best_two, two_err, best_live, live_err
        ));
        out.push(WorkloadBench {
            name: bench.name.to_string(),
            kind: match bench.kind {
                tbpoint_workloads::KernelKind::Regular => "regular".to_string(),
                tbpoint_workloads::KernelKind::Irregular => "irregular".to_string(),
            },
            launches: bench.run.num_launches() as u64,
            blocks: bench.run.total_blocks(),
            profile_ms: round2(best_profile),
            simulate_ms: round2(best_sim),
            eval_ms: round2(eval_ms),
            warp_insts,
            cycles,
            warp_insts_per_sec: per_sec(warp_insts, best_sim),
            cycles_per_sec: per_sec(cycles, best_sim),
            intern_hits: perf.intern_hits,
            intern_misses: perf.intern_misses,
            intern_uncacheable: perf.intern_uncacheable,
            jobs: jobs.max(1) as u64,
            simulate_par_ms: round2(best_par),
            par_speedup: if best_par > 0.0 {
                round2(best_sim / best_par)
            } else {
                0.0
            },
            pool_workers: pool.max(1) as u64,
            simulate_pool_ms: round2(best_pool),
            pool_speedup: if best_pool > 0.0 {
                round2(best_sim / best_pool)
            } else {
                0.0
            },
            two_phase_ms: round2(best_two),
            two_phase_err_pct: round2(two_err),
            live_ms: round2(best_live),
            live_err_pct: round2(live_err),
            live_speedup: if best_live > 0.0 {
                round2((best_profile + best_two) / best_live)
            } else {
                0.0
            },
        });
    }
    out
}

/// Suite-wide sums of `workloads`.
pub fn totals(workloads: &[WorkloadBench]) -> BenchTotals {
    let mut t = BenchTotals::default();
    for w in workloads {
        t.profile_ms += w.profile_ms;
        t.simulate_ms += w.simulate_ms;
        t.eval_ms += w.eval_ms;
        t.warp_insts += w.warp_insts;
        t.cycles += w.cycles;
    }
    t.profile_ms = round2(t.profile_ms);
    t.simulate_ms = round2(t.simulate_ms);
    t.eval_ms = round2(t.eval_ms);
    t.warp_insts_per_sec = per_sec(t.warp_insts, t.simulate_ms);
    t
}

/// Parse and schema-check an artifact.
pub fn parse_report(bytes: &[u8]) -> Result<BenchReport, String> {
    let report: BenchReport =
        serde_json::from_slice(bytes).map_err(|e| format!("artifact does not parse: {e}"))?;
    if report.schema != SCHEMA {
        return Err(format!(
            "artifact schema {:?} != expected {:?}",
            report.schema, SCHEMA
        ));
    }
    if report.workloads.is_empty() {
        return Err("artifact has no workloads".to_string());
    }
    Ok(report)
}

/// The v1 (PR4) workload shape, decoded only to seed a new artifact's
/// baseline section from the previous PR's committed measurements.
#[derive(Debug, Clone, Deserialize)]
struct WorkloadBenchV1 {
    name: String,
    kind: String,
    launches: u64,
    blocks: u64,
    profile_ms: f64,
    simulate_ms: f64,
    eval_ms: f64,
    warp_insts: u64,
    cycles: u64,
    warp_insts_per_sec: f64,
    cycles_per_sec: f64,
    intern_hits: u64,
    intern_misses: u64,
    intern_uncacheable: u64,
}

/// The v1 (PR4) artifact shape.
#[derive(Debug, Clone, Deserialize)]
struct BenchReportV1 {
    schema: String,
    build: String,
    scale: String,
    reps: u32,
    workloads: Vec<WorkloadBenchV1>,
    totals: BenchTotals,
    quick_scale: String,
    quick: Vec<WorkloadBenchV1>,
    baseline: Option<BaselineSection>,
}

/// Convert the previous PR's committed v1 artifact into a baseline
/// section for the v2 artifact: its *measurements* become the frozen
/// reference the new build's speedup columns compare against. (The
/// vendored serde has no `#[serde(default)]`, so the version upgrade is
/// an explicit conversion, not a lenient parse.)
pub fn baseline_from_v1(bytes: &[u8]) -> Result<BaselineSection, String> {
    let v1: BenchReportV1 =
        serde_json::from_slice(bytes).map_err(|e| format!("v1 artifact does not parse: {e}"))?;
    if v1.schema != V1_SCHEMA {
        return Err(format!(
            "expected a {V1_SCHEMA:?} artifact, got schema {:?}",
            v1.schema
        ));
    }
    let strip = |ws: &[WorkloadBenchV1]| {
        ws.iter()
            .map(|w| BaselineWorkload {
                name: w.name.clone(),
                profile_ms: w.profile_ms,
                simulate_ms: w.simulate_ms,
                eval_ms: w.eval_ms,
                warp_insts: w.warp_insts,
                cycles: w.cycles,
            })
            .collect()
    };
    // Touch the fields the conversion deliberately drops so the v1
    // mirror stays an exact decode of the committed artifact.
    let _ = (
        &v1.totals,
        &v1.baseline,
        &v1.quick_scale,
        v1.workloads.first().map(|w| {
            (
                &w.kind,
                w.launches,
                w.blocks,
                w.warp_insts_per_sec,
                w.cycles_per_sec,
                w.intern_hits,
                w.intern_misses,
                w.intern_uncacheable,
            )
        }),
    );
    Ok(BaselineSection {
        build: format!("{} [{}]", v1.build, V1_ARTIFACT),
        scale: v1.scale,
        reps: v1.reps,
        workloads: strip(&v1.workloads),
        quick: strip(&v1.quick),
    })
}

/// The v2 (PR5) workload shape — v1 plus the intra-launch parallel leg
/// — decoded only to seed a new artifact's baseline section.
#[derive(Debug, Clone, Deserialize)]
struct WorkloadBenchV2 {
    name: String,
    kind: String,
    launches: u64,
    blocks: u64,
    profile_ms: f64,
    simulate_ms: f64,
    eval_ms: f64,
    warp_insts: u64,
    cycles: u64,
    warp_insts_per_sec: f64,
    cycles_per_sec: f64,
    intern_hits: u64,
    intern_misses: u64,
    intern_uncacheable: u64,
    jobs: u64,
    simulate_par_ms: f64,
    par_speedup: f64,
}

/// The v2 (PR5) artifact shape.
#[derive(Debug, Clone, Deserialize)]
struct BenchReportV2 {
    schema: String,
    build: String,
    host_cpus: u64,
    scale: String,
    reps: u32,
    workloads: Vec<WorkloadBenchV2>,
    totals: BenchTotals,
    quick_scale: String,
    quick: Vec<WorkloadBenchV2>,
    baseline: Option<BaselineSection>,
}

/// Convert the previous PR's committed v2 artifact into a baseline
/// section for the v3 artifact, exactly as [`baseline_from_v1`] does
/// for v1: its measurements become the frozen reference. (The vendored
/// serde has no `#[serde(default)]`, so the version upgrade is an
/// explicit conversion, not a lenient parse.)
pub fn baseline_from_v2(bytes: &[u8]) -> Result<BaselineSection, String> {
    let v2: BenchReportV2 =
        serde_json::from_slice(bytes).map_err(|e| format!("v2 artifact does not parse: {e}"))?;
    if v2.schema != V2_SCHEMA {
        return Err(format!(
            "expected a {V2_SCHEMA:?} artifact, got schema {:?}",
            v2.schema
        ));
    }
    let strip = |ws: &[WorkloadBenchV2]| {
        ws.iter()
            .map(|w| BaselineWorkload {
                name: w.name.clone(),
                profile_ms: w.profile_ms,
                simulate_ms: w.simulate_ms,
                eval_ms: w.eval_ms,
                warp_insts: w.warp_insts,
                cycles: w.cycles,
            })
            .collect()
    };
    // Touch the fields the conversion deliberately drops so the v2
    // mirror stays an exact decode of the committed artifact.
    let _ = (
        &v2.totals,
        &v2.baseline,
        &v2.quick_scale,
        v2.host_cpus,
        v2.workloads.first().map(|w| {
            (
                &w.kind,
                w.launches,
                w.blocks,
                w.warp_insts_per_sec,
                w.cycles_per_sec,
                w.intern_hits,
                w.intern_misses,
                w.intern_uncacheable,
                w.jobs,
                w.simulate_par_ms,
                w.par_speedup,
            )
        }),
    );
    Ok(BaselineSection {
        build: format!("{} [{}]", v2.build, V2_ARTIFACT),
        scale: v2.scale,
        reps: v2.reps,
        workloads: strip(&v2.workloads),
        quick: strip(&v2.quick),
    })
}

/// The v3 (PR7) workload shape — v2 plus the cross-launch pool leg —
/// decoded only to seed a new artifact's baseline section.
#[derive(Debug, Clone, Deserialize)]
struct WorkloadBenchV3 {
    name: String,
    kind: String,
    launches: u64,
    blocks: u64,
    profile_ms: f64,
    simulate_ms: f64,
    eval_ms: f64,
    warp_insts: u64,
    cycles: u64,
    warp_insts_per_sec: f64,
    cycles_per_sec: f64,
    intern_hits: u64,
    intern_misses: u64,
    intern_uncacheable: u64,
    jobs: u64,
    simulate_par_ms: f64,
    par_speedup: f64,
    pool_workers: u64,
    simulate_pool_ms: f64,
    pool_speedup: f64,
}

/// The v3 (PR7) artifact shape.
#[derive(Debug, Clone, Deserialize)]
struct BenchReportV3 {
    schema: String,
    build: String,
    host_cpus: u64,
    scale: String,
    reps: u32,
    workloads: Vec<WorkloadBenchV3>,
    totals: BenchTotals,
    quick_scale: String,
    quick: Vec<WorkloadBenchV3>,
    baseline: Option<BaselineSection>,
}

/// Convert the previous PR's committed v3 artifact into a baseline
/// section for the v4 artifact, exactly as [`baseline_from_v2`] does
/// for v2: its measurements become the frozen reference. (The vendored
/// serde has no `#[serde(default)]`, so the version upgrade is an
/// explicit conversion, not a lenient parse.)
pub fn baseline_from_v3(bytes: &[u8]) -> Result<BaselineSection, String> {
    let v3: BenchReportV3 =
        serde_json::from_slice(bytes).map_err(|e| format!("v3 artifact does not parse: {e}"))?;
    if v3.schema != V3_SCHEMA {
        return Err(format!(
            "expected a {V3_SCHEMA:?} artifact, got schema {:?}",
            v3.schema
        ));
    }
    let strip = |ws: &[WorkloadBenchV3]| {
        ws.iter()
            .map(|w| BaselineWorkload {
                name: w.name.clone(),
                profile_ms: w.profile_ms,
                simulate_ms: w.simulate_ms,
                eval_ms: w.eval_ms,
                warp_insts: w.warp_insts,
                cycles: w.cycles,
            })
            .collect()
    };
    // Touch the fields the conversion deliberately drops so the v3
    // mirror stays an exact decode of the committed artifact.
    let _ = (
        &v3.totals,
        &v3.baseline,
        &v3.quick_scale,
        v3.host_cpus,
        v3.workloads.first().map(|w| {
            (
                &w.kind,
                w.launches,
                w.blocks,
                w.warp_insts_per_sec,
                w.cycles_per_sec,
                w.intern_hits,
                w.intern_misses,
                w.intern_uncacheable,
                w.jobs,
                w.simulate_par_ms,
                w.par_speedup,
                w.pool_workers,
                w.simulate_pool_ms,
                w.pool_speedup,
            )
        }),
    );
    Ok(BaselineSection {
        build: format!("{} [{}]", v3.build, V3_ARTIFACT),
        scale: v3.scale,
        reps: v3.reps,
        workloads: strip(&v3.workloads),
        quick: strip(&v3.quick),
    })
}

/// Render the per-workload simulated-work counts (name, warp
/// instructions, cycles) as stable one-per-line text. CI writes this
/// for a `--jobs 1` and a `--jobs 2` quick run and `cmp`s the files
/// byte-for-byte — the cheapest possible cross-process bit-identity
/// check.
pub fn render_counts(workloads: &[WorkloadBench]) -> String {
    let mut out = String::new();
    for w in workloads {
        out.push_str(&format!("{} {} {}\n", w.name, w.warp_insts, w.cycles));
    }
    out
}

/// Compare a fresh `--quick` run against the committed artifact's
/// `quick` section: every workload must retain at least
/// `1 / REGRESSION_FACTOR` of the committed simulation throughput.
/// Returns the list of failures (empty = pass).
pub fn check_regressions(current: &[WorkloadBench], committed: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in current {
        let Some(base) = committed.quick.iter().find(|w| w.name == cur.name) else {
            failures.push(format!("{}: missing from committed artifact", cur.name));
            continue;
        };
        // Simulated work must be reproducible exactly; a drift here is a
        // correctness bug, not a perf regression.
        if cur.warp_insts != base.warp_insts || cur.cycles != base.cycles {
            failures.push(format!(
                "{}: simulated work drifted (warp_insts {} vs {}, cycles {} vs {})",
                cur.name, cur.warp_insts, base.warp_insts, cur.cycles, base.cycles
            ));
            continue;
        }
        let floor = base.warp_insts_per_sec / REGRESSION_FACTOR;
        if cur.warp_insts_per_sec < floor {
            failures.push(format!(
                "{}: throughput {:.0} warp-insts/s below floor {:.0} (committed {:.0} / {})",
                cur.name, cur.warp_insts_per_sec, floor, base.warp_insts_per_sec, REGRESSION_FACTOR
            ));
        }
        // Accuracy gate: both sampling modes must stay inside the
        // clean-baseline error envelope. Unlike throughput this is
        // deterministic, so there is no noise allowance.
        for (mode, err) in [
            ("two-phase", cur.two_phase_err_pct),
            ("live", cur.live_err_pct),
        ] {
            if err > ERROR_BOUND_PCT {
                failures.push(format!(
                    "{}: {mode} sampled-vs-full error {err:.2}% exceeds the \
                     {ERROR_BOUND_PCT}% clean-baseline bound",
                    cur.name
                ));
            }
        }
    }
    failures
}

/// Render a human summary table; includes per-workload speedup columns
/// when the baseline section covers the same scale.
pub fn render_summary(report: &BenchReport) -> String {
    let baseline = report.baseline.as_ref().filter(|b| b.scale == report.scale);
    let parallel = report.workloads.iter().any(|w| w.jobs > 1);
    let pooled = report.workloads.iter().any(|w| w.pool_workers > 1);
    let live = report.workloads.iter().any(|w| w.live_ms > 0.0);
    let mut headers = vec!["bench", "kind", "eval ms", "simulate ms", "Mwi/s", "hit%"];
    if parallel {
        headers.push("par x");
    }
    if pooled {
        headers.push("pool x");
    }
    if live {
        headers.push("live x");
    }
    if baseline.is_some() {
        headers.push("speedup");
    }
    let mut rows = Vec::new();
    let mut base_total = 0.0f64;
    for w in &report.workloads {
        let req = w.intern_hits + w.intern_misses + w.intern_uncacheable;
        let hit_pct = if req == 0 {
            0.0
        } else {
            100.0 * w.intern_hits as f64 / req as f64
        };
        let mut row = vec![
            w.name.clone(),
            w.kind.clone(),
            format!("{:.1}", w.eval_ms),
            format!("{:.1}", w.simulate_ms),
            format!("{:.2}", w.warp_insts_per_sec / 1e6),
            format!("{hit_pct:.0}"),
        ];
        if parallel {
            row.push(if w.jobs > 1 {
                format!("{:.2}x@{}", w.par_speedup, w.jobs)
            } else {
                "-".to_string()
            });
        }
        if pooled {
            row.push(if w.pool_workers > 1 {
                format!("{:.2}x@{}", w.pool_speedup, w.pool_workers)
            } else {
                "-".to_string()
            });
        }
        if live {
            row.push(if w.live_ms > 0.0 {
                format!("{:.2}x", w.live_speedup)
            } else {
                "-".to_string()
            });
        }
        if let Some(b) = baseline {
            match b.workloads.iter().find(|bw| bw.name == w.name) {
                Some(bw) if w.eval_ms > 0.0 => {
                    base_total += bw.eval_ms;
                    row.push(format!("{:.2}x", bw.eval_ms / w.eval_ms));
                }
                _ => row.push("-".to_string()),
            }
        }
        rows.push(row);
    }
    let mut out = crate::output::render_table(&headers, &rows);
    out.push_str(&format!(
        "\ntotal eval: {:.1} ms ({} scale, best of {} reps, {} host CPU{}; build: {})\n",
        report.totals.eval_ms,
        report.scale,
        report.reps,
        report.host_cpus,
        if report.host_cpus == 1 { "" } else { "s" },
        report.build
    ));
    if let Some(b) = baseline {
        if report.totals.eval_ms > 0.0 && base_total > 0.0 {
            out.push_str(&format!(
                "baseline:   {:.1} ms ({}) -> {:.2}x end-to-end\n",
                base_total,
                b.build,
                base_total / report.totals.eval_ms
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(name: &str, wips: f64) -> WorkloadBench {
        WorkloadBench {
            name: name.to_string(),
            kind: "regular".to_string(),
            launches: 1,
            blocks: 2,
            profile_ms: 1.0,
            simulate_ms: 10.0,
            eval_ms: 11.0,
            warp_insts: 1000,
            cycles: 500,
            warp_insts_per_sec: wips,
            cycles_per_sec: 50_000.0,
            intern_hits: 3,
            intern_misses: 1,
            intern_uncacheable: 0,
            jobs: 1,
            simulate_par_ms: 10.0,
            par_speedup: 1.0,
            pool_workers: 1,
            simulate_pool_ms: 10.0,
            pool_speedup: 1.0,
            two_phase_ms: 5.0,
            two_phase_err_pct: 2.0,
            live_ms: 4.0,
            live_err_pct: 3.0,
            live_speedup: 1.5,
        }
    }

    fn report() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            build: build_label(),
            host_cpus: 4,
            scale: "dev".to_string(),
            reps: 3,
            workloads: vec![wl("stream", 100_000.0)],
            totals: totals(&[wl("stream", 100_000.0)]),
            quick_scale: "tiny".to_string(),
            quick: vec![wl("stream", 100_000.0)],
            baseline: None,
        }
    }

    #[test]
    fn report_round_trips_and_schema_checks() {
        let r = report();
        let bytes = serde_json::to_vec(&r).unwrap();
        let back = parse_report(&bytes).unwrap();
        assert_eq!(back, r);

        let mut bad = r.clone();
        bad.schema = "tbpoint-bench/v0".to_string();
        let bytes = serde_json::to_vec(&bad).unwrap();
        assert!(parse_report(&bytes).unwrap_err().contains("schema"));

        assert!(parse_report(b"not json").is_err());
    }

    #[test]
    fn regression_check_trips_only_below_floor() {
        let committed = report();
        // Same throughput: pass. Half-ish: still pass (factor 2). Tenth: fail.
        assert!(check_regressions(&[wl("stream", 100_000.0)], &committed).is_empty());
        assert!(check_regressions(&[wl("stream", 51_000.0)], &committed).is_empty());
        let fails = check_regressions(&[wl("stream", 10_000.0)], &committed);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("below floor"));
    }

    #[test]
    fn regression_check_catches_work_drift() {
        let committed = report();
        let mut cur = wl("stream", 100_000.0);
        cur.warp_insts += 1;
        let fails = check_regressions(&[cur], &committed);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("drifted"));
    }

    #[test]
    fn regression_check_catches_missing_workload() {
        let committed = report();
        let fails = check_regressions(&[wl("conv", 100_000.0)], &committed);
        assert!(fails[0].contains("missing"));
    }

    #[test]
    fn v1_artifact_converts_into_a_baseline_section() {
        let v1 = r#"{"schema":"tbpoint-bench/v1","build":"old build","scale":"dev","reps":3,
            "workloads":[{"name":"stream","kind":"regular","launches":1,"blocks":2,
                "profile_ms":1.5,"simulate_ms":20.0,"eval_ms":21.5,"warp_insts":1000,
                "cycles":500,"warp_insts_per_sec":50000.0,"cycles_per_sec":25000.0,
                "intern_hits":3,"intern_misses":1,"intern_uncacheable":0}],
            "totals":{"profile_ms":1.5,"simulate_ms":20.0,"eval_ms":21.5,
                "warp_insts":1000,"cycles":500,"warp_insts_per_sec":50000.0},
            "quick_scale":"tiny","quick":[],"baseline":null}"#;
        let b = baseline_from_v1(v1.as_bytes()).unwrap();
        assert_eq!(b.scale, "dev");
        assert!(b.build.contains("BENCH_PR4.json"));
        assert_eq!(b.workloads.len(), 1);
        assert_eq!(b.workloads[0].simulate_ms, 20.0);
        assert_eq!(b.workloads[0].warp_insts, 1000);
        assert!(b.quick.is_empty());

        // A v2 artifact must be rejected as a v1 baseline source.
        let v2 = v1.replace("tbpoint-bench/v1", "tbpoint-bench/v2");
        assert!(baseline_from_v1(v2.as_bytes())
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn v2_artifact_converts_into_a_baseline_section() {
        let v2 = r#"{"schema":"tbpoint-bench/v2","build":"pr5 build","host_cpus":4,
            "scale":"dev","reps":3,
            "workloads":[{"name":"stream","kind":"regular","launches":1,"blocks":2,
                "profile_ms":1.2,"simulate_ms":15.0,"eval_ms":16.2,"warp_insts":1000,
                "cycles":500,"warp_insts_per_sec":66000.0,"cycles_per_sec":33000.0,
                "intern_hits":3,"intern_misses":1,"intern_uncacheable":0,
                "jobs":2,"simulate_par_ms":9.0,"par_speedup":1.67}],
            "totals":{"profile_ms":1.2,"simulate_ms":15.0,"eval_ms":16.2,
                "warp_insts":1000,"cycles":500,"warp_insts_per_sec":66000.0},
            "quick_scale":"tiny","quick":[],"baseline":null}"#;
        let b = baseline_from_v2(v2.as_bytes()).unwrap();
        assert_eq!(b.scale, "dev");
        assert!(b.build.contains("BENCH_PR5.json"));
        assert_eq!(b.workloads.len(), 1);
        assert_eq!(b.workloads[0].simulate_ms, 15.0);
        assert_eq!(b.workloads[0].warp_insts, 1000);

        // A v3 artifact must be rejected as a v2 baseline source.
        let v3 = v2.replace("tbpoint-bench/v2", "tbpoint-bench/v3");
        assert!(baseline_from_v2(v3.as_bytes())
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn regression_check_trips_on_error_bound_breach() {
        let committed = report();
        let mut cur = wl("stream", 100_000.0);
        cur.live_err_pct = ERROR_BOUND_PCT + 2.0;
        let fails = check_regressions(&[cur], &committed);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("live"));
        assert!(fails[0].contains("clean-baseline bound"));

        let mut cur = wl("stream", 100_000.0);
        cur.two_phase_err_pct = ERROR_BOUND_PCT + 0.5;
        let fails = check_regressions(&[cur], &committed);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("two-phase"));
    }

    #[test]
    fn v3_artifact_converts_into_a_baseline_section() {
        let v3 = r#"{"schema":"tbpoint-bench/v3","build":"pr7 build","host_cpus":4,
            "scale":"dev","reps":3,
            "workloads":[{"name":"stream","kind":"regular","launches":1,"blocks":2,
                "profile_ms":1.1,"simulate_ms":12.0,"eval_ms":13.1,"warp_insts":1000,
                "cycles":500,"warp_insts_per_sec":83000.0,"cycles_per_sec":41000.0,
                "intern_hits":3,"intern_misses":1,"intern_uncacheable":0,
                "jobs":2,"simulate_par_ms":7.0,"par_speedup":1.71,
                "pool_workers":2,"simulate_pool_ms":8.0,"pool_speedup":1.5}],
            "totals":{"profile_ms":1.1,"simulate_ms":12.0,"eval_ms":13.1,
                "warp_insts":1000,"cycles":500,"warp_insts_per_sec":83000.0},
            "quick_scale":"tiny","quick":[],"baseline":null}"#;
        let b = baseline_from_v3(v3.as_bytes()).unwrap();
        assert_eq!(b.scale, "dev");
        assert!(b.build.contains("BENCH_PR7.json"));
        assert_eq!(b.workloads.len(), 1);
        assert_eq!(b.workloads[0].simulate_ms, 12.0);
        assert_eq!(b.workloads[0].warp_insts, 1000);

        // A v4 artifact must be rejected as a v3 baseline source.
        let v4 = v3.replace("tbpoint-bench/v3", "tbpoint-bench/v4");
        assert!(baseline_from_v3(v4.as_bytes())
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn summary_shows_live_speedup_column() {
        let s = render_summary(&report());
        assert!(s.contains("live x"), "summary:\n{s}");
        assert!(s.contains("1.50x"), "summary:\n{s}");
    }

    #[test]
    fn summary_shows_pool_speedup_column() {
        let mut r = report();
        r.workloads[0].pool_workers = 4;
        r.workloads[0].simulate_pool_ms = 5.0;
        r.workloads[0].pool_speedup = 2.0;
        let s = render_summary(&r);
        assert!(s.contains("pool x"), "summary:\n{s}");
        assert!(s.contains("2.00x@4"), "summary:\n{s}");
    }

    #[test]
    fn measure_pool_leg_matches_serial_counts() {
        // The pooled leg asserts bit-identity internally; run it once
        // on the tiny roster to exercise that assertion.
        let plan = ExecPlan {
            sim_jobs: 1,
            pool_workers: 2,
        };
        let rows = measure(Scale::Tiny, 1, plan, |_| {});
        assert!(!rows.is_empty());
        for w in &rows {
            assert_eq!(w.pool_workers, 2);
            assert!(w.simulate_pool_ms >= 0.0);
        }
    }

    #[test]
    fn counts_render_one_stable_line_per_workload() {
        let text = render_counts(&[wl("a", 1.0), wl("b", 1.0)]);
        assert_eq!(
            text,
            "a 1000 500
b 1000 500
"
        );
    }

    #[test]
    fn summary_shows_parallel_speedup_column() {
        let mut r = report();
        r.workloads[0].jobs = 4;
        r.workloads[0].simulate_par_ms = 4.0;
        r.workloads[0].par_speedup = 2.5;
        let s = render_summary(&r);
        assert!(
            s.contains("par x"),
            "summary:
{s}"
        );
        assert!(
            s.contains("2.50x@4"),
            "summary:
{s}"
        );
    }

    #[test]
    fn totals_sum_workloads() {
        let t = totals(&[wl("a", 1.0), wl("b", 1.0)]);
        assert_eq!(t.eval_ms, 22.0);
        assert_eq!(t.warp_insts, 2000);
        assert_eq!(t.warp_insts_per_sec, 100_000.0);
    }

    #[test]
    fn summary_includes_speedup_against_baseline() {
        let mut r = report();
        r.baseline = Some(BaselineSection {
            build: "pre-PR4".to_string(),
            scale: "dev".to_string(),
            reps: 3,
            workloads: vec![BaselineWorkload {
                name: "stream".to_string(),
                profile_ms: 2.0,
                simulate_ms: 20.0,
                eval_ms: 22.0,
                warp_insts: 1000,
                cycles: 500,
            }],
            quick: vec![],
        });
        let s = render_summary(&r);
        assert!(s.contains("2.00x"), "summary:\n{s}");
        assert!(s.contains("end-to-end"));
    }
}

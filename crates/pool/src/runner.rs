//! Deterministic work-stealing execution of index-addressed jobs.
//!
//! The pool's contract is the *canonical-order merge*: jobs are
//! identified by their index in `0..n`, every job writes its result
//! into its own index slot, and the output vector is assembled in index
//! order after all workers join. Which worker runs which index — and
//! when — is timing-dependent and deliberately unspecified; because the
//! job closure sees only its index, the assembled output is a pure
//! function of the closure and therefore bit-identical to a serial
//! `for` loop at every worker count.
//!
//! Distribution is stealing-based so the pool tolerates skewed job
//! costs (real sweeps mix tiny and enormous launches): each worker is
//! seeded with a contiguous chunk of indices and pops from the *front*
//! of its own deque; when it runs dry it steals from the *back* of the
//! longest sibling deque. Front/back separation keeps owner and thief
//! at opposite ends of a chunk and preserves the rough locality of the
//! seeding.
//!
//! Error discipline matches the rest of the workspace: the first
//! observed failure raises a stop flag (no *new* jobs start; in-flight
//! jobs finish), failures are collected keyed by index, and the lowest
//! recorded index is reported. The success path — the one whose bytes
//! CI compares — is always complete and canonical.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a mutex, ignoring poisoning: every structure the pool shares is
/// written with disjoint-index or append-only updates, so a sibling
/// worker's panic cannot leave it torn; the scope re-raises the
/// original panic once the workers join.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-worker index deques, seeded with contiguous chunks.
struct Queues {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl Queues {
    /// Split `0..n` into `workers` contiguous chunks (front-loaded
    /// remainder, so chunk sizes differ by at most one).
    fn seeded(workers: usize, n: usize) -> Self {
        let base = n / workers;
        let extra = n % workers;
        let mut next = 0usize;
        let deques = (0..workers)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let chunk: VecDeque<usize> = (next..next + len).collect();
                next += len;
                Mutex::new(chunk)
            })
            .collect();
        Queues { deques }
    }

    /// Pop the next index from `w`'s own deque (front = seeded order).
    fn pop_own(&self, w: usize) -> Option<usize> {
        lock(&self.deques[w]).pop_front()
    }

    /// Steal one index from the back of the longest sibling deque.
    /// Rescans on a lost race; returns `None` only when every deque is
    /// empty, which is terminal because nothing enqueues after seeding.
    fn steal(&self, thief: usize) -> Option<usize> {
        loop {
            let mut best: Option<(usize, usize)> = None; // (len, victim)
            for v in 0..self.deques.len() {
                if v == thief {
                    continue;
                }
                let len = lock(&self.deques[v]).len();
                if len > 0 && best.is_none_or(|(l, _)| len > l) {
                    best = Some((len, v));
                }
            }
            let (_, v) = best?;
            if let Some(i) = lock(&self.deques[v]).pop_back() {
                return Some(i);
            }
        }
    }
}

/// One worker: drain own deque, then steal, until the work or the run
/// is exhausted. Results land in per-index slots — workers never touch
/// each other's output — and any failure raises the stop flag after
/// being recorded.
// tbpoint-phase: shard
fn worker_loop<T, E, F>(
    w: usize,
    queues: &Queues,
    stop: &AtomicBool,
    slots: &[Mutex<Option<T>>],
    errors: &Mutex<Vec<(usize, E)>>,
    job: &F,
) where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    while !stop.load(Ordering::Relaxed) {
        let Some(i) = queues.pop_own(w).or_else(|| queues.steal(w)) else {
            return;
        };
        match job(i) {
            Ok(v) => *lock(&slots[i]) = Some(v),
            Err(e) => {
                lock(errors).push((i, e));
                stop.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Run `n` independent jobs across `workers` threads and return their
/// results **in index order** — bit-identical to the serial loop
/// `(0..n).map(job).collect()` at every worker count.
///
/// `workers` is clamped to `[1, n]`; `workers <= 1` runs the plain
/// serial loop on the calling thread (no pool setup, exact serial error
/// semantics). On failure the error with the lowest recorded index is
/// returned together with that index; jobs that had not started when
/// the first failure was observed are skipped.
///
/// # Errors
///
/// Returns `(index, error)` for the lowest-indexed recorded failure.
// tbpoint-phase: coordinator
pub fn run_indexed<T, E, F>(workers: usize, n: usize, job: F) -> Result<Vec<T>, (usize, E)>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(job(i).map_err(|e| (i, e))?);
        }
        return Ok(out);
    }

    let queues = Queues::seeded(workers, n);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    {
        let (queues, stop, slots, errors, job) = (&queues, &stop, &slots, &errors, &job);
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || worker_loop(w, queues, stop, slots, errors, job));
            }
        });
    }

    let mut errs = errors.into_inner().unwrap_or_else(PoisonError::into_inner);
    errs.sort_by_key(|(i, _)| *i);
    if let Some((i, e)) = errs.into_iter().next() {
        return Err((i, e));
    }
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(v) => out.push(v),
            // Unreachable by construction — a claimed index always runs
            // to a slot write or an error, and an unclaimed index
            // implies a recorded error, returned above. Recompute
            // inline (deterministic: the job sees only its index)
            // rather than panicking.
            None => out.push(job(i).map_err(|e| (i, e))?),
        }
    }
    Ok(out)
}

/// [`run_indexed`] for infallible jobs: map `0..n` through `job` across
/// `workers` threads, results in index order.
// tbpoint-phase: coordinator
pub fn map_indexed<T, F>(workers: usize, n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match run_indexed::<T, std::convert::Infallible, _>(workers, n, |i| Ok(job(i))) {
        Ok(v) => v,
        Err((_, e)) => match e {},
    }
}

/// How one supervised unit failed (payload of [`run_supervised`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitError<E> {
    /// The unit panicked; the payload message was captured and the
    /// panic contained to this index — the pool kept draining.
    Panicked(String),
    /// The unit returned its ordinary error.
    Failed(E),
}

impl<E: std::fmt::Display> std::fmt::Display for UnitError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnitError::Panicked(msg) => write!(f, "unit panicked: {msg}"),
            UnitError::Failed(e) => e.fmt(f),
        }
    }
}

/// Best-effort text of a panic payload (the common `&str` / `String`
/// shapes; anything else gets a fixed label so messages stay
/// deterministic).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_indexed`] with worker supervision: every unit runs under
/// [`std::panic::catch_unwind`], so a panicking unit yields
/// [`UnitError::Panicked`] **for its index only** while the pool keeps
/// draining — no stop flag, no escaped panic, every index completes.
/// Results come back as one per-index `Result` in canonical order,
/// bit-identical to the serial loop at every worker count (which
/// failure *set* you see is not timing-dependent, unlike
/// [`run_indexed`]'s stop-early semantics).
///
/// The `AssertUnwindSafe` is justified by the pool's own contract: a
/// unit sees only its index and writes only its own slot, so a sibling
/// panic cannot expose torn state to the remaining units.
///
/// This is the service-layer entry point: a long-running daemon must
/// contain a poisoned request without dropping the rest of the batch,
/// and needs the full per-index outcome vector to retry transient
/// failures deterministically.
// tbpoint-phase: coordinator
pub fn run_supervised<T, E, F>(workers: usize, n: usize, job: F) -> Vec<Result<T, UnitError<E>>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    map_indexed(workers, n, |i| {
        match catch_unwind(AssertUnwindSafe(|| job(i))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(UnitError::Failed(e)),
            Err(payload) => Err(UnitError::Panicked(panic_message(payload))),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Deliberately skewed work: low indices are ~100x heavier, so with
    /// contiguous chunk seeding the workers owning the tail run dry and
    /// must steal to finish.
    fn skewed(i: usize) -> u64 {
        let rounds = if i < 8 { 200_000 } else { 2_000 };
        let mut acc = i as u64;
        for k in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
        }
        acc
    }

    #[test]
    fn output_is_identical_at_every_worker_count() {
        let n = 64;
        let serial: Vec<u64> = (0..n).map(skewed).collect();
        for workers in [1, 2, 3, 4, 9, 64, 200] {
            assert_eq!(map_indexed(workers, n, skewed), serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i * 10), vec![0]);
        assert_eq!(map_indexed(1, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let _ = map_indexed(4, 50, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn single_failure_is_reported_with_its_index() {
        for workers in [1, 2, 4] {
            let r = run_indexed(workers, 20, |i| {
                if i == 13 {
                    Err(format!("boom {i}"))
                } else {
                    Ok(skewed(i))
                }
            });
            assert_eq!(r, Err((13, "boom 13".to_string())), "workers={workers}");
        }
    }

    #[test]
    fn failure_stops_scheduling_new_jobs() {
        let started = AtomicUsize::new(0);
        let r = run_indexed(2, 1000, |i| {
            started.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err(i)
            } else {
                Ok(skewed(i))
            }
        });
        let (idx, _) = r.expect_err("must fail");
        assert_eq!(idx, 0);
        // In-flight jobs may finish, but the stop flag prevents the
        // remaining ~998 from starting.
        assert!(started.load(Ordering::Relaxed) < 1000);
    }

    #[test]
    fn supervised_contains_a_panic_to_its_index() {
        for workers in [1, 2, 4] {
            let out = run_supervised::<_, String, _>(workers, 12, |i| {
                if i == 5 {
                    panic!("unit 5 exploded");
                }
                Ok(skewed(i))
            });
            assert_eq!(out.len(), 12, "workers={workers}");
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    assert_eq!(
                        r,
                        &Err(UnitError::Panicked("unit 5 exploded".to_string())),
                        "workers={workers}"
                    );
                } else {
                    assert_eq!(r, &Ok(skewed(i)), "workers={workers} index {i}");
                }
            }
        }
    }

    #[test]
    fn supervised_keeps_ordinary_errors_and_completes_every_index() {
        // Mixed panics and plain errors: unlike run_indexed there is no
        // stop flag, so the outcome vector is a pure function of the
        // job — identical at every worker count.
        let expect: Vec<Result<usize, UnitError<String>>> = (0..30)
            .map(|i| {
                if i % 11 == 4 {
                    Err(UnitError::Panicked(format!("boom {i}")))
                } else if i % 7 == 2 {
                    Err(UnitError::Failed(format!("fail {i}")))
                } else {
                    Ok(i * 3)
                }
            })
            .collect();
        for workers in [1, 3, 8] {
            let out = run_supervised(workers, 30, |i| {
                if i % 11 == 4 {
                    panic!("boom {i}");
                } else if i % 7 == 2 {
                    Err(format!("fail {i}"))
                } else {
                    Ok(i * 3)
                }
            });
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn unit_error_displays_both_shapes() {
        let p: UnitError<String> = UnitError::Panicked("kaboom".into());
        assert_eq!(p.to_string(), "unit panicked: kaboom");
        let f: UnitError<String> = UnitError::Failed("plain".into());
        assert_eq!(f.to_string(), "plain");
    }

    #[test]
    fn reported_failure_is_the_lowest_recorded_index() {
        // With several failing jobs the *set* that runs before the stop
        // flag lands is timing-dependent, but the report is always the
        // lowest index among the recorded failures — and serial
        // execution pins it to the globally lowest.
        let r = run_indexed(1, 20, |i| if i % 7 == 3 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err((3, 3)));
    }
}

// Tests assert by panicking on purpose.
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # tbpoint-pool
//!
//! The deterministic cross-launch job pool and the unified parallelism
//! API for the TBPoint workspace.
//!
//! TBPoint's pipelines are piles of *independent* work items — launches
//! inside [`run_tbpoint`](../tbpoint_core/predict/fn.run_tbpoint.html),
//! benchmarks inside a sweep, config points inside an ablation. PR 5's
//! intra-launch SM sharding showed that fine-grained parallelism pays
//! heavy coordination rent (par_speedup 0.18–0.74x on a 1-CPU host);
//! this crate adds the coarse-grained axis: whole launches and whole
//! sweep units scheduled across worker threads.
//!
//! Three pieces:
//!
//! * [`runner`] — [`run_indexed`] / [`map_indexed`], a work-stealing
//!   pool over index-addressed jobs whose output is **bit-identical to
//!   a serial loop at every worker count** (canonical-order merge:
//!   results land in per-index slots and are assembled in index order;
//!   only scheduling order is timing-dependent); plus
//!   [`run_supervised`], the service-grade variant that contains a
//!   panicking unit to its own index ([`UnitError::Panicked`]) while
//!   the pool keeps draining.
//! * [`plan`] — [`ExecPlan`]`{ sim_jobs, pool_workers }`, the single
//!   validated home for every parallelism knob, resolved once with
//!   precedence CLI > environment > config > auto. Adjustments
//!   (zero or unparseable requests) surface as structured
//!   [`tbpoint_obs::EventKind::ExecPlanAdjusted`] events instead of
//!   free-form stderr prints.
//! * [`unit`] — the [`SweepUnit`] trait (id, run, serializable output)
//!   shared by the pool, the crash-safe resume manifest, and the
//!   future serve layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod runner;
pub mod unit;

pub use plan::{
    resolve, resolve_from_env, ExecPlan, PlanInputs, PlanNote, PlanSource, ENV_POOL_WORKERS,
    ENV_SIM_JOBS,
};
pub use runner::{map_indexed, run_indexed, run_supervised, UnitError};
pub use unit::SweepUnit;

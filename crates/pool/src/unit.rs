//! The shared sweep-unit abstraction.
//!
//! PR 3's resumable sweeps identified units by a `(index, key)` pair
//! and a computation closure threaded through `run_resumable`. That
//! closure interface worked for one caller but could not be shared: the
//! pool needs to schedule units, the resume manifest needs their stable
//! identity, and the future serve layer needs to accept them over a
//! wire. [`SweepUnit`] names the contract once:
//!
//! * **identity** — [`SweepUnit::id`] keys the crash-safe unit file and
//!   the manifest entry; it must be unique and stable across runs, or
//!   `--resume` cannot match completed work.
//! * **execution** — [`SweepUnit::run`] is `&self` and the unit is
//!   `Sync`, so the pool may run any subset of units concurrently.
//! * **serialization** — [`SweepUnit::Output`] round-trips through the
//!   vendored serde, so a unit's result can be persisted atomically and
//!   re-read for byte-identical resume assembly.
//!
//! Units must be *independent* (no unit reads another's output) and
//! *deterministic* (same unit → same output bytes); both are what make
//! pool output bit-identical to serial at every worker count.

use serde::{Deserialize, Serialize};

/// One independent, deterministic, persistable piece of sweep work.
pub trait SweepUnit: Sync {
    /// The persisted result payload. Serialization must be
    /// deterministic (the vendored serde is: field order and float
    /// rendering are stable), because resume compares bytes.
    type Output: Serialize + Deserialize + Send;

    /// The failure type reported by [`run`](SweepUnit::run).
    type Error: Send;

    /// Stable identity: names the unit file and the manifest entry.
    /// Must be unique within a sweep and identical across runs of the
    /// same sweep.
    fn id(&self) -> String;

    /// Execute the unit. Must not depend on other units' results or on
    /// execution order.
    fn run(&self) -> Result<Self::Output, Self::Error>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_indexed;

    struct Doubler(usize);

    impl SweepUnit for Doubler {
        type Output = u64;
        type Error = String;

        fn id(&self) -> String {
            format!("double-{}", self.0)
        }

        fn run(&self) -> Result<u64, String> {
            Ok(2 * self.0 as u64)
        }
    }

    #[test]
    fn units_schedule_through_the_pool() {
        let units: Vec<Doubler> = (0..10).map(Doubler).collect();
        for workers in [1, 2, 4] {
            let out = run_indexed(workers, units.len(), |i| units[i].run()).unwrap();
            assert_eq!(out, (0..10).map(|i| 2 * i).collect::<Vec<u64>>());
        }
        assert_eq!(units[3].id(), "double-3");
    }
}

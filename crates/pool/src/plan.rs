//! `ExecPlan`: the single validated home for every parallelism knob.
//!
//! Before this crate, parallelism was scattered: `SimOptions::jobs` on
//! the simulator, `TbpointConfig::sim_jobs` on the pipeline config, the
//! `TBPOINT_JOBS` environment variable, the CLI `--jobs` flag — each
//! with its own clamp-and-warn path. An [`ExecPlan`] names both axes in
//! one place:
//!
//! * `sim_jobs` — **intra-launch** SM sharding (PR 5): how many threads
//!   shard the SMs of a single simulated launch. The simulator still
//!   clamps this structurally to the SM count.
//! * `pool_workers` — **cross-launch** pool workers: how many threads
//!   the [`runner`](crate::runner) pool uses to schedule whole launches
//!   and sweep units.
//!
//! Resolution happens in exactly one place ([`resolve`]) with fixed
//! precedence per axis: **CLI flag > environment variable > config >
//! auto**. A request of `0` or unparseable environment text resolves
//! the axis to serial (`1`) and produces a [`PlanNote`]; the caller
//! emits each note as one structured
//! [`EventKind::ExecPlanAdjusted`](tbpoint_obs::EventKind) event — the
//! replacement for the old free-form stderr warnings.
//!
//! The plan is an *execution* concern, deliberately kept out of
//! `TbpointConfig` and every serialized result artifact: results are
//! bit-identical at any worker count, so recording the worker count
//! with the result would break artifact-level byte comparison for no
//! information gain.

use serde::{Deserialize, Serialize};
use tbpoint_obs::{Event, EventKind, PlanAxis};

/// Environment variable for the intra-launch axis ([`ExecPlan::sim_jobs`]).
pub const ENV_SIM_JOBS: &str = "TBPOINT_JOBS";

/// Environment variable for the cross-launch axis
/// ([`ExecPlan::pool_workers`]).
pub const ENV_POOL_WORKERS: &str = "TBPOINT_POOL_WORKERS";

/// The two-axis parallelism plan. Both axes are worker counts with
/// serial (`1`) as the neutral value; `0` never survives resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecPlan {
    /// Intra-launch SM-shard workers per simulated launch (PR 5's
    /// `--jobs` axis; structurally clamped to the SM count by the
    /// simulator).
    pub sim_jobs: usize,
    /// Cross-launch pool workers scheduling whole launches / sweep
    /// units (this crate's `--pool-workers` axis).
    pub pool_workers: usize,
}

impl Default for ExecPlan {
    /// Serial on both axes.
    fn default() -> Self {
        ExecPlan {
            sim_jobs: 1,
            pool_workers: 1,
        }
    }
}

impl ExecPlan {
    /// Serial on both axes (alias for [`Default`], reads better at call
    /// sites).
    #[must_use]
    pub fn serial() -> Self {
        ExecPlan::default()
    }

    /// The plan handed to work running *inside* one pool unit.
    ///
    /// The outermost scheduler spends the `pool_workers` budget once;
    /// nested fan-out would multiply thread counts (`workers x workers`
    /// oversubscription), so units run with `pool_workers = 1` while
    /// the intra-launch axis is preserved.
    #[must_use]
    pub fn unit(self) -> Self {
        ExecPlan {
            pool_workers: 1,
            ..self
        }
    }

    /// Both axes clamped to at least one. Defensive normalization for
    /// plans that arrive from deserialized configs without passing
    /// through [`resolve`].
    #[must_use]
    pub fn normalized(self) -> Self {
        ExecPlan {
            sim_jobs: self.sim_jobs.max(1),
            pool_workers: self.pool_workers.max(1),
        }
    }
}

/// Where a resolved (and possibly adjusted) axis value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// A CLI flag (`--jobs` / `--pool-workers`).
    Cli,
    /// An environment variable (`TBPOINT_JOBS` / `TBPOINT_POOL_WORKERS`).
    Env,
    /// A config value carried by the caller.
    Config,
}

impl std::fmt::Display for PlanSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlanSource::Cli => "command line",
            PlanSource::Env => "environment",
            PlanSource::Config => "config",
        })
    }
}

/// One adjustment made during resolution: the requested value was zero
/// or unparseable and the axis fell back to serial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNote {
    /// Which axis was adjusted.
    pub axis: PlanAxis,
    /// Which precedence level supplied the bad request.
    pub source: PlanSource,
    /// The request as written (flag value, raw environment text, or
    /// config field rendering).
    pub raw: String,
    /// Parsed numeric request; `0` when `raw` did not parse at all.
    pub requested: u64,
    /// The value resolution actually used.
    pub used: usize,
}

impl PlanNote {
    /// The structured observability event for this adjustment; callers
    /// render it with [`tbpoint_obs::event_line`]. Plan resolution has
    /// no simulated clock, so the event carries cycle 0.
    #[must_use]
    pub fn event(&self) -> Event {
        Event {
            cycle: 0,
            kind: EventKind::ExecPlanAdjusted {
                axis: self.axis,
                requested: self.requested,
                used: self.used as u64,
            },
        }
    }
}

impl std::fmt::Display for PlanNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let axis = match self.axis {
            PlanAxis::SimJobs => "sim_jobs",
            PlanAxis::PoolWorkers => "pool_workers",
        };
        write!(
            f,
            "{axis}: requested `{}` via {}; using {} (serial)",
            self.raw, self.source, self.used
        )
    }
}

/// Everything [`resolve`] consults, gathered by the caller so the
/// decision itself is pure and unit-testable. `None` means "not
/// provided at this precedence level".
#[derive(Debug, Clone, Default)]
pub struct PlanInputs<'a> {
    /// `--jobs` flag value, if given.
    pub cli_sim_jobs: Option<usize>,
    /// `--pool-workers` flag value, if given.
    pub cli_pool_workers: Option<usize>,
    /// Raw `TBPOINT_JOBS` text, if set.
    pub env_sim_jobs: Option<&'a str>,
    /// Raw `TBPOINT_POOL_WORKERS` text, if set.
    pub env_pool_workers: Option<&'a str>,
    /// A config-supplied plan (lowest explicit precedence).
    pub config: Option<ExecPlan>,
    /// Fallback when no level supplies an axis. The default is serial;
    /// interactive drivers typically pass the host CPU count for
    /// `pool_workers`.
    pub auto: ExecPlan,
}

/// Resolve one axis through the precedence chain, recording a
/// [`PlanNote`] whenever a level supplied an unusable request.
fn resolve_axis(
    axis: PlanAxis,
    cli: Option<usize>,
    env: Option<&str>,
    config: Option<usize>,
    auto: usize,
    notes: &mut Vec<PlanNote>,
) -> usize {
    let mut note = |source: PlanSource, raw: &str, requested: u64| {
        notes.push(PlanNote {
            axis,
            source,
            raw: raw.to_string(),
            requested,
            used: 1,
        });
        1
    };
    if let Some(v) = cli {
        return if v == 0 {
            note(PlanSource::Cli, "0", 0)
        } else {
            v
        };
    }
    if let Some(raw) = env {
        // An explicit but unusable request resolves to serial rather
        // than falling through: the user *did* ask for something, and
        // silently substituting a lower level's value would hide that.
        return match raw.trim().parse::<usize>() {
            Ok(0) => note(PlanSource::Env, raw, 0),
            Ok(v) => v,
            Err(_) => note(PlanSource::Env, raw, 0),
        };
    }
    if let Some(v) = config {
        return if v == 0 {
            note(PlanSource::Config, "0", 0)
        } else {
            v
        };
    }
    auto.max(1)
}

/// Resolve an [`ExecPlan`] from explicit inputs with precedence
/// **CLI > environment > config > auto**, per axis independently.
///
/// Returns the plan plus one [`PlanNote`] per adjustment (zero or
/// unparseable request at the winning level → that axis is serial).
#[must_use]
pub fn resolve(inputs: &PlanInputs<'_>) -> (ExecPlan, Vec<PlanNote>) {
    let mut notes = Vec::new();
    let sim_jobs = resolve_axis(
        PlanAxis::SimJobs,
        inputs.cli_sim_jobs,
        inputs.env_sim_jobs,
        inputs.config.map(|c| c.sim_jobs),
        inputs.auto.sim_jobs,
        &mut notes,
    );
    let pool_workers = resolve_axis(
        PlanAxis::PoolWorkers,
        inputs.cli_pool_workers,
        inputs.env_pool_workers,
        inputs.config.map(|c| c.pool_workers),
        inputs.auto.pool_workers,
        &mut notes,
    );
    (
        ExecPlan {
            sim_jobs,
            pool_workers,
        },
        notes,
    )
}

/// [`resolve`] with the environment level read from the live process
/// environment (`TBPOINT_JOBS` / `TBPOINT_POOL_WORKERS`).
#[must_use]
pub fn resolve_from_env(
    cli_sim_jobs: Option<usize>,
    cli_pool_workers: Option<usize>,
    config: Option<ExecPlan>,
    auto: ExecPlan,
) -> (ExecPlan, Vec<PlanNote>) {
    let env_sim_jobs = std::env::var(ENV_SIM_JOBS).ok();
    let env_pool_workers = std::env::var(ENV_POOL_WORKERS).ok();
    resolve(&PlanInputs {
        cli_sim_jobs,
        cli_pool_workers,
        env_sim_jobs: env_sim_jobs.as_deref(),
        env_pool_workers: env_pool_workers.as_deref(),
        config,
        auto,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of(inputs: &PlanInputs<'_>) -> ExecPlan {
        resolve(inputs).0
    }

    #[test]
    fn explicit_flags_win_over_environment() {
        let inputs = PlanInputs {
            cli_sim_jobs: Some(3),
            cli_pool_workers: Some(5),
            env_sim_jobs: Some("7"),
            env_pool_workers: Some("9"),
            ..PlanInputs::default()
        };
        let (plan, notes) = resolve(&inputs);
        assert_eq!(
            plan,
            ExecPlan {
                sim_jobs: 3,
                pool_workers: 5
            }
        );
        assert!(notes.is_empty());
    }

    #[test]
    fn explicit_zero_clamps_to_serial_with_a_note() {
        let (plan, notes) = resolve(&PlanInputs {
            cli_sim_jobs: Some(0),
            ..PlanInputs::default()
        });
        assert_eq!(plan.sim_jobs, 1);
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].axis, tbpoint_obs::PlanAxis::SimJobs);
        assert_eq!(notes[0].source, PlanSource::Cli);
        assert_eq!(notes[0].requested, 0);
        assert_eq!(notes[0].used, 1);
    }

    #[test]
    fn environment_applies_when_no_flag() {
        let plan = plan_of(&PlanInputs {
            env_sim_jobs: Some("5"),
            env_pool_workers: Some(" 6 "),
            ..PlanInputs::default()
        });
        assert_eq!(
            plan,
            ExecPlan {
                sim_jobs: 5,
                pool_workers: 6
            }
        );
    }

    #[test]
    fn bad_or_zero_environment_resolves_to_serial() {
        for raw in ["0", "banana", "-3", ""] {
            let (plan, notes) = resolve(&PlanInputs {
                env_pool_workers: Some(raw),
                ..PlanInputs::default()
            });
            assert_eq!(plan.pool_workers, 1, "raw={raw:?}");
            assert_eq!(notes.len(), 1, "raw={raw:?}");
            assert_eq!(notes[0].raw, raw);
        }
    }

    #[test]
    fn config_sits_below_environment_and_above_auto() {
        let cfg = Some(ExecPlan {
            sim_jobs: 2,
            pool_workers: 3,
        });
        let auto = ExecPlan {
            sim_jobs: 1,
            pool_workers: 8,
        };
        let plan = plan_of(&PlanInputs {
            config: cfg,
            auto,
            ..PlanInputs::default()
        });
        assert_eq!(
            plan,
            ExecPlan {
                sim_jobs: 2,
                pool_workers: 3
            }
        );
        let plan = plan_of(&PlanInputs {
            env_pool_workers: Some("4"),
            config: cfg,
            auto,
            ..PlanInputs::default()
        });
        assert_eq!(plan.pool_workers, 4);
        assert_eq!(plan.sim_jobs, 2);
    }

    #[test]
    fn auto_fills_last_and_is_never_zero() {
        let plan = plan_of(&PlanInputs {
            auto: ExecPlan {
                sim_jobs: 0,
                pool_workers: 8,
            },
            ..PlanInputs::default()
        });
        assert_eq!(
            plan,
            ExecPlan {
                sim_jobs: 1,
                pool_workers: 8
            }
        );
    }

    #[test]
    fn unit_plan_spends_the_pool_budget_once() {
        let plan = ExecPlan {
            sim_jobs: 2,
            pool_workers: 8,
        };
        assert_eq!(
            plan.unit(),
            ExecPlan {
                sim_jobs: 2,
                pool_workers: 1
            }
        );
    }

    #[test]
    fn notes_render_as_structured_events() {
        let (_, notes) = resolve(&PlanInputs {
            env_sim_jobs: Some("nope"),
            ..PlanInputs::default()
        });
        let line = tbpoint_obs::event_line(&notes[0].event());
        assert!(line.contains("ExecPlanAdjusted"), "line={line}");
        let back = tbpoint_obs::parse_event(&line).unwrap();
        assert_eq!(back, notes[0].event());
    }

    #[test]
    fn normalized_never_returns_zero() {
        let p = ExecPlan {
            sim_jobs: 0,
            pool_workers: 0,
        }
        .normalized();
        assert_eq!(p, ExecPlan::serial());
    }
}

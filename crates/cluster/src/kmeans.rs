//! k-means with k-means++ seeding and BIC model selection.
//!
//! This is what the SimPoint tool does internally, needed here for the
//! **Ideal-SimPoint** baseline: cluster per-sampling-unit BBVs, score each
//! candidate `k` with the Bayesian Information Criterion, and keep the
//! smallest `k` whose score reaches a fixed fraction of the best score
//! (SimPoint's own selection rule).

use crate::point::{euclidean, Point};
use crate::Clustering;
use tbpoint_stats::SplitMix64;

/// Result of one k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Point-to-cluster assignment (dense ids).
    pub clustering: Clustering,
    /// Final cluster centroids.
    pub centroids: Vec<Point>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// BIC score of this clustering (higher is better).
    pub bic: f64,
}

/// Lloyd's algorithm with k-means++ seeding.
///
/// `k` is clamped to the number of points. Runs at most `max_iters`
/// iterations (convergence is detected earlier when assignments stop
/// changing). Deterministic for a fixed `seed`.
pub fn kmeans(points: &[Point], k: usize, seed: u64, max_iters: usize) -> KMeansResult {
    let n = points.len();
    let k = k.clamp(1, n.max(1));
    if n == 0 {
        return KMeansResult {
            clustering: Clustering {
                assignments: vec![],
                num_clusters: 0,
            },
            centroids: vec![],
            inertia: 0.0,
            bic: f64::NEG_INFINITY,
        };
    }
    let mut rng = SplitMix64::new(seed);
    let mut centroids = seed_plus_plus(points, k, &mut rng);
    let mut assignments = vec![0usize; n];

    for _ in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest_centroid(p, &centroids);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums: Vec<Point> = vec![vec![0.0; points[0].len()]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, x) in sums[assignments[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                *c = sum.iter().map(|s| s / count as f64).collect();
            } else {
                // Re-seed an empty cluster at the point farthest from its
                // centroid, the standard fix-up.
                let cur = c.clone();
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| euclidean(a, &cur).total_cmp(&euclidean(b, &cur)))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                *c = points[far].clone();
            }
        }
        if !changed {
            break;
        }
    }

    let inertia: f64 = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| {
            let d = euclidean(p, &centroids[a]);
            d * d
        })
        .sum();
    let clustering = Clustering::from_assignments(&assignments);
    let bic = bic_score(points, &assignments, &centroids);
    KMeansResult {
        clustering,
        centroids,
        inertia,
        bic,
    }
}

fn nearest_centroid(p: &Point, centroids: &[Point]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = euclidean(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, the rest D²-weighted.
fn seed_plus_plus(points: &[Point], k: usize, rng: &mut SplitMix64) -> Vec<Point> {
    let n = points.len();
    let mut centroids = Vec::with_capacity(k);
    // next_index(n) < n <= usize::MAX, so the u64 round-trip is exact.
    #[allow(clippy::cast_possible_truncation)]
    centroids.push(points[rng.next_index(n as u64) as usize].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| {
            let d = euclidean(p, &centroids[0]);
            d * d
        })
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            // All points identical to a centroid; any index works.
            #[allow(clippy::cast_possible_truncation)]
            {
                rng.next_index(n as u64) as usize
            }
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let newest = points[pick].clone();
        for (i, p) in points.iter().enumerate() {
            let d = euclidean(p, &newest);
            d2[i] = d2[i].min(d * d);
        }
        centroids.push(newest);
    }
    centroids
}

/// X-means/SimPoint-style BIC of a hard clustering under a spherical
/// Gaussian model. Higher is better.
pub fn bic_score(points: &[Point], assignments: &[usize], centroids: &[Point]) -> f64 {
    let n = points.len();
    let k = centroids.len();
    if n == 0 || k == 0 {
        return f64::NEG_INFINITY;
    }
    let d = points[0].len() as f64;
    // Pooled ML variance estimate.
    let rss: f64 = points
        .iter()
        .zip(assignments)
        .map(|(p, &a)| {
            let e = euclidean(p, &centroids[a]);
            e * e
        })
        .sum();
    let denom = (n.saturating_sub(k)) as f64;
    let sigma2 = if denom > 0.0 { rss / (denom * d) } else { 0.0 };
    // Perfectly tight clusters: variance collapses; treat as "very good"
    // but finite so comparisons across k still behave.
    let sigma2 = sigma2.max(1e-12);

    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    let mut loglik = 0.0;
    for &r in &sizes {
        if r == 0 {
            continue;
        }
        let rf = r as f64;
        loglik += rf * rf.ln()
            - rf * (n as f64).ln()
            - rf * d / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
            - (rf - 1.0) * d / 2.0;
    }
    let params = k as f64 * (d + 1.0);
    loglik - params / 2.0 * (n as f64).ln()
}

/// Run k-means for `k = 1..=max_k` and apply SimPoint's selection rule:
/// the smallest `k` whose BIC reaches `quality` (default 0.9 in SimPoint)
/// of the way from the worst to the best observed BIC.
pub fn kmeans_best_bic(points: &[Point], max_k: usize, seed: u64, quality: f64) -> KMeansResult {
    assert!(!points.is_empty(), "cannot cluster zero points");
    let max_k = max_k.clamp(1, points.len());
    let runs: Vec<KMeansResult> = (1..=max_k)
        .map(|k| kmeans(points, k, seed ^ (k as u64) << 32, 100))
        .collect();
    let best = runs.iter().map(|r| r.bic).fold(f64::NEG_INFINITY, f64::max);
    let worst = runs.iter().map(|r| r.bic).fold(f64::INFINITY, f64::min);
    let cutoff = if (best - worst).abs() < 1e-12 {
        best
    } else {
        worst + quality.clamp(0.0, 1.0) * (best - worst)
    };
    // The best run always passes its own cutoff; the fallback arm is only
    // reachable if every BIC is NaN, in which case the largest k (the last
    // run) is the least-wrong answer.
    let mut runs = runs;
    let idx = runs
        .iter()
        .position(|r| r.bic >= cutoff)
        .unwrap_or(runs.len() - 1);
    runs.swap_remove(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Point> {
        let mut pts = vec![];
        for i in 0..20 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![10.0 + i as f64 * 0.01, 5.0]);
        }
        pts
    }

    #[test]
    fn kmeans_separates_blobs() {
        let pts = two_blobs();
        let r = kmeans(&pts, 2, 42, 100);
        assert_eq!(r.clustering.num_clusters, 2);
        // Points alternate blob membership by construction.
        let a0 = r.clustering.assignments[0];
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(r.clustering.assignments[i], a0);
        }
        let a1 = r.clustering.assignments[1];
        assert_ne!(a0, a1);
        assert!(r.inertia < 1.0, "inertia = {}", r.inertia);
    }

    #[test]
    fn kmeans_k1_centroid_is_mean() {
        let pts: Vec<Point> = vec![vec![0.0], vec![10.0]];
        let r = kmeans(&pts, 1, 7, 100);
        assert_eq!(r.clustering.num_clusters, 1);
        assert!((r.centroids[0][0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn kmeans_clamps_k_to_n() {
        let pts: Vec<Point> = vec![vec![0.0], vec![1.0]];
        let r = kmeans(&pts, 10, 7, 100);
        assert!(r.clustering.num_clusters <= 2);
    }

    #[test]
    fn kmeans_empty_input() {
        let r = kmeans(&[], 3, 7, 100);
        assert_eq!(r.clustering.num_clusters, 0);
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn kmeans_deterministic_for_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, 3, 99, 100);
        let b = kmeans(&pts, 3, 99, 100);
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn kmeans_survives_nan_coordinates() {
        // Regression for the partial_cmp(..).unwrap() sites: a NaN feature
        // (e.g. a 0/0 normalization upstream) must not panic the clustering
        // pipeline end to end, and clean points must still get assignments.
        let mut pts = two_blobs();
        pts.push(vec![f64::NAN, 1.0]);
        pts.push(vec![f64::NAN, f64::NAN]);
        let r = kmeans(&pts, 2, 42, 100);
        assert_eq!(r.clustering.assignments.len(), pts.len());
        let best = kmeans_best_bic(&pts, 4, 42, 0.9);
        assert_eq!(best.clustering.assignments.len(), pts.len());
        let reps = best.clustering.representatives(&pts);
        assert_eq!(reps.len(), best.clustering.num_clusters);
    }

    #[test]
    fn bic_prefers_true_k_on_separated_blobs() {
        let pts = two_blobs();
        let k1 = kmeans(&pts, 1, 5, 100);
        let k2 = kmeans(&pts, 2, 5, 100);
        assert!(
            k2.bic > k1.bic,
            "k2 bic {} should beat k1 bic {}",
            k2.bic,
            k1.bic
        );
    }

    #[test]
    fn best_bic_picks_two_for_two_blobs() {
        let pts = two_blobs();
        let r = kmeans_best_bic(&pts, 6, 5, 0.9);
        assert_eq!(r.clustering.num_clusters, 2);
    }

    #[test]
    fn best_bic_identical_points_one_cluster() {
        let pts: Vec<Point> = (0..10).map(|_| vec![3.0, 3.0]).collect();
        let r = kmeans_best_bic(&pts, 4, 1, 0.9);
        assert_eq!(r.clustering.num_clusters, 1);
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn best_bic_rejects_empty() {
        kmeans_best_bic(&[], 3, 1, 0.9);
    }
}

//! Silhouette analysis: a clustering-quality score independent of the
//! criterion that produced the clustering.
//!
//! Used by the diagnostics in `tbpoint inspect`-style tooling and by the
//! ablation study to sanity-check that the σ thresholds of Section III
//! produce *well-separated* launch/epoch clusters rather than arbitrary
//! cuts.

use crate::point::{euclidean, Point};
use crate::Clustering;

/// Mean silhouette coefficient over all points, in `[-1, 1]`.
///
/// For each point: `s = (b - a) / max(a, b)` with `a` the mean distance
/// to its own cluster's other members and `b` the smallest mean distance
/// to another cluster. Points in singleton clusters contribute 0 (the
/// standard convention). Returns 0 when fewer than two clusters exist.
pub fn silhouette_score(points: &[Point], clustering: &Clustering) -> f64 {
    assert_eq!(points.len(), clustering.assignments.len());
    let k = clustering.num_clusters;
    if k < 2 || points.is_empty() {
        return 0.0;
    }
    let members: Vec<Vec<usize>> = (0..k).map(|c| clustering.members(c)).collect();
    let mut total = 0.0;
    for (i, p) in points.iter().enumerate() {
        let own = clustering.assignments[i];
        if members[own].len() < 2 {
            continue; // singleton: s = 0
        }
        let a = members[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| euclidean(p, &points[j]))
            .sum::<f64>()
            / (members[own].len() - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && !members[c].is_empty())
            .map(|c| {
                members[c]
                    .iter()
                    .map(|&j| euclidean(p, &points[j]))
                    .sum::<f64>()
                    / members[c].len() as f64
            })
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    total / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::{hierarchical_cluster, Linkage};

    fn blobs() -> (Vec<Point>, Clustering) {
        let mut pts = vec![];
        let mut asg = vec![];
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.01]);
            asg.push(0);
        }
        for i in 0..10 {
            pts.push(vec![100.0 + i as f64 * 0.01]);
            asg.push(1);
        }
        (
            pts,
            Clustering {
                assignments: asg,
                num_clusters: 2,
            },
        )
    }

    #[test]
    fn well_separated_blobs_score_near_one() {
        let (pts, c) = blobs();
        let s = silhouette_score(&pts, &c);
        assert!(s > 0.99, "s = {s}");
    }

    #[test]
    fn wrong_split_scores_poorly() {
        let (pts, _) = blobs();
        // Assign alternating points to clusters, ignoring geometry.
        let asg: Vec<usize> = (0..pts.len()).map(|i| i % 2).collect();
        let c = Clustering {
            assignments: asg,
            num_clusters: 2,
        };
        let s = silhouette_score(&pts, &c);
        assert!(s < 0.1, "bad clustering should score low, got {s}");
    }

    #[test]
    fn single_cluster_scores_zero() {
        let (pts, _) = blobs();
        let c = Clustering {
            assignments: vec![0; pts.len()],
            num_clusters: 1,
        };
        assert_eq!(silhouette_score(&pts, &c), 0.0);
    }

    #[test]
    fn hierarchical_output_scores_well_on_blobs() {
        let (pts, _) = blobs();
        let c = hierarchical_cluster(&pts, 1.0, Linkage::Complete);
        assert_eq!(c.num_clusters, 2);
        assert!(silhouette_score(&pts, &c) > 0.99);
    }

    #[test]
    fn singletons_contribute_zero() {
        let pts: Vec<Point> = vec![vec![0.0], vec![0.1], vec![50.0]];
        let c = Clustering {
            assignments: vec![0, 0, 1],
            num_clusters: 2,
        };
        let s = silhouette_score(&pts, &c);
        // Two good points + one singleton (0): average below 1 but high.
        assert!(s > 0.6 && s < 1.0, "s = {s}");
    }
}

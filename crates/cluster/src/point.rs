//! Feature-vector points and distances.

/// A feature vector. Inter-launch vectors have 4 dimensions (Eq. 2),
/// intra-launch (epoch) vectors have 1 (Eq. 5), BBVs have one per basic
/// block — so a plain `Vec<f64>` is the right representation.
pub type Point = Vec<f64>;

/// Euclidean (L2) distance between two points of equal dimensionality.
///
/// # Panics
/// Panics if the dimensionalities differ.
pub fn euclidean(a: &Point, b: &Point) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Component-wise mean of a non-empty set of points.
pub fn centroid(points: &[Point]) -> Point {
    assert!(!points.is_empty(), "centroid of empty set");
    let dim = points[0].len();
    let mut c = vec![0.0; dim];
    for p in points {
        for (ci, pi) in c.iter_mut().zip(p) {
            *ci += pi;
        }
    }
    for ci in &mut c {
        *ci /= points.len() as f64;
    }
    c
}

/// Normalize each dimension by its mean across all points (Eq. 2 of the
/// paper: "each of which is normalized with its average value across all
/// kernel launches so that they have the same order of magnitude").
///
/// Dimensions whose mean is zero are left as-is (they are uniformly zero).
pub fn normalize_by_mean(points: &[Point]) -> Vec<Point> {
    if points.is_empty() {
        return vec![];
    }
    let means = centroid(points);
    points
        .iter()
        .map(|p| {
            p.iter()
                .zip(&means)
                .map(|(x, m)| {
                    if m.abs() < f64::MIN_POSITIVE {
                        *x
                    } else {
                        x / m
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basic() {
        assert_eq!(euclidean(&vec![0.0, 0.0], &vec![3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&vec![1.0], &vec![1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn euclidean_rejects_mismatch() {
        euclidean(&vec![1.0], &vec![1.0, 2.0]);
    }

    #[test]
    fn centroid_basic() {
        let c = centroid(&[vec![0.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(c, vec![1.0, 3.0]);
    }

    #[test]
    fn normalize_by_mean_makes_unit_means() {
        let pts = vec![vec![10.0, 1000.0], vec![30.0, 3000.0]];
        let n = normalize_by_mean(&pts);
        assert_eq!(n[0], vec![0.5, 0.5]);
        assert_eq!(n[1], vec![1.5, 1.5]);
    }

    #[test]
    fn normalize_handles_zero_dimension() {
        let pts = vec![vec![0.0, 2.0], vec![0.0, 4.0]];
        let n = normalize_by_mean(&pts);
        assert_eq!(n[0], vec![0.0, 2.0 / 3.0]);
        assert_eq!(n[1][0], 0.0);
    }

    #[test]
    fn normalize_empty_is_empty() {
        assert!(normalize_by_mean(&[]).is_empty());
    }
}

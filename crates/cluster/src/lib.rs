// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-cluster
//!
//! Clustering algorithms for the TBPoint reproduction.
//!
//! Two algorithms, matching Section III of the paper:
//!
//! * **Hierarchical agglomerative clustering** with a *distance threshold*
//!   stopping rule — TBPoint's choice for both inter-launch and
//!   intra-launch (epoch) clustering. The paper defines the threshold σ as
//!   "the maximum distance between any two points in a cluster", which is
//!   **complete linkage**; single and average linkage are provided for the
//!   ablation benches.
//! * **k-means** (k-means++ seeding, Lloyd iterations) with **BIC** model
//!   selection — what the SimPoint tool uses, needed for the Ideal-SimPoint
//!   baseline and for the "hierarchical vs k-means" design ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchical;
pub mod kmeans;
pub mod point;
pub mod silhouette;

pub use hierarchical::{hierarchical_cluster, Linkage};
pub use kmeans::{kmeans, kmeans_best_bic, KMeansResult};
pub use point::{centroid, euclidean, normalize_by_mean, Point};
pub use silhouette::silhouette_score;

use serde::{Deserialize, Serialize};

/// The outcome of a clustering run: a cluster id per input point.
///
/// Cluster ids are dense (`0..num_clusters`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    /// `assignments[i]` is the cluster of input point `i`.
    pub assignments: Vec<usize>,
    /// Number of distinct clusters.
    pub num_clusters: usize,
}

impl Clustering {
    /// Build from raw assignments, compacting ids to `0..n`.
    pub fn from_assignments(raw: &[usize]) -> Self {
        let mut map = std::collections::BTreeMap::new();
        let mut assignments = Vec::with_capacity(raw.len());
        for &a in raw {
            let next = map.len();
            let id = *map.entry(a).or_insert(next);
            assignments.push(id);
        }
        Clustering {
            assignments,
            num_clusters: map.len(),
        }
    }

    /// Indices of the points in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.num_clusters];
        for &a in &self.assignments {
            s[a] += 1;
        }
        s
    }

    /// For each cluster, the member whose point is closest to the cluster
    /// centroid — the paper's simulation-point selection rule ("the kernel
    /// launch with the inter-feature vector closest to the center").
    ///
    /// Ties (common when many members are *identical*, e.g. the sampling
    /// units of a perfectly uniform kernel) break toward the member in the
    /// middle of the cluster's time order: boundary members sit in warm-up
    /// or drain transients, so the central one is the least biased
    /// representative.
    pub fn representatives(&self, points: &[Point]) -> Vec<usize> {
        assert_eq!(points.len(), self.assignments.len());
        let mut reps = vec![usize::MAX; self.num_clusters];
        #[allow(clippy::needless_range_loop)] // c is a cluster id, not a position
        for c in 0..self.num_clusters {
            let members = self.members(c);
            let member_points: Vec<Point> = members.iter().map(|&i| points[i].clone()).collect();
            let center = centroid(&member_points);
            let best_d = members
                .iter()
                .map(|&i| euclidean(&points[i], &center))
                .fold(f64::INFINITY, f64::min);
            let mid = members[members.len() / 2];
            // Dense cluster ids guarantee at least one member; `mid` is the
            // (unreachable) fallback rather than a panic.
            let best = members
                .iter()
                .copied()
                .filter(|&i| euclidean(&points[i], &center) <= best_d + 1e-12)
                .min_by_key(|&i| i.abs_diff(mid))
                .unwrap_or(mid);
            reps[c] = best;
        }
        reps
    }

    /// Split point `i` out into a brand-new singleton cluster.
    ///
    /// This is the post-processing step of epoch clustering: epochs with a
    /// high variation factor (outlier thread blocks) are "removed from the
    /// cluster \[they belong\] to and assigned \[their\] own cluster".
    pub fn isolate(&mut self, i: usize) {
        assert!(i < self.assignments.len());
        let old = self.assignments[i];
        // Already a singleton? Nothing to do.
        if self.assignments.iter().filter(|&&a| a == old).count() == 1 {
            return;
        }
        self.assignments[i] = self.num_clusters;
        self.num_clusters += 1;
    }

    /// Maximum pairwise distance within any cluster (diagnostic; complete
    /// linkage with threshold σ keeps this near σ).
    pub fn max_intra_distance(&self, points: &[Point]) -> f64 {
        let mut worst: f64 = 0.0;
        for c in 0..self.num_clusters {
            let m = self.members(c);
            for (ai, &a) in m.iter().enumerate() {
                for &b in &m[ai + 1..] {
                    worst = worst.max(euclidean(&points[a], &points[b]));
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignments_compacts() {
        let c = Clustering::from_assignments(&[5, 5, 9, 5, 2]);
        assert_eq!(c.num_clusters, 3);
        assert_eq!(c.assignments, vec![0, 0, 1, 0, 2]);
    }

    #[test]
    fn members_and_sizes() {
        let c = Clustering::from_assignments(&[0, 1, 0, 1, 1]);
        assert_eq!(c.members(0), vec![0, 2]);
        assert_eq!(c.members(1), vec![1, 3, 4]);
        assert_eq!(c.sizes(), vec![2, 3]);
    }

    #[test]
    fn representative_is_closest_to_centroid() {
        let points: Vec<Point> = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]];
        let c = Clustering::from_assignments(&[0, 0, 0, 1]);
        let reps = c.representatives(&points);
        // Centroid of {0,1,2} is 1.0 -> representative is index 1.
        assert_eq!(reps, vec![1, 3]);
    }

    #[test]
    fn isolate_moves_to_new_cluster() {
        let mut c = Clustering::from_assignments(&[0, 0, 0]);
        c.isolate(1);
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.assignments, vec![0, 1, 0]);
        // Isolating a point that is already a singleton is a no-op.
        c.isolate(1);
        assert_eq!(c.num_clusters, 2);
    }

    #[test]
    fn max_intra_distance_reports_worst_pair() {
        let points: Vec<Point> = vec![vec![0.0], vec![3.0], vec![100.0]];
        let c = Clustering::from_assignments(&[0, 0, 1]);
        assert_eq!(c.max_intra_distance(&points), 3.0);
    }
}

//! Hierarchical agglomerative clustering with a distance-threshold stop.
//!
//! The paper picks hierarchical clustering over k-means precisely because
//! "the number of clusters can be determined automatically by setting the
//! *distance threshold* σ, which is the maximum distance between any two
//! points in a cluster" (Section III). That definition corresponds to
//! **complete linkage**: merging stops when no pair of clusters can merge
//! without some intra-cluster pair exceeding σ.
//!
//! Implementation: classic O(n² log n) agglomerative loop over a condensed
//! distance matrix updated with the Lance–Williams recurrences. The largest
//! inputs in this reproduction are a few thousand epochs, well within range.

use crate::point::{euclidean, Point};
use crate::Clustering;

/// Linkage criterion: how the distance between two *clusters* is derived
/// from point distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance (chains easily; ablation only).
    Single,
    /// Maximum pairwise distance — matches the paper's σ definition.
    Complete,
    /// Unweighted average pairwise distance (UPGMA; ablation only).
    Average,
}

/// Agglomeratively cluster `points`, merging greedily while the closest
/// pair of clusters is within `threshold` under `linkage`.
///
/// Returns dense cluster ids ordered by first appearance. An empty input
/// yields an empty clustering; a single point yields one cluster.
pub fn hierarchical_cluster(points: &[Point], threshold: f64, linkage: Linkage) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering {
            assignments: vec![],
            num_clusters: 0,
        };
    }
    if n == 1 {
        return Clustering {
            assignments: vec![0],
            num_clusters: 1,
        };
    }

    // dist[i][j] for i < j, stored in a flat upper-triangular layout.
    let idx = |i: usize, j: usize| {
        debug_assert!(i < j);
        i * n - i * (i + 1) / 2 + (j - i - 1)
    };
    let mut dist = vec![0.0f64; n * (n - 1) / 2];
    for i in 0..n {
        for j in (i + 1)..n {
            dist[idx(i, j)] = euclidean(&points[i], &points[j]);
        }
    }

    // active[c]: cluster c still exists; size[c]: member count.
    let mut active = vec![true; n];
    let mut size = vec![1usize; n];
    // parent pointers for final assignment extraction.
    let mut assign: Vec<usize> = (0..n).collect();

    // Nearest-neighbour cache: nn[i] = (distance, j) over active j != i.
    // Recomputing only invalidated entries keeps the merge loop at an
    // amortised O(n^2) instead of the naive O(n^3) full rescan.
    let pair_dist = |dist: &[f64], i: usize, j: usize| dist[idx(i.min(j), i.max(j))];
    let compute_nn = |dist: &[f64], active: &[bool], i: usize| -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        #[allow(clippy::needless_range_loop)] // j indexes two parallel arrays
        for j in 0..n {
            if j == i || !active[j] {
                continue;
            }
            let d = pair_dist(dist, i, j);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, j));
            }
        }
        best
    };
    let mut nn: Vec<Option<(f64, usize)>> = (0..n).map(|i| compute_nn(&dist, &active, i)).collect();

    loop {
        // Closest active pair via the NN cache.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if !active[i] {
                continue;
            }
            if let Some((d, j)) = nn[i] {
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((a, b, d)) = best else { break };
        if d > threshold {
            break;
        }
        let (a, b) = (a.min(b), a.max(b));
        // Merge b into a; update distances via Lance–Williams.
        for k in 0..n {
            if !active[k] || k == a || k == b {
                continue;
            }
            let dak = pair_dist(&dist, a, k);
            let dbk = pair_dist(&dist, b, k);
            let new = match linkage {
                Linkage::Single => dak.min(dbk),
                Linkage::Complete => dak.max(dbk),
                Linkage::Average => {
                    let (sa, sb) = (size[a] as f64, size[b] as f64);
                    (sa * dak + sb * dbk) / (sa + sb)
                }
            };
            dist[idx(a.min(k), a.max(k))] = new;
        }
        size[a] += size[b];
        active[b] = false;
        for asg in assign.iter_mut() {
            if *asg == b {
                *asg = a;
            }
        }
        // Repair the NN cache: entries pointing at a or b are stale (a's
        // distances changed, b vanished); a itself needs a fresh scan.
        nn[b] = None;
        nn[a] = compute_nn(&dist, &active, a);
        for i in 0..n {
            if !active[i] || i == a {
                continue;
            }
            match nn[i] {
                Some((_, j)) if j == a || j == b => {
                    nn[i] = compute_nn(&dist, &active, i);
                }
                _ => {
                    // Distance to the merged cluster may have *shrunk*
                    // under single/average linkage — check it.
                    let dia = pair_dist(&dist, i, a);
                    if nn[i].is_none_or(|(bd, _)| dia < bd) {
                        nn[i] = Some((dia, a));
                    }
                }
            }
        }
    }

    Clustering::from_assignments(&assign)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| vec![x]).collect()
    }

    #[test]
    fn empty_and_singleton() {
        let c = hierarchical_cluster(&[], 1.0, Linkage::Complete);
        assert_eq!(c.num_clusters, 0);
        let c = hierarchical_cluster(&pts(&[5.0]), 1.0, Linkage::Complete);
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.assignments, vec![0]);
    }

    #[test]
    fn two_well_separated_groups() {
        let points = pts(&[0.0, 0.1, 0.2, 10.0, 10.1]);
        let c = hierarchical_cluster(&points, 1.0, Linkage::Complete);
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[1], c.assignments[2]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_ne!(c.assignments[0], c.assignments[3]);
    }

    #[test]
    fn threshold_zero_keeps_distinct_points_apart() {
        let points = pts(&[0.0, 1.0, 2.0]);
        let c = hierarchical_cluster(&points, 0.0, Linkage::Complete);
        assert_eq!(c.num_clusters, 3);
    }

    #[test]
    fn threshold_zero_merges_identical_points() {
        let points = pts(&[1.0, 1.0, 2.0]);
        let c = hierarchical_cluster(&points, 0.0, Linkage::Complete);
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.assignments[0], c.assignments[1]);
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let points = pts(&[0.0, 5.0, 50.0, 500.0]);
        let c = hierarchical_cluster(&points, 1e9, Linkage::Complete);
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn complete_linkage_respects_sigma_semantics() {
        // With complete linkage, no cluster may contain a pair farther
        // apart than sigma — the paper's definition of the threshold.
        let points = pts(&[0.0, 0.4, 0.8, 1.2, 1.6, 2.0]);
        let sigma = 0.9;
        let c = hierarchical_cluster(&points, sigma, Linkage::Complete);
        assert!(c.max_intra_distance(&points) <= sigma + 1e-12);
    }

    #[test]
    fn single_linkage_chains_where_complete_does_not() {
        // A chain of points each 0.9 apart, threshold 1.0: single linkage
        // merges the whole chain; complete stops early.
        let points = pts(&[0.0, 0.9, 1.8, 2.7, 3.6]);
        let single = hierarchical_cluster(&points, 1.0, Linkage::Single);
        let complete = hierarchical_cluster(&points, 1.0, Linkage::Complete);
        assert_eq!(single.num_clusters, 1);
        assert!(complete.num_clusters > 1);
    }

    #[test]
    fn average_linkage_between_the_two() {
        let points = pts(&[0.0, 0.9, 1.8, 2.7, 3.6]);
        let s = hierarchical_cluster(&points, 1.0, Linkage::Single).num_clusters;
        let a = hierarchical_cluster(&points, 1.0, Linkage::Average).num_clusters;
        let c = hierarchical_cluster(&points, 1.0, Linkage::Complete).num_clusters;
        assert!(s <= a && a <= c, "s={s} a={a} c={c}");
    }

    #[test]
    fn multidimensional_points() {
        let points = vec![
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.05, 0.0, 0.0, 0.0],
            vec![5.0, 5.0, 5.0, 5.0],
        ];
        let c = hierarchical_cluster(&points, 0.1, Linkage::Complete);
        assert_eq!(c.num_clusters, 2);
    }

    #[test]
    fn homogeneous_launches_collapse_to_one_cluster() {
        // The stream benchmark scenario: hundreds of identical launches
        // must land in one cluster (inter-launch savings, Fig. 11).
        let points: Vec<Point> = (0..200).map(|_| vec![1.0, 1.0, 1.0, 0.0]).collect();
        let c = hierarchical_cluster(&points, 0.1, Linkage::Complete);
        assert_eq!(c.num_clusters, 1);
    }
}

//! Human-readable rendering of kernel programs, used by `tbpoint
//! inspect` and handy in test failure output.

use crate::inst::{AddrPattern, Op};
use crate::program::{Cond, Dist, Node, TripCount};

fn op_str(op: &Op) -> String {
    match op {
        Op::IAlu => "ialu".into(),
        Op::FAlu => "falu".into(),
        Op::Sfu => "sfu".into(),
        Op::LdGlobal(p) => format!("ld.global {}", pattern_str(p)),
        Op::StGlobal(p) => format!("st.global {}", pattern_str(p)),
        Op::LdShared => "ld.shared".into(),
        Op::StShared => "st.shared".into(),
        Op::Barrier => "bar.sync".into(),
    }
}

fn pattern_str(p: &AddrPattern) -> String {
    match p {
        AddrPattern::Coalesced { region, stride } => format!("coalesced[r{region} +{stride}B]"),
        AddrPattern::Strided { region, stride } => format!("strided[r{region} +{stride}B]"),
        AddrPattern::Random { region, bytes } => {
            format!("random[r{region} {}KiB]", bytes / 1024)
        }
        AddrPattern::Broadcast { region } => format!("broadcast[r{region}]"),
    }
}

fn dist_str(d: &Dist) -> String {
    match d {
        Dist::Uniform => "uniform".into(),
        Dist::PowerLaw { alpha } => format!("powerlaw(a={alpha})"),
        Dist::Bimodal { p_heavy } => format!("bimodal(p={p_heavy})"),
    }
}

fn trips_str(t: &TripCount) -> String {
    match t {
        TripCount::Const(n) => format!("x{n}"),
        TripCount::PerBlock {
            base, spread, dist, ..
        } => {
            format!("x[{base}..{}] per-block {}", base + spread, dist_str(dist))
        }
        TripCount::PerThread {
            base, spread, dist, ..
        } => {
            format!("x[{base}..{}] per-thread {}", base + spread, dist_str(dist))
        }
        TripCount::PerBlockPhase {
            base,
            spread,
            phase_len,
            dist,
            ..
        } => {
            format!(
                "x[{base}..{}] per-{phase_len}-block-phase {}",
                base + spread,
                dist_str(dist)
            )
        }
    }
}

fn cond_str(c: &Cond) -> String {
    match c {
        Cond::Always => "always".into(),
        Cond::Never => "never".into(),
        Cond::ThreadProb { p, .. } => format!("per-thread p={p}"),
        Cond::BlockProb { p, .. } => format!("per-block p={p}"),
        Cond::LaneLt(k) => format!("lane < {k}"),
    }
}

/// Render a program tree with 2-space indentation.
pub fn render_program(node: &Node) -> String {
    let mut out = String::new();
    render(node, 0, &mut out);
    out
}

fn render(node: &Node, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match node {
        Node::Block { id, insts } => {
            out.push_str(&format!("{pad}bb{}:\n", id.0));
            for i in insts {
                out.push_str(&format!("{pad}  {}\n", op_str(&i.op)));
            }
        }
        Node::Seq(ns) => {
            for n in ns {
                render(n, depth, out);
            }
        }
        Node::If { cond, then_, else_ } => {
            out.push_str(&format!("{pad}if {} {{\n", cond_str(cond)));
            render(then_, depth + 1, out);
            if let Some(e) = else_ {
                out.push_str(&format!("{pad}}} else {{\n"));
                render(e, depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        Node::Loop { trips, body } => {
            out.push_str(&format!("{pad}loop {} {{\n", trips_str(trips)));
            render(body, depth + 1, out);
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::types::WARP_SIZE;

    #[test]
    fn renders_nested_structure() {
        let mut b = KernelBuilder::new("t", 1, WARP_SIZE);
        let site = b.fresh_site();
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Random {
                region: 2,
                bytes: 4096 * 1024,
            }),
        ]);
        let iffy = b.if_(Cond::LaneLt(8), body, None);
        let program = b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 7,
                dist: Dist::Uniform,
                site,
            },
            iffy,
        );
        let k = b.finish(program);
        let s = render_program(&k.program);
        assert!(s.contains("loop x[1..8] per-thread uniform {"), "{s}");
        assert!(s.contains("if lane < 8 {"), "{s}");
        assert!(s.contains("ld.global random[r2 4096KiB]"), "{s}");
        assert!(s.contains("bb0:"), "{s}");
        // Balanced braces.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn renders_every_op_kind() {
        for op in [
            Op::IAlu,
            Op::FAlu,
            Op::Sfu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
            Op::StGlobal(AddrPattern::Strided {
                region: 1,
                stride: 128,
            }),
            Op::LdShared,
            Op::StShared,
            Op::Barrier,
        ] {
            assert!(!op_str(&op).is_empty());
        }
        assert_eq!(op_str(&Op::Barrier), "bar.sync");
        assert_eq!(
            op_str(&Op::LdGlobal(AddrPattern::Broadcast { region: 3 })),
            "ld.global broadcast[r3]"
        );
    }
}

//! Kernels, launches and the builder that wires them together.

use crate::inst::{Inst, Op};
use crate::program::{Cond, Node, TripCount};
use crate::types::{BasicBlockId, LaunchId, WARP_SIZE};
use serde::{Deserialize, Serialize};

/// A GPGPU kernel: a thread program plus its static resource footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Human-readable name (benchmark abbreviation from Table VI).
    pub name: String,
    /// Kernel-wide seed feeding every deterministic decision.
    pub seed: u64,
    /// Threads per thread block (CUDA `blockDim`).
    pub threads_per_block: u32,
    /// Registers per thread — limits SM occupancy.
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes — limits SM occupancy.
    pub smem_per_block: u32,
    /// The structured thread program.
    pub program: Node,
    /// Number of basic blocks (BBV dimensionality).
    pub num_basic_blocks: u16,
}

impl Kernel {
    /// Warps per thread block (rounded up).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(WARP_SIZE)
    }

    /// Structural sanity checks; see [`ValidateError`] for the rules.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.threads_per_block == 0 {
            return Err(ValidateError::EmptyBlock);
        }
        if self.program.count_static_insts() == 0 {
            return Err(ValidateError::EmptyProgram);
        }
        // Basic-block ids must be unique and within num_basic_blocks.
        let mut seen = vec![false; self.num_basic_blocks as usize];
        let mut err = None;
        self.program.visit(&mut |n| {
            if let Node::Block { id, .. } = n {
                match seen.get_mut(id.0 as usize) {
                    None => err = Some(ValidateError::BlockIdOutOfRange(*id)),
                    Some(s) if *s => err = Some(ValidateError::DuplicateBlockId(*id)),
                    Some(s) => *s = true,
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        // Barriers must be block-uniform: every enclosing If/Loop must make
        // the same decision for all threads of the block, or some threads
        // would wait forever at the barrier.
        Self::check_barrier_uniformity(&self.program, true)?;
        Ok(())
    }

    fn check_barrier_uniformity(node: &Node, block_uniform: bool) -> Result<(), ValidateError> {
        match node {
            Node::Block { insts, .. } => {
                if !block_uniform && insts.iter().any(|i| matches!(i.op, Op::Barrier)) {
                    return Err(ValidateError::DivergentBarrier);
                }
                Ok(())
            }
            Node::Seq(ns) => {
                for n in ns {
                    Self::check_barrier_uniformity(n, block_uniform)?;
                }
                Ok(())
            }
            Node::If { cond, then_, else_ } => {
                let uniform = block_uniform
                    && matches!(cond, Cond::Always | Cond::Never | Cond::BlockProb { .. });
                Self::check_barrier_uniformity(then_, uniform)?;
                if let Some(e) = else_ {
                    Self::check_barrier_uniformity(e, uniform)?;
                }
                Ok(())
            }
            Node::Loop { trips, body } => {
                let uniform = block_uniform
                    && matches!(
                        trips,
                        TripCount::Const(_)
                            | TripCount::PerBlock { .. }
                            | TripCount::PerBlockPhase { .. }
                    );
                Self::check_barrier_uniformity(body, uniform)
            }
        }
    }
}

/// Why a kernel failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateError {
    /// `threads_per_block == 0`.
    EmptyBlock,
    /// The program contains no instructions.
    EmptyProgram,
    /// A basic-block id exceeds `num_basic_blocks`.
    BlockIdOutOfRange(BasicBlockId),
    /// Two `Block` nodes share an id.
    DuplicateBlockId(BasicBlockId),
    /// A barrier sits under thread-divergent control flow (deadlock on
    /// real hardware).
    DivergentBarrier,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::EmptyBlock => write!(f, "threads_per_block must be > 0"),
            ValidateError::EmptyProgram => write!(f, "program has no instructions"),
            ValidateError::BlockIdOutOfRange(id) => {
                write!(f, "basic block id {} out of range", id.0)
            }
            ValidateError::DuplicateBlockId(id) => {
                write!(f, "duplicate basic block id {}", id.0)
            }
            ValidateError::DivergentBarrier => {
                write!(f, "barrier under thread-divergent control flow")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// One launch of a kernel: how many thread blocks, and how much work each
/// does relative to the kernel's nominal trip counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchSpec {
    /// Position in the benchmark's launch sequence.
    pub launch_id: LaunchId,
    /// Grid size: number of thread blocks.
    pub num_blocks: u32,
    /// Work multiplier applied to every trip count (frontier size etc.).
    pub work_scale: f64,
}

/// A benchmark: one kernel plus its ordered sequence of launches.
///
/// (The paper selects, per application, the kernel with the longest running
/// time — Section V-A — so one kernel per benchmark is faithful.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRun {
    /// The kernel.
    pub kernel: Kernel,
    /// Launches in dispatch order.
    pub launches: Vec<LaunchSpec>,
}

impl KernelRun {
    /// Total thread blocks across all launches (the Table VI column).
    pub fn total_blocks(&self) -> u64 {
        self.launches.iter().map(|l| l.num_blocks as u64).sum()
    }

    /// Number of launches (the Table VI column).
    pub fn num_launches(&self) -> usize {
        self.launches.len()
    }
}

/// Incremental builder that hands out unique basic-block and site ids.
///
/// ```
/// use tbpoint_ir::{KernelBuilder, Op, AddrPattern, Cond, TripCount};
///
/// let mut b = KernelBuilder::new("demo", 42, 128);
/// let body = b.block(&[
///     Op::IAlu,
///     Op::LdGlobal(AddrPattern::Coalesced { region: 0, stride: 4 }),
/// ]);
/// let program = b.loop_(TripCount::Const(10), body);
/// let kernel = b.finish(program);
/// assert_eq!(kernel.num_basic_blocks, 1);
/// kernel.validate().unwrap();
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    seed: u64,
    threads_per_block: u32,
    regs_per_thread: u32,
    smem_per_block: u32,
    next_bb: u16,
    next_site: u32,
}

impl KernelBuilder {
    /// Start building a kernel.
    pub fn new(name: &str, seed: u64, threads_per_block: u32) -> Self {
        Self {
            name: name.to_string(),
            seed,
            threads_per_block,
            regs_per_thread: 16,
            smem_per_block: 0,
            next_bb: 0,
            next_site: 0,
        }
    }

    /// Set registers per thread (occupancy limiter). Default 16.
    pub fn regs(&mut self, r: u32) -> &mut Self {
        self.regs_per_thread = r;
        self
    }

    /// Set shared memory per block in bytes (occupancy limiter). Default 0.
    pub fn smem(&mut self, bytes: u32) -> &mut Self {
        self.smem_per_block = bytes;
        self
    }

    /// A fresh static site id, for `Cond`/`TripCount`/`Dist` decorrelation.
    pub fn fresh_site(&mut self) -> u32 {
        let s = self.next_site;
        self.next_site += 1;
        s
    }

    /// A straight-line basic block from the given ops; assigns the block id
    /// and per-instruction site ids.
    pub fn block(&mut self, ops: &[Op]) -> Node {
        let id = BasicBlockId(self.next_bb);
        self.next_bb += 1;
        let insts = ops
            .iter()
            .map(|&op| {
                let site = self.fresh_site();
                Inst { op, site }
            })
            .collect();
        Node::Block { id, insts }
    }

    /// Sequential composition.
    pub fn seq(&mut self, nodes: Vec<Node>) -> Node {
        Node::Seq(nodes)
    }

    /// Two-way branch.
    pub fn if_(&mut self, cond: Cond, then_: Node, else_: Option<Node>) -> Node {
        Node::If {
            cond,
            then_: Box::new(then_),
            else_: else_.map(Box::new),
        }
    }

    /// Counted loop.
    pub fn loop_(&mut self, trips: TripCount, body: Node) -> Node {
        Node::Loop {
            trips,
            body: Box::new(body),
        }
    }

    /// Finish: package the program into a [`Kernel`].
    pub fn finish(&self, program: Node) -> Kernel {
        Kernel {
            name: self.name.clone(),
            seed: self.seed,
            threads_per_block: self.threads_per_block,
            regs_per_thread: self.regs_per_thread,
            smem_per_block: self.smem_per_block,
            num_basic_blocks: self.next_bb,
            program,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::AddrPattern;
    use crate::program::Dist;

    fn simple_kernel() -> Kernel {
        let mut b = KernelBuilder::new("t", 1, 64);
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let program = b.loop_(TripCount::Const(5), body);
        b.finish(program)
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = KernelBuilder::new("t", 1, 64);
        let b0 = b.block(&[Op::IAlu]);
        let b1 = b.block(&[Op::FAlu, Op::Sfu]);
        let program = b.seq(vec![b0, b1]);
        let k = b.finish(program);
        assert_eq!(k.num_basic_blocks, 2);
        // Site ids must be unique across instructions.
        let mut sites = vec![];
        k.program.visit(&mut |n| {
            if let Node::Block { insts, .. } = n {
                sites.extend(insts.iter().map(|i| i.site));
            }
        });
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), 3);
        k.validate().unwrap();
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let mut k = simple_kernel();
        assert_eq!(k.warps_per_block(), 2);
        k.threads_per_block = 33;
        assert_eq!(k.warps_per_block(), 2);
        k.threads_per_block = 32;
        assert_eq!(k.warps_per_block(), 1);
    }

    #[test]
    fn validate_rejects_empty_program() {
        let b = KernelBuilder::new("t", 1, 32);
        let k = b.finish(Node::Seq(vec![]));
        assert_eq!(k.validate(), Err(ValidateError::EmptyProgram));
    }

    #[test]
    fn validate_rejects_zero_threads() {
        let mut b = KernelBuilder::new("t", 1, 0);
        let n = b.block(&[Op::IAlu]);
        let k = b.finish(n);
        assert_eq!(k.validate(), Err(ValidateError::EmptyBlock));
    }

    #[test]
    fn validate_rejects_divergent_barrier() {
        let mut b = KernelBuilder::new("t", 1, 64);
        let site = b.fresh_site();
        let bar = b.block(&[Op::Barrier]);
        let program = b.if_(Cond::ThreadProb { p: 0.5, site }, bar, None);
        let k = b.finish(program);
        assert_eq!(k.validate(), Err(ValidateError::DivergentBarrier));
    }

    #[test]
    fn validate_rejects_barrier_in_divergent_loop() {
        let mut b = KernelBuilder::new("t", 1, 64);
        let site = b.fresh_site();
        let bar = b.block(&[Op::Barrier]);
        let program = b.loop_(
            TripCount::PerThread {
                base: 1,
                spread: 3,
                dist: Dist::Uniform,
                site,
            },
            bar,
        );
        let k = b.finish(program);
        assert_eq!(k.validate(), Err(ValidateError::DivergentBarrier));
    }

    #[test]
    fn validate_accepts_block_uniform_barrier() {
        let mut b = KernelBuilder::new("t", 1, 64);
        let site = b.fresh_site();
        let bar = b.block(&[Op::Barrier]);
        let program = b.loop_(
            TripCount::PerBlock {
                base: 1,
                spread: 3,
                dist: Dist::Uniform,
                site,
            },
            bar,
        );
        let k = b.finish(program);
        assert_eq!(k.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_duplicate_block_ids() {
        let mut b = KernelBuilder::new("t", 1, 32);
        let n0 = b.block(&[Op::IAlu]);
        let mut n1 = n0.clone();
        if let Node::Block { insts, .. } = &mut n1 {
            insts[0].site = 99;
        }
        let program = b.seq(vec![n0, n1]);
        let k = b.finish(program);
        assert!(matches!(
            k.validate(),
            Err(ValidateError::DuplicateBlockId(_))
        ));
    }

    #[test]
    fn kernel_run_totals() {
        let k = simple_kernel();
        let run = KernelRun {
            kernel: k,
            launches: vec![
                LaunchSpec {
                    launch_id: LaunchId(0),
                    num_blocks: 10,
                    work_scale: 1.0,
                },
                LaunchSpec {
                    launch_id: LaunchId(1),
                    num_blocks: 30,
                    work_scale: 2.0,
                },
            ],
        };
        assert_eq!(run.total_blocks(), 40);
        assert_eq!(run.num_launches(), 2);
    }

    #[test]
    fn kernel_serde_roundtrip() {
        let k = simple_kernel();
        let json = serde_json::to_string(&k).unwrap();
        let back: Kernel = serde_json::from_str(&json).unwrap();
        assert_eq!(k, back);
    }
}

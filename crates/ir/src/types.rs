//! Strongly-typed identifiers shared across the workspace.
//!
//! Thread-block ids, launch ids etc. are all plain `u32`s underneath; the
//! newtypes keep the sampling code honest about *which* id space a number
//! lives in (mixing up a TB id and an epoch index is exactly the kind of
//! bug a reproduction cannot afford).

use serde::{Deserialize, Serialize};

/// Number of threads per warp (NVIDIA terminology; a "wavefront" on AMD).
pub const WARP_SIZE: u32 = 32;

/// Identifier of a kernel launch within one benchmark run.
///
/// Launches are ordered: all thread blocks of launch *n* retire before
/// launch *n + 1* begins (Section II-A of the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LaunchId(pub u32);

/// Identifier of a thread block within one kernel launch.
///
/// The global thread-block scheduler dispatches TBs **in id order, greedily**
/// (Section II-A) — an assumption intra-launch sampling leans on when it
/// groups nearby ids into epochs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TbId(pub u32);

/// Identifier of a thread within a thread block (`0..threads_per_block`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ThreadId(pub u32);

/// Identifier of a warp within a thread block.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct WarpId(pub u32);

/// Identifier of a basic block within a kernel program (BBV dimension).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BasicBlockId(pub u16);

impl ThreadId {
    /// The warp this thread belongs to.
    pub fn warp(self) -> WarpId {
        WarpId(self.0 / WARP_SIZE)
    }

    /// Lane index within the warp (`0..WARP_SIZE`).
    pub fn lane(self) -> u32 {
        self.0 % WARP_SIZE
    }
}

impl std::fmt::Display for LaunchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl std::fmt::Display for TbId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TB{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_warp_lane() {
        assert_eq!(ThreadId(0).warp(), WarpId(0));
        assert_eq!(ThreadId(31).warp(), WarpId(0));
        assert_eq!(ThreadId(32).warp(), WarpId(1));
        assert_eq!(ThreadId(33).lane(), 1);
        assert_eq!(ThreadId(95).warp(), WarpId(2));
        assert_eq!(ThreadId(95).lane(), 31);
    }

    #[test]
    fn display_forms() {
        assert_eq!(LaunchId(3).to_string(), "L3");
        assert_eq!(TbId(17).to_string(), "TB17");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(TbId(1) < TbId(2));
        assert!(LaunchId(0) < LaunchId(10));
    }
}

// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-ir
//!
//! Kernel intermediate representation for the TBPoint reproduction.
//!
//! The paper profiles real CUDA kernels through GPUOcelot. We replace the
//! CUDA/PTX front end with a compact, *structured* kernel IR: a thread
//! program is a tree of [`program::Node`]s (straight-line basic blocks,
//! `if`s, loops). Per-thread control flow — trip counts, branch decisions —
//! is a **pure function** of `(kernel seed, launch id, block id, thread id,
//! site)`, evaluated through the stateless mixer in `tbpoint-stats`. That
//! purity is what makes the whole reproduction hang together:
//!
//! * the functional profiler (`tbpoint-emu`) and the timing simulator
//!   (`tbpoint-sim`) observe *exactly* the same instruction streams, so
//!   profiling is **hardware independent** and **one-time** — the two
//!   properties the paper demands of a good profiling-based sampling scheme
//!   (Table II);
//! * every run is bit-reproducible regardless of host thread count.
//!
//! The IR deliberately models only what the sampling experiments are
//! sensitive to: instruction counts, control-flow divergence (active-mask
//! shrinkage), memory divergence (coalescing behaviour), barriers, and
//! occupancy limits (registers / shared memory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod display;
pub mod inst;
pub mod kernel;
pub mod program;
pub mod types;

pub use display::render_program;
pub use inst::{AddrPattern, Inst, LatencyClass, Op};
pub use kernel::{Kernel, KernelBuilder, KernelRun, LaunchSpec, ValidateError};
pub use program::{Cond, Dist, ExecCtx, Node, TripCount};
pub use types::{BasicBlockId, LaunchId, TbId, ThreadId, WarpId, WARP_SIZE};

//! Instructions and memory-address patterns.
//!
//! The timing model needs to know three things about an instruction: its
//! functional-unit class (for latency), whether it touches memory (for the
//! stall-probability feature, Eq. 5 of the paper), and — for global memory —
//! which per-lane addresses it generates (for coalescing, which determines
//! *memory divergence*, one of the four inter-launch features, Eq. 2).

use crate::program::ExecCtx;
use crate::types::WARP_SIZE;
use serde::{Deserialize, Serialize};
use tbpoint_stats::rng;

/// Cache-line size in bytes (Fermi: 128 B, Table V of the paper).
pub const LINE_BYTES: u64 = 128;

/// Coarse latency class of an operation, consumed by the timing simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyClass {
    /// Integer / single-precision ALU op.
    Alu,
    /// Special-function unit op (transcendentals) — longer pipeline.
    Sfu,
    /// Global/local memory access — variable latency, the paper's stall
    /// events ("M" in the Markov model).
    GlobalMem,
    /// Software-managed shared memory access — short fixed latency.
    SharedMem,
    /// Block-wide barrier.
    Barrier,
}

/// How a global-memory instruction computes its 32 per-lane addresses.
///
/// Patterns are *deterministic* functions of the executing context, so the
/// profiler and the timing simulator agree on every address.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AddrPattern {
    /// `addr(lane) = region_base + (global_tid * stride + iter * row) `
    /// with a small stride: consecutive lanes fall in the same 128-B lines.
    /// One or two memory requests per warp instruction.
    Coalesced {
        /// Memory-region id (distinct arrays live in distinct regions).
        region: u32,
        /// Per-thread element stride in bytes (4 or 8 for fully coalesced).
        stride: u32,
    },
    /// Large-stride accesses: every lane touches a different line.
    /// Generates up to 32 requests per warp instruction.
    Strided {
        /// Memory-region id.
        region: u32,
        /// Per-thread stride in bytes (>= 128 defeats coalescing).
        stride: u32,
    },
    /// Data-dependent gather (graph workloads): each lane addresses a
    /// pseudo-random line in the region — the worst case for coalescing
    /// and for cache locality.
    Random {
        /// Memory-region id.
        region: u32,
        /// Region size in bytes; addresses are drawn uniformly from it.
        bytes: u64,
    },
    /// All lanes read the same address (lookup tables, kernel arguments).
    /// Always exactly one request per warp instruction.
    Broadcast {
        /// Memory-region id.
        region: u32,
    },
}

impl AddrPattern {
    /// Byte address for `lane` of the warp whose first thread has global
    /// thread id `gtid_base`, at loop iteration `iter` of program site
    /// `site`.
    pub fn lane_addr(&self, ctx: &ExecCtx, gtid_base: u64, lane: u32, iter: u32, site: u32) -> u64 {
        let gtid = gtid_base + lane as u64;
        // `iter` is a *mixed* iteration key (hash-like, full u32 range);
        // fold it into a bounded slab index so every pattern stays inside
        // its region (regions are 16 GiB apart) with a realistic
        // footprint: loop iterations address different slabs of the same
        // array, not an unbounded address space.
        let slab = (iter % 4096) as u64;
        match *self {
            AddrPattern::Coalesced { region, stride } => {
                // One 256 KiB slab per iteration (a row of a 2-D array).
                region_base(region) + gtid * stride as u64 + slab * (256 << 10)
            }
            AddrPattern::Strided { region, stride } => {
                region_base(region) + gtid * stride as u64 + slab * LINE_BYTES
            }
            AddrPattern::Random { region, bytes } => {
                let r = rng::hash_coords(&[
                    ctx.kernel_seed,
                    ctx.launch_id.0 as u64,
                    gtid,
                    iter as u64,
                    site as u64,
                ]);
                region_base(region) + r % bytes.max(LINE_BYTES)
            }
            AddrPattern::Broadcast { region } => region_base(region) + slab * LINE_BYTES,
        }
    }

    /// Number of distinct 128-byte lines touched by the active lanes —
    /// i.e. the number of memory requests this warp instruction issues
    /// after coalescing. This is the quantity the profiler counts for the
    /// *memory divergence* feature and the stall probability `p`.
    pub fn coalesced_lines(
        &self,
        ctx: &ExecCtx,
        gtid_base: u64,
        active_mask: u32,
        iter: u32,
        site: u32,
    ) -> CoalescedLines {
        let mut lines = CoalescedLines::default();
        for lane in 0..WARP_SIZE {
            if active_mask & (1 << lane) != 0 {
                let addr = self.lane_addr(ctx, gtid_base, lane, iter, site);
                lines.push(addr / LINE_BYTES * LINE_BYTES);
            }
        }
        lines
    }
}

/// Small fixed-capacity set of distinct line addresses (max one per lane).
///
/// Avoids a `HashSet` allocation on the hottest path in both the profiler
/// and the simulator (per the perf-book guidance on allocation in hot
/// loops).
#[derive(Debug, Clone, Default)]
pub struct CoalescedLines {
    lines: [u64; WARP_SIZE as usize],
    len: u8,
}

impl CoalescedLines {
    /// Insert a line address if not already present.
    pub fn push(&mut self, line_addr: u64) {
        for i in 0..self.len as usize {
            if self.lines[i] == line_addr {
                return;
            }
        }
        self.lines[self.len as usize] = line_addr;
        self.len += 1;
    }

    /// Number of distinct lines.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no active lane produced an address.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the distinct line addresses.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines[..self.len as usize].iter().copied()
    }
}

/// A single static instruction in a kernel program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Integer ALU operation.
    IAlu,
    /// Floating-point ALU operation.
    FAlu,
    /// Special-function-unit operation (rsqrt, sin, ...).
    Sfu,
    /// Global-memory load with the given address pattern.
    LdGlobal(AddrPattern),
    /// Global-memory store with the given address pattern.
    StGlobal(AddrPattern),
    /// Shared-memory load.
    LdShared,
    /// Shared-memory store.
    StShared,
    /// `__syncthreads()` — block-wide barrier.
    Barrier,
}

impl Op {
    /// Latency class for the timing model.
    pub fn latency_class(&self) -> LatencyClass {
        match self {
            Op::IAlu | Op::FAlu => LatencyClass::Alu,
            Op::Sfu => LatencyClass::Sfu,
            Op::LdGlobal(_) | Op::StGlobal(_) => LatencyClass::GlobalMem,
            Op::LdShared | Op::StShared => LatencyClass::SharedMem,
            Op::Barrier => LatencyClass::Barrier,
        }
    }

    /// True for global/local memory accesses — the paper's definition of a
    /// potential stall event when computing the stall probability `p`.
    pub fn is_global_mem(&self) -> bool {
        matches!(self, Op::LdGlobal(_) | Op::StGlobal(_))
    }

    /// The address pattern, if this is a global access.
    pub fn addr_pattern(&self) -> Option<&AddrPattern> {
        match self {
            Op::LdGlobal(p) | Op::StGlobal(p) => Some(p),
            _ => None,
        }
    }
}

/// An instruction instance inside a basic block.
///
/// `site` is a unique-within-kernel static id used to decorrelate the
/// pseudo-random address streams of different instructions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// Operation kind.
    pub op: Op,
    /// Unique static site id (assigned by the kernel builder).
    pub site: u32,
}

/// Base byte address of a memory region. Regions are 16 GiB apart so no two
/// regions ever share a cache line.
pub fn region_base(region: u32) -> u64 {
    (region as u64) << 34
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ExecCtx;
    use crate::types::LaunchId;

    fn ctx() -> ExecCtx {
        ExecCtx {
            kernel_seed: 7,
            launch_id: LaunchId(0),
            block_id: 0,
            num_blocks: 64,
            work_scale: 1.0,
        }
    }

    #[test]
    fn coalesced_pattern_touches_few_lines() {
        let p = AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        };
        let lines = p.coalesced_lines(&ctx(), 0, u32::MAX, 0, 0);
        // 32 lanes * 4 bytes = 128 bytes = exactly one line.
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn strided_pattern_defeats_coalescing() {
        let p = AddrPattern::Strided {
            region: 0,
            stride: 128,
        };
        let lines = p.coalesced_lines(&ctx(), 0, u32::MAX, 0, 0);
        assert_eq!(lines.len(), 32);
    }

    #[test]
    fn broadcast_is_single_request() {
        let p = AddrPattern::Broadcast { region: 1 };
        let lines = p.coalesced_lines(&ctx(), 0, u32::MAX, 0, 0);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn random_pattern_is_deterministic() {
        let p = AddrPattern::Random {
            region: 2,
            bytes: 1 << 20,
        };
        let a = p.lane_addr(&ctx(), 64, 3, 1, 9);
        let b = p.lane_addr(&ctx(), 64, 3, 1, 9);
        assert_eq!(a, b);
        // Different site must decorrelate.
        let c = p.lane_addr(&ctx(), 64, 3, 1, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn inactive_lanes_generate_no_requests() {
        let p = AddrPattern::Strided {
            region: 0,
            stride: 128,
        };
        let lines = p.coalesced_lines(&ctx(), 0, 0b1111, 0, 0);
        assert_eq!(lines.len(), 4);
        let none = p.coalesced_lines(&ctx(), 0, 0, 0, 0);
        assert!(none.is_empty());
    }

    #[test]
    fn regions_do_not_overlap() {
        // Largest per-region offset we generate is well under 16 GiB.
        assert!(region_base(1) - region_base(0) >= (1 << 34));
        let p0 = AddrPattern::Coalesced {
            region: 0,
            stride: 8,
        };
        let p1 = AddrPattern::Coalesced {
            region: 1,
            stride: 8,
        };
        let a0 = p0.lane_addr(&ctx(), 1_000_000, 31, 100, 0);
        assert!(a0 < region_base(1));
        assert!(p1.lane_addr(&ctx(), 0, 0, 0, 0) >= region_base(1));
    }

    #[test]
    fn coalesced_lines_dedups() {
        let mut cl = CoalescedLines::default();
        cl.push(0);
        cl.push(128);
        cl.push(0);
        assert_eq!(cl.len(), 2);
        let v: Vec<u64> = cl.iter().collect();
        assert_eq!(v, vec![0, 128]);
    }

    #[test]
    fn latency_classes() {
        assert_eq!(Op::IAlu.latency_class(), LatencyClass::Alu);
        assert_eq!(Op::Sfu.latency_class(), LatencyClass::Sfu);
        assert_eq!(
            Op::LdGlobal(AddrPattern::Broadcast { region: 0 }).latency_class(),
            LatencyClass::GlobalMem
        );
        assert_eq!(Op::LdShared.latency_class(), LatencyClass::SharedMem);
        assert_eq!(Op::Barrier.latency_class(), LatencyClass::Barrier);
        assert!(Op::StGlobal(AddrPattern::Broadcast { region: 0 }).is_global_mem());
        assert!(!Op::LdShared.is_global_mem());
    }
}

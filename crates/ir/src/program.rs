//! Structured thread programs: the control-flow skeleton of a kernel.
//!
//! Real PTX has arbitrary CFGs; SIMT hardware handles divergence with a
//! reconvergence stack. We restrict programs to *structured* control flow
//! (sequences, `if`s, counted loops), which (a) every benchmark in the
//! paper's Table VI fits naturally, and (b) lets the emulator implement
//! divergence with simple mask intersection instead of IPDOM analysis.
//! DESIGN.md records this as part of the GPUOcelot substitution.

use crate::inst::Inst;
use crate::types::LaunchId;
use serde::{Deserialize, Serialize};
use tbpoint_stats::rng;

/// Everything a deterministic control-flow decision may depend on, short of
/// the thread id (passed separately at each evaluation site).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecCtx {
    /// Kernel-wide seed (decorrelates different benchmarks).
    pub kernel_seed: u64,
    /// The launch being executed.
    pub launch_id: LaunchId,
    /// The thread block being executed.
    pub block_id: u32,
    /// Grid size of the launch (blocks); lets trip counts depend on the
    /// block's *position* in the grid (phase-structured irregularity).
    pub num_blocks: u32,
    /// Per-launch work multiplier (frontier growth/shrink across launches).
    pub work_scale: f64,
}

/// Distribution family for data-dependent trip counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Uniform over `[base, base + spread]`.
    Uniform,
    /// Discrete power-law-ish: most values near `base`, a heavy tail up to
    /// `base + spread`. `alpha` > 0 controls tail weight (larger = lighter
    /// tail). Models graph-degree distributions (bfs, sssp).
    PowerLaw {
        /// Tail exponent; larger means lighter tail.
        alpha: f64,
    },
    /// Two-point mixture: with probability `p_heavy`, the value is
    /// `base + spread` ("outlier" thread blocks — mst); otherwise `base`.
    Bimodal {
        /// Probability of drawing the heavy value.
        p_heavy: f64,
    },
}

impl Dist {
    /// Draw a value in `[base, base + spread]` from coordinates `coords`.
    pub fn sample(&self, base: u32, spread: u32, coords: &[u64]) -> u32 {
        if spread == 0 {
            return base;
        }
        let u = rng::unit_f64(coords);
        // u in [0, 1) keeps both products within [0, spread], so the
        // saturating f64->u32 casts cannot wrap.
        #[allow(clippy::cast_possible_truncation)]
        match *self {
            Dist::Uniform => base + (u * (spread as f64 + 1.0)) as u32,
            Dist::PowerLaw { alpha } => {
                // u^alpha concentrates mass near `base` and leaves a heavy
                // tail reaching `base + spread` — graph-degree shaped.
                base + (u.powf(alpha.max(1e-3)) * spread as f64).round() as u32
            }
            Dist::Bimodal { p_heavy } => {
                if u < p_heavy {
                    base + spread
                } else {
                    base
                }
            }
        }
    }
}

/// Where a quantity varies: per thread (divergent), per block (warp-uniform
/// within the launch), or fixed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TripCount {
    /// Same count for every thread in every block.
    Const(u32),
    /// Varies per thread block (all threads of a block agree — no
    /// divergence, but block-to-block size variation; this is what
    /// produces "irregular" kernels in Fig. 8).
    PerBlock {
        /// Minimum trips.
        base: u32,
        /// Maximum additional trips.
        spread: u32,
        /// Distribution of the additional trips.
        dist: Dist,
        /// Static site id (decorrelates multiple loops).
        site: u32,
    },
    /// Varies per thread — the source of intra-warp control-flow
    /// divergence.
    PerThread {
        /// Minimum trips.
        base: u32,
        /// Maximum additional trips.
        spread: u32,
        /// Distribution of the additional trips.
        dist: Dist,
        /// Static site id.
        site: u32,
    },
    /// Constant within contiguous `phase_len`-block *slices of the
    /// grid*, varying across slices. This is the phase-structured
    /// irregularity of real irregular kernels (Fig. 8's Type I scatter):
    /// thread blocks with nearby ids do similar work, but the workload
    /// shifts as the grid progresses — exactly the structure homogeneous
    /// regions exploit. (Pure per-block white noise would instead trip
    /// the variation factor in every epoch.) The slice length is in
    /// blocks, independent of grid size, so launches smaller than one
    /// slice are uniform.
    PerBlockPhase {
        /// Minimum trips.
        base: u32,
        /// Maximum additional trips.
        spread: u32,
        /// Blocks per contiguous phase slice.
        phase_len: u32,
        /// Distribution of the per-phase draw.
        dist: Dist,
        /// Static site id.
        site: u32,
    },
}

impl TripCount {
    /// Trip count for a specific thread. Scaled by `ctx.work_scale`
    /// (rounded, minimum of `base` and at least 0).
    pub fn eval(&self, ctx: &ExecCtx, thread_global: u64) -> u32 {
        let raw = match *self {
            TripCount::Const(n) => n,
            TripCount::PerBlock {
                base,
                spread,
                dist,
                site,
            } => dist.sample(
                base,
                spread,
                &[
                    ctx.kernel_seed,
                    ctx.launch_id.0 as u64,
                    ctx.block_id as u64,
                    site as u64,
                ],
            ),
            TripCount::PerThread {
                base,
                spread,
                dist,
                site,
            } => dist.sample(
                base,
                spread,
                &[
                    ctx.kernel_seed,
                    ctx.launch_id.0 as u64,
                    ctx.block_id as u64,
                    thread_global,
                    site as u64,
                ],
            ),
            TripCount::PerBlockPhase {
                base,
                spread,
                phase_len,
                dist,
                site,
            } => {
                // Deliberately independent of the launch id: the spatial
                // work distribution is a property of the *input data*
                // (graph communities, matrix bands, k-space density), so
                // launches over the same data see the same phases. This is
                // what lets inter-launch clustering merge equally-sized
                // launches of irregular kernels.
                let phase = (ctx.block_id / phase_len.max(1)) as u64;
                dist.sample(base, spread, &[ctx.kernel_seed, phase, site as u64])
            }
        };
        if (ctx.work_scale - 1.0).abs() < f64::EPSILON {
            raw
        } else {
            // Saturating cast: work_scale is a small positive factor, and
            // an overflowing trip count pegging at u32::MAX is the sane
            // outcome anyway.
            #[allow(clippy::cast_possible_truncation)]
            let scaled = (raw as f64 * ctx.work_scale).round().max(0.0) as u32;
            scaled
        }
    }

    /// True when all threads of a warp necessarily agree on the count.
    pub fn is_warp_uniform(&self) -> bool {
        !matches!(self, TripCount::PerThread { .. })
    }
}

/// Branch condition for `if` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Cond {
    /// Taken by every thread.
    Always,
    /// Taken by no thread.
    Never,
    /// Taken independently per thread with probability `p` (divergent).
    ThreadProb {
        /// Probability of taking the branch.
        p: f64,
        /// Static site id.
        site: u32,
    },
    /// All threads of a block agree; blocks decide independently with
    /// probability `p` (no divergence).
    BlockProb {
        /// Probability of taking the branch.
        p: f64,
        /// Static site id.
        site: u32,
    },
    /// Taken by lanes with `lane < k` (structured, deterministic
    /// divergence — boundary handling in stencil codes).
    LaneLt(
        /// Lane threshold.
        u32,
    ),
}

impl Cond {
    /// Does `thread_global` (with warp lane `lane`) take the branch?
    pub fn eval(&self, ctx: &ExecCtx, thread_global: u64, lane: u32) -> bool {
        match *self {
            Cond::Always => true,
            Cond::Never => false,
            Cond::ThreadProb { p, site } => {
                rng::unit_f64(&[
                    ctx.kernel_seed,
                    ctx.launch_id.0 as u64,
                    ctx.block_id as u64,
                    thread_global,
                    site as u64,
                ]) < p
            }
            Cond::BlockProb { p, site } => {
                rng::unit_f64(&[
                    ctx.kernel_seed,
                    ctx.launch_id.0 as u64,
                    ctx.block_id as u64,
                    site as u64,
                ]) < p
            }
            Cond::LaneLt(k) => lane < k,
        }
    }

    /// True when all threads of a warp necessarily agree.
    pub fn is_warp_uniform(&self) -> bool {
        matches!(self, Cond::Always | Cond::Never | Cond::BlockProb { .. })
    }
}

/// A node of the structured program tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Straight-line code: one basic block.
    Block {
        /// BBV dimension this block contributes to.
        id: crate::types::BasicBlockId,
        /// The instructions.
        insts: Vec<Inst>,
    },
    /// Sequential composition.
    Seq(Vec<Node>),
    /// Two-way branch. Threads failing `cond` execute `else_` (if any).
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken path.
        then_: Box<Node>,
        /// Not-taken path.
        else_: Option<Box<Node>>,
    },
    /// Counted loop; each thread runs `trips` iterations of `body`.
    Loop {
        /// Per-thread trip count.
        trips: TripCount,
        /// Loop body.
        body: Box<Node>,
    },
}

impl Node {
    /// Number of `Block` nodes in the subtree (= BBV dimensions it spans).
    pub fn count_blocks(&self) -> usize {
        match self {
            Node::Block { .. } => 1,
            Node::Seq(ns) => ns.iter().map(Node::count_blocks).sum(),
            Node::If { then_, else_, .. } => {
                then_.count_blocks() + else_.as_ref().map_or(0, |e| e.count_blocks())
            }
            Node::Loop { body, .. } => body.count_blocks(),
        }
    }

    /// Total static instruction count in the subtree.
    pub fn count_static_insts(&self) -> usize {
        match self {
            Node::Block { insts, .. } => insts.len(),
            Node::Seq(ns) => ns.iter().map(Node::count_static_insts).sum(),
            Node::If { then_, else_, .. } => {
                then_.count_static_insts() + else_.as_ref().map_or(0, |e| e.count_static_insts())
            }
            Node::Loop { body, .. } => body.count_static_insts(),
        }
    }

    /// True if the subtree contains a barrier.
    pub fn contains_barrier(&self) -> bool {
        match self {
            Node::Block { insts, .. } => insts
                .iter()
                .any(|i| matches!(i.op, crate::inst::Op::Barrier)),
            Node::Seq(ns) => ns.iter().any(Node::contains_barrier),
            Node::If { then_, else_, .. } => {
                then_.contains_barrier() || else_.as_ref().is_some_and(|e| e.contains_barrier())
            }
            Node::Loop { body, .. } => body.contains_barrier(),
        }
    }

    /// Visit every node in the subtree (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Node)) {
        f(self);
        match self {
            Node::Block { .. } => {}
            Node::Seq(ns) => {
                for n in ns {
                    n.visit(f);
                }
            }
            Node::If { then_, else_, .. } => {
                then_.visit(f);
                if let Some(e) = else_ {
                    e.visit(f);
                }
            }
            Node::Loop { body, .. } => body.visit(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;
    use crate::types::BasicBlockId;

    fn ctx() -> ExecCtx {
        ExecCtx {
            kernel_seed: 11,
            launch_id: LaunchId(2),
            block_id: 5,
            num_blocks: 64,
            work_scale: 1.0,
        }
    }

    #[test]
    fn const_trip_count() {
        assert_eq!(TripCount::Const(7).eval(&ctx(), 0), 7);
        assert_eq!(TripCount::Const(7).eval(&ctx(), 999), 7);
        assert!(TripCount::Const(7).is_warp_uniform());
    }

    #[test]
    fn per_block_trips_agree_within_block() {
        let t = TripCount::PerBlock {
            base: 10,
            spread: 20,
            dist: Dist::Uniform,
            site: 1,
        };
        let a = t.eval(&ctx(), 0);
        let b = t.eval(&ctx(), 12345);
        assert_eq!(a, b, "PerBlock must not depend on the thread");
        assert!((10..=30).contains(&a));
        assert!(t.is_warp_uniform());
    }

    #[test]
    fn per_thread_trips_diverge() {
        let t = TripCount::PerThread {
            base: 0,
            spread: 100,
            dist: Dist::Uniform,
            site: 2,
        };
        let counts: Vec<u32> = (0..64).map(|tid| t.eval(&ctx(), tid)).collect();
        let all_same = counts.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "PerThread with spread should diverge");
        assert!(counts.iter().all(|&c| c <= 100));
        assert!(!t.is_warp_uniform());
    }

    #[test]
    fn work_scale_scales_trips() {
        let mut c = ctx();
        c.work_scale = 2.0;
        assert_eq!(TripCount::Const(7).eval(&c, 0), 14);
        c.work_scale = 0.5;
        assert_eq!(TripCount::Const(7).eval(&c, 0), 4); // rounds .5 away from zero
    }

    #[test]
    fn dist_bimodal_is_two_point() {
        let d = Dist::Bimodal { p_heavy: 0.25 };
        let mut heavy = 0;
        for i in 0..1000u64 {
            let v = d.sample(10, 90, &[i]);
            assert!(v == 10 || v == 100);
            if v == 100 {
                heavy += 1;
            }
        }
        assert!((150..=350).contains(&heavy), "heavy = {heavy}");
    }

    #[test]
    fn dist_power_law_skews_low() {
        let d = Dist::PowerLaw { alpha: 3.0 };
        let vals: Vec<u32> = (0..2000u64).map(|i| d.sample(0, 100, &[i, 7])).collect();
        let mean = vals.iter().sum::<u32>() as f64 / vals.len() as f64;
        assert!(mean < 40.0, "power law should skew low, mean = {mean}");
        assert!(vals.iter().any(|&v| v > 70), "tail should exist");
    }

    #[test]
    fn cond_eval_uniformity() {
        assert!(Cond::Always.eval(&ctx(), 0, 0));
        assert!(!Cond::Never.eval(&ctx(), 0, 0));
        assert!(Cond::LaneLt(4).eval(&ctx(), 100, 3));
        assert!(!Cond::LaneLt(4).eval(&ctx(), 100, 4));
        assert!(Cond::BlockProb { p: 0.5, site: 0 }.is_warp_uniform());
        assert!(!Cond::ThreadProb { p: 0.5, site: 0 }.is_warp_uniform());
        assert!(!Cond::LaneLt(4).is_warp_uniform());
    }

    #[test]
    fn thread_prob_rate_close_to_p() {
        let c = Cond::ThreadProb { p: 0.3, site: 9 };
        let taken = (0..10_000u64)
            .filter(|&t| c.eval(&ctx(), t, (t % 32) as u32))
            .count();
        assert!((2_700..=3_300).contains(&taken), "taken = {taken}");
    }

    #[test]
    fn node_counting() {
        let n = Node::Seq(vec![
            Node::Block {
                id: BasicBlockId(0),
                insts: vec![Inst {
                    op: Op::IAlu,
                    site: 0,
                }],
            },
            Node::Loop {
                trips: TripCount::Const(3),
                body: Box::new(Node::Block {
                    id: BasicBlockId(1),
                    insts: vec![
                        Inst {
                            op: Op::FAlu,
                            site: 1,
                        },
                        Inst {
                            op: Op::Barrier,
                            site: 2,
                        },
                    ],
                }),
            },
        ]);
        assert_eq!(n.count_blocks(), 2);
        assert_eq!(n.count_static_insts(), 3);
        assert!(n.contains_barrier());
        let mut visited = 0;
        n.visit(&mut |_| visited += 1);
        assert_eq!(visited, 4); // Seq, Block, Loop, Block
    }
}

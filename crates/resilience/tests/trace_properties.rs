//! Seeded property tests for the checked trace parser: *any* damage to
//! a sealed JSONL bundle — truncation at every byte, random bit flips,
//! mid-record splices — must surface as `Err`. Never a panic, never a
//! silently shortened bundle.

#![allow(clippy::unwrap_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use tbpoint_obs::{EventKind, JsonlRecorder, Recorder, TraceBundle};
use tbpoint_resilience::{corrupt_text, Fault};
use tbpoint_stats::SplitMix64;

/// A realistic sealed bundle: events, counters and gauges.
fn sealed_bundle() -> String {
    let rec = JsonlRecorder::new();
    for i in 0..40u64 {
        #[allow(clippy::cast_possible_truncation)]
        rec.record(
            i,
            EventKind::TbDispatched {
                tb: i as u32,
                sm: (i % 4) as u32,
            },
        );
        rec.counter("issued_warp_insts", 17 + i);
        rec.gauge("resident_blocks", 0, i);
    }
    let body = rec.finish();
    let bundle = TraceBundle::from_jsonl(&body).unwrap();
    bundle.to_jsonl_checked()
}

#[test]
fn sealed_bundle_round_trips() {
    let sealed = sealed_bundle();
    let bundle = TraceBundle::from_jsonl_checked(&sealed).unwrap();
    assert_eq!(bundle.events.len(), 40);
    assert_eq!(bundle.to_jsonl_checked(), sealed);
}

#[test]
fn every_truncation_point_is_rejected() {
    let sealed = sealed_bundle();
    // Exhaustive over line boundaries and a seeded sample of interior
    // cuts: `from_jsonl` (lenient) accepts newline-boundary truncation
    // silently; the checked parser must not.
    let mut rng = SplitMix64::new(0xDEAD);
    let mut cuts: Vec<usize> = (0..sealed.len())
        .filter(|&i| sealed.as_bytes()[i] == b'\n')
        .collect();
    for _ in 0..200 {
        #[allow(clippy::cast_possible_truncation)] // index < len, fits usize
        cuts.push(1 + rng.next_index(sealed.len() as u64 - 1) as usize);
    }
    for cut in cuts {
        // Cutting only the final newline is lossless (body and trailer
        // both intact), so the checked parser rightly accepts it.
        if cut == 0 || cut >= sealed.len() - 1 {
            continue;
        }
        let t = &sealed[..cut];
        let r = catch_unwind(AssertUnwindSafe(|| TraceBundle::from_jsonl_checked(t)));
        match r {
            Ok(parsed) => assert!(
                parsed.is_err(),
                "truncation at byte {cut} was silently accepted"
            ),
            Err(_) => panic!("truncation at byte {cut} panicked"),
        }
    }
}

#[test]
fn random_bit_flips_are_rejected() {
    let sealed = sealed_bundle();
    for seed in 0..64u64 {
        let t = corrupt_text(&sealed, Fault::BitFlipTrace, seed);
        assert_ne!(t, sealed);
        let r = catch_unwind(AssertUnwindSafe(|| TraceBundle::from_jsonl_checked(&t)));
        match r {
            Ok(parsed) => assert!(parsed.is_err(), "bit flip seed {seed} accepted"),
            Err(_) => panic!("bit flip seed {seed} panicked"),
        }
    }
}

#[test]
fn mid_record_splices_are_rejected() {
    let sealed = sealed_bundle();
    for seed in 0..64u64 {
        let t = corrupt_text(&sealed, Fault::SpliceTrace, seed);
        assert_ne!(t, sealed);
        let r = catch_unwind(AssertUnwindSafe(|| TraceBundle::from_jsonl_checked(&t)));
        match r {
            Ok(parsed) => assert!(parsed.is_err(), "splice seed {seed} accepted"),
            Err(_) => panic!("splice seed {seed} panicked"),
        }
    }
}

#[test]
fn no_silent_record_drops() {
    // The lenient parser's known hazard, pinned: cutting at a newline
    // boundary yields a *shorter* bundle with Ok. The checked parser
    // closes exactly this gap.
    let sealed = sealed_bundle();
    let body_end = sealed[..sealed.len() - 1].rfind('\n').unwrap();
    let body = &sealed[..body_end + 1];
    let shorter_end = body[..body.len() - 1].rfind('\n').unwrap();
    let shorter = &body[..shorter_end + 1];
    let lenient = TraceBundle::from_jsonl(shorter).unwrap();
    let full = TraceBundle::from_jsonl(body).unwrap();
    assert!(
        lenient.events.len() < full.events.len()
            || lenient.counters.len() < full.counters.len()
            || lenient.gauges.len() < full.gauges.len(),
        "expected the lenient parser to drop a record"
    );
    assert!(TraceBundle::from_jsonl_checked(shorter).is_err());
}

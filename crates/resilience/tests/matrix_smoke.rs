//! The fault-injection matrix smoke suite (run by the CI `resilience`
//! job): every fault kind x 8 seeds over small workloads, asserting
//! full containment — zero panics, zero silently-accepted traces, and
//! every profile fault surfacing as a `TbError`, degraded mode, or a
//! quantified IPC error.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, LaunchId, LaunchSpec, Op, TripCount};
use tbpoint_resilience::{error_growth, run_fault_matrix, MatrixOptions, Outcome};
use tbpoint_workloads::{benchmark_by_name, Scale};

fn synthetic_run(name: &str, seed: u64, n_launches: u32, blocks: u32) -> KernelRun {
    let mut b = KernelBuilder::new(name, seed, 128);
    let body = b.block(&[
        Op::IAlu,
        Op::FAlu,
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
    ]);
    let n = b.loop_(TripCount::Const(24), body);
    let kernel = b.finish(n);
    KernelRun {
        kernel,
        launches: (0..n_launches)
            .map(|i| LaunchSpec {
                launch_id: LaunchId(i),
                num_blocks: blocks,
                work_scale: 1.0,
            })
            .collect(),
    }
}

fn matrix_workloads() -> Vec<(String, KernelRun)> {
    vec![
        (
            "synth-homog".to_string(),
            synthetic_run("synth-homog", 11, 3, 160),
        ),
        (
            "bfs-tiny".to_string(),
            benchmark_by_name("bfs", Scale::Tiny).unwrap().run,
        ),
    ]
}

#[test]
fn full_matrix_contains_every_fault() {
    let opts = MatrixOptions::default();
    assert!(opts.seeds.len() >= 8, "acceptance demands >= 8 seeds");
    let report = run_fault_matrix(&matrix_workloads(), &opts);

    let expected = 2 * opts.faults.len() * opts.seeds.len();
    assert_eq!(report.cells.len(), expected);
    assert_eq!(report.panics(), 0, "panicking cells:\n{}", report.summary());
    assert_eq!(
        report.silently_accepted(),
        0,
        "silently accepted trace corruption:\n{}",
        report.summary()
    );
    assert!(report.all_contained());

    // Structural profile faults (drop/duplicate) must degrade or error,
    // never pass as a clean quantified run.
    for cell in &report.cells {
        let structural = matches!(
            cell.fault,
            tbpoint_resilience::Fault::DropEpochs { .. }
                | tbpoint_resilience::Fault::DuplicateEpochs { .. }
        );
        if structural {
            assert!(
                matches!(
                    cell.outcome,
                    Outcome::Degraded { .. } | Outcome::GracefulError(_)
                ),
                "structural fault passed untouched: {cell:?}"
            );
        }
        // Every trace fault must be rejected.
        if cell.fault.is_trace_fault() {
            assert!(
                matches!(cell.outcome, Outcome::Rejected(_)),
                "trace fault not rejected: {cell:?}"
            );
        }
        // Every pool fault must be contained: the panicking indices
        // report a graceful per-index error, everything else completes
        // (lowest-index reporting preserved), at every worker count.
        if cell.fault.is_pool_fault() {
            match &cell.outcome {
                Outcome::GracefulError(msg) => {
                    assert!(
                        msg.starts_with("unit ") && msg.contains("panicked"),
                        "pool containment message malformed: {msg}"
                    );
                }
                other => panic!("pool fault not contained: {other:?}"),
            }
        }
    }

    // The report round-trips through JSON (the CLI writes it out).
    let json = serde_json::to_string(&report).unwrap();
    let back: tbpoint_resilience::MatrixReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn error_grows_from_a_sub_ten_percent_baseline() {
    let run = synthetic_run("growth", 5, 2, 240);
    let opts = MatrixOptions::default();
    let curve = error_growth(&run, &[0.0, 0.4, 0.8], &[1, 2, 3, 4], &opts);
    assert_eq!(curve.len(), 3);
    // The paper's claim, checked empirically: with no injected noise
    // the TBPoint prediction is within 10% of the full simulation.
    assert!(
        curve[0].mean_err_pct < 10.0,
        "clean sampling error {:.2}% breaches the paper's 10% claim",
        curve[0].mean_err_pct
    );
    // Errors stay finite and the curve reports every magnitude.
    for p in &curve {
        assert!(p.mean_err_pct.is_finite());
        assert!(p.max_err_pct >= p.mean_err_pct - 1e-12);
    }
    // Determinism: the whole curve replays bit-identically.
    let again = error_growth(&run, &[0.0, 0.4, 0.8], &[1, 2, 3, 4], &opts);
    assert_eq!(curve, again);
}

//! The fault taxonomy and deterministic injectors.
//!
//! Every injector is a pure function of `(input, fault, seed)` built on
//! the stateless [`tbpoint_stats`] mixers, so a failing matrix cell can
//! be replayed exactly from its `(fault, seed)` coordinates.
//!
//! Faults target the pipeline's two trust boundaries:
//!
//! * **profile faults** ([`inject_profile`]) perturb the one-time
//!   emulator profile that inter-launch clustering and region sampling
//!   trust: stall-probability jitter, dropped/duplicated epoch-sized
//!   runs of thread blocks, and noise on the counters behind the Eq. 2
//!   inter-launch feature vectors;
//! * **trace faults** ([`corrupt_text`]) damage a checksummed JSONL
//!   trace bundle in transit: truncation, bit flips and mid-record
//!   splices.

use serde::{Deserialize, Serialize};
use tbpoint_emu::RunProfile;
use tbpoint_stats::unit_f64;

/// Thread blocks per "epoch" chunk for the drop/duplicate faults — an
/// occupancy-sized run, matching how the intra-launch clusterer groups
/// TBs into epochs (Eq. 4).
pub const EPOCH_CHUNK: usize = 32;

/// One injectable fault. Magnitudes are relative: `0.1` means counters
/// move by up to ±10%, fractions are the share of epoch chunks affected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Jitter each TB's `mem_requests` (the stall-probability numerator,
    /// Eq. 5) by a factor in `1 ± magnitude`. The profile stays
    /// structurally valid; region identification sees noisy stall
    /// probabilities.
    StallJitter {
        /// Maximum relative perturbation (e.g. `0.2` = ±20%).
        magnitude: f64,
    },
    /// Remove epoch-sized runs of TB profiles from every launch. The
    /// block roster no longer matches the launch spec, so profile
    /// validation must fail and the pipeline must degrade, not index
    /// out of bounds.
    DropEpochs {
        /// Share of epoch chunks to remove (at least one when positive).
        fraction: f64,
    },
    /// Duplicate epoch-sized runs of TB profiles in every launch
    /// (roster too long and misnumbered — again must degrade).
    DuplicateEpochs {
        /// Share of epoch chunks to duplicate (at least one when
        /// positive).
        fraction: f64,
    },
    /// Scale each launch's instruction and memory counters by
    /// per-launch factors in `1 ± magnitude`, shifting its Eq. 2
    /// inter-launch feature vector while keeping the profile valid.
    FeatureNoise {
        /// Maximum relative perturbation.
        magnitude: f64,
    },
    /// Cut a sealed JSONL trace at a seeded byte offset.
    TruncateTrace,
    /// Flip one low bit of a seeded byte of a sealed JSONL trace.
    BitFlipTrace,
    /// Delete a seeded byte range spanning a record boundary, splicing
    /// two records into one malformed line.
    SpliceTrace,
    /// Panic inside a seeded unit scheduled on the supervised job pool.
    /// The pool must contain it: that index alone reports
    /// `UnitError::Panicked`, every other index completes, and the
    /// assembled outcome is identical at every worker count.
    PanicInUnit,
}

impl Fault {
    /// Short stable name for reports and artifact files.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::StallJitter { .. } => "stall-jitter",
            Fault::DropEpochs { .. } => "drop-epochs",
            Fault::DuplicateEpochs { .. } => "duplicate-epochs",
            Fault::FeatureNoise { .. } => "feature-noise",
            Fault::TruncateTrace => "truncate-trace",
            Fault::BitFlipTrace => "bit-flip-trace",
            Fault::SpliceTrace => "splice-trace",
            Fault::PanicInUnit => "panic-in-unit",
        }
    }

    /// Whether this fault perturbs a [`RunProfile`].
    pub fn is_profile_fault(&self) -> bool {
        matches!(
            self,
            Fault::StallJitter { .. }
                | Fault::DropEpochs { .. }
                | Fault::DuplicateEpochs { .. }
                | Fault::FeatureNoise { .. }
        )
    }

    /// Whether this fault damages a serialized trace bundle.
    pub fn is_trace_fault(&self) -> bool {
        matches!(
            self,
            Fault::TruncateTrace | Fault::BitFlipTrace | Fault::SpliceTrace
        )
    }

    /// Whether this fault attacks the job pool's worker supervision
    /// (rather than an input artifact).
    pub fn is_pool_fault(&self) -> bool {
        matches!(self, Fault::PanicInUnit)
    }

    /// The default matrix roster: every fault kind once, at magnitudes
    /// large enough to be visible but small enough that the sampler is
    /// still exercised (not just rejected at the door).
    pub fn default_matrix() -> Vec<Fault> {
        vec![
            Fault::StallJitter { magnitude: 0.3 },
            Fault::DropEpochs { fraction: 0.25 },
            Fault::DuplicateEpochs { fraction: 0.25 },
            Fault::FeatureNoise { magnitude: 0.3 },
            Fault::TruncateTrace,
            Fault::BitFlipTrace,
            Fault::SpliceTrace,
            Fault::PanicInUnit,
        ]
    }
}

/// Scale a counter by a factor, saturating at the `u64` range.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn scale_count(x: u64, factor: f64) -> u64 {
    let v = (x as f64 * factor).round();
    if v <= 0.0 {
        0
    } else if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v as u64
    }
}

/// A deterministic factor in `1 ± magnitude` keyed by coordinates.
fn jitter_factor(coords: &[u64], magnitude: f64) -> f64 {
    1.0 + magnitude * (2.0 * unit_f64(coords) - 1.0)
}

/// Seeded index into a collection of `n` elements. The cast cannot
/// truncate: `n` comes from an in-memory collection's length, so the
/// result fits `usize`.
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn seeded_index(coords: &[u64], n: usize) -> usize {
    tbpoint_stats::unit_index(coords, n as u64) as usize
}

/// Apply a profile fault in place, deterministically under `seed`.
/// Trace faults leave the profile untouched (use [`corrupt_text`]).
pub fn inject_profile(profile: &mut RunProfile, fault: Fault, seed: u64) {
    match fault {
        Fault::StallJitter { magnitude } => {
            for (l, lp) in profile.launches.iter_mut().enumerate() {
                for (i, tb) in lp.tbs.iter_mut().enumerate() {
                    let f = jitter_factor(&[seed, 1, l as u64, i as u64], magnitude);
                    tb.mem_requests = scale_count(tb.mem_requests, f);
                }
            }
        }
        Fault::FeatureNoise { magnitude } => {
            for (l, lp) in profile.launches.iter_mut().enumerate() {
                // One factor per feature per launch, so the launch's
                // whole feature vector shifts coherently.
                let ft = jitter_factor(&[seed, 2, l as u64, 0], magnitude);
                let fw = jitter_factor(&[seed, 2, l as u64, 1], magnitude);
                let fm = jitter_factor(&[seed, 2, l as u64, 2], magnitude);
                for tb in &mut lp.tbs {
                    tb.thread_insts = scale_count(tb.thread_insts, ft);
                    tb.warp_insts = scale_count(tb.warp_insts, fw);
                    tb.mem_requests = scale_count(tb.mem_requests, fm);
                }
            }
        }
        Fault::DropEpochs { fraction } => {
            for (l, lp) in profile.launches.iter_mut().enumerate() {
                let n_chunks = lp.tbs.len().div_ceil(EPOCH_CHUNK).max(1);
                let mut keep: Vec<bool> = (0..n_chunks)
                    .map(|c| unit_f64(&[seed, 3, l as u64, c as u64]) >= fraction)
                    .collect();
                // A positive fraction must drop something, or the cell
                // silently tests nothing.
                if fraction > 0.0 && keep.iter().all(|&k| k) {
                    let c = seeded_index(&[seed, 4, l as u64], n_chunks);
                    keep[c] = false;
                }
                let mut kept = Vec::with_capacity(lp.tbs.len());
                for (i, tb) in lp.tbs.drain(..).enumerate() {
                    if keep[i / EPOCH_CHUNK] {
                        kept.push(tb);
                    }
                }
                lp.tbs = kept;
            }
        }
        Fault::DuplicateEpochs { fraction } => {
            for (l, lp) in profile.launches.iter_mut().enumerate() {
                let n_chunks = lp.tbs.len().div_ceil(EPOCH_CHUNK).max(1);
                let mut dup: Vec<bool> = (0..n_chunks)
                    .map(|c| unit_f64(&[seed, 5, l as u64, c as u64]) < fraction)
                    .collect();
                if fraction > 0.0 && !dup.iter().any(|&d| d) {
                    let c = seeded_index(&[seed, 6, l as u64], n_chunks);
                    dup[c] = true;
                }
                let mut out = Vec::with_capacity(lp.tbs.len() * 2);
                for (c, chunk) in lp.tbs.chunks(EPOCH_CHUNK).enumerate() {
                    out.extend_from_slice(chunk);
                    if dup[c] {
                        out.extend_from_slice(chunk);
                    }
                }
                lp.tbs = out;
            }
        }
        Fault::TruncateTrace | Fault::BitFlipTrace | Fault::SpliceTrace | Fault::PanicInUnit => {}
    }
}

/// Damage serialized trace text, deterministically under `seed`.
/// Guaranteed to return text different from the input whenever the
/// input is at least 4 bytes; profile faults return the input unchanged.
pub fn corrupt_text(text: &str, fault: Fault, seed: u64) -> String {
    let bytes = text.as_bytes();
    if bytes.len() < 4 {
        return text.to_string();
    }
    match fault {
        Fault::TruncateTrace => {
            // Cut somewhere in [1, len-1]: always removes at least one
            // byte, never returns the empty string.
            let cut = 1 + seeded_index(&[seed, 10], bytes.len() - 1);
            String::from_utf8_lossy(&bytes[..cut]).into_owned()
        }
        Fault::BitFlipTrace => {
            let pos = seeded_index(&[seed, 11], bytes.len());
            let bit = seeded_index(&[seed, 12], 5); // bits 0..4 keep ASCII
            let mut out = bytes.to_vec();
            out[pos] ^= 1 << bit;
            String::from_utf8_lossy(&out).into_owned()
        }
        Fault::SpliceTrace => {
            // Remove a range centred on a record boundary: two records
            // merge into one malformed line (and the line count drops).
            let newlines: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b == b'\n')
                .map(|(i, _)| i)
                .collect();
            if newlines.is_empty() {
                return corrupt_text(text, Fault::TruncateTrace, seed);
            }
            let nl = newlines[seeded_index(&[seed, 13], newlines.len())];
            let lo = nl.saturating_sub(1 + seeded_index(&[seed, 14], 8));
            let hi = (nl + 1 + seeded_index(&[seed, 15], 8)).min(bytes.len());
            let mut out = bytes[..lo].to_vec();
            out.extend_from_slice(&bytes[hi..]);
            String::from_utf8_lossy(&out).into_owned()
        }
        _ => text.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_emu::profile_run;
    use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, LaunchId, LaunchSpec, Op, TripCount};

    fn tiny_run() -> KernelRun {
        let mut b = KernelBuilder::new("tiny", 7, 64);
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(10), body);
        let kernel = b.finish(n);
        KernelRun {
            kernel,
            launches: (0..2)
                .map(|i| LaunchSpec {
                    launch_id: LaunchId(i),
                    num_blocks: 96,
                    work_scale: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn injectors_are_deterministic_in_the_seed() {
        let base = profile_run(&tiny_run(), 1);
        for fault in Fault::default_matrix() {
            if !fault.is_profile_fault() {
                continue;
            }
            let mut a = base.clone();
            let mut b = base.clone();
            let mut c = base.clone();
            inject_profile(&mut a, fault, 42);
            inject_profile(&mut b, fault, 42);
            inject_profile(&mut c, fault, 43);
            assert_eq!(a, b, "{} not deterministic", fault.name());
            assert_ne!(a, c, "{} ignores the seed", fault.name());
            assert_ne!(a, base, "{} changed nothing", fault.name());
        }
    }

    #[test]
    fn drop_and_duplicate_change_the_roster_length() {
        let base = profile_run(&tiny_run(), 1);
        let mut dropped = base.clone();
        inject_profile(&mut dropped, Fault::DropEpochs { fraction: 0.5 }, 7);
        assert!(dropped.launches[0].tbs.len() < base.launches[0].tbs.len());

        let mut duped = base.clone();
        inject_profile(&mut duped, Fault::DuplicateEpochs { fraction: 0.5 }, 7);
        assert!(duped.launches[0].tbs.len() > base.launches[0].tbs.len());
    }

    #[test]
    fn jitter_preserves_structure() {
        let base = profile_run(&tiny_run(), 1);
        let mut j = base.clone();
        inject_profile(&mut j, Fault::StallJitter { magnitude: 0.5 }, 9);
        assert_eq!(j.launches.len(), base.launches.len());
        for (a, b) in j.launches.iter().zip(&base.launches) {
            assert_eq!(a.tbs.len(), b.tbs.len());
            // Only mem_requests moved.
            for (ta, tb) in a.tbs.iter().zip(&b.tbs) {
                assert_eq!(ta.warp_insts, tb.warp_insts);
                assert_eq!(ta.thread_insts, tb.thread_insts);
            }
        }
    }

    #[test]
    fn text_corruptors_always_change_the_text() {
        let text = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n";
        for fault in [
            Fault::TruncateTrace,
            Fault::BitFlipTrace,
            Fault::SpliceTrace,
        ] {
            for seed in 0..32u64 {
                let out = corrupt_text(text, fault, seed);
                assert_ne!(out, text, "{} seed {seed} was a no-op", fault.name());
                assert_eq!(
                    out,
                    corrupt_text(text, fault, seed),
                    "{} seed {seed} not deterministic",
                    fault.name()
                );
            }
        }
    }

    #[test]
    fn fault_names_are_stable_and_serializable() {
        for f in Fault::default_matrix() {
            let json = serde_json::to_string(&f).expect("serialize");
            let back: Fault = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, f);
            assert!(!f.name().is_empty());
        }
    }
}

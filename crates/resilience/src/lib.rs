// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-resilience
//!
//! Deterministic fault injection for the TBPoint pipeline's trust
//! boundaries, and the matrix runner that asserts every fault is
//! *contained*: the pipeline returns `Err` or degrades gracefully —
//! it never panics, and corrupted trace bundles never parse silently.
//!
//! * [`fault`] — the fault taxonomy ([`Fault`]) and seeded injectors:
//!   profile perturbations ([`inject_profile`]) and serialized-trace
//!   damage ([`corrupt_text`]). Everything is a pure function of
//!   `(input, fault, seed)`, so a failing cell replays exactly.
//! * [`matrix`] — [`run_fault_matrix`] executes every
//!   `(benchmark, fault, seed)` cell under `catch_unwind` and
//!   classifies the [`Outcome`]; [`error_growth`] sweeps injected
//!   stall-probability noise and quantifies how the sampling error
//!   grows with it, empirically bracketing the paper's ~10% claim.
//!
//! The graceful-degradation behaviour itself lives in `tbpoint-core`
//! (`TbpointConfig::{warming_budget, cycle_budget}`,
//! `TbpointResult::degradation_ratio`) and `tbpoint-obs`
//! (`DegradedMode` events, checksummed JSONL); this crate supplies the
//! adversarial inputs and the containment report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod matrix;

pub use fault::{corrupt_text, inject_profile, Fault, EPOCH_CHUNK};
pub use matrix::{
    error_growth, run_fault_matrix, GrowthPoint, MatrixCell, MatrixOptions, MatrixReport, Outcome,
};

//! The fault-injection matrix runner.
//!
//! Runs every `(benchmark, fault, seed)` cell under
//! [`std::panic::catch_unwind`] and classifies what the pipeline did
//! with the damage. The contract under test: **no fault ever panics** —
//! each one surfaces as a [`tbpoint_core::TbError`], as degraded mode
//! (with `DegradedMode` events and a nonzero `degradation_ratio`), as a
//! rejected trace, or as a quantified IPC error.
//!
//! [`error_growth`] additionally sweeps a jitter magnitude and reports
//! how the sampling error grows with injected profile noise, which
//! checks the paper's headline empirically: at zero injected noise the
//! TBPoint prediction stays within ~10% of the full simulation.

use crate::fault::{corrupt_text, inject_profile, Fault};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use tbpoint_core::{run_tbpoint, run_tbpoint_traced, TbpointConfig};
use tbpoint_emu::{profile_run, RunProfile};
use tbpoint_ir::KernelRun;
use tbpoint_obs::TraceBundle;
use tbpoint_pool::{run_supervised, UnitError};
use tbpoint_sim::{simulate_run, GpuConfig, NullSampling};

/// What one matrix cell did with its fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The pipeline panicked — always a bug; the matrix exists to keep
    /// this count at zero.
    Panicked(String),
    /// The pipeline returned a `TbError` (message attached).
    GracefulError(String),
    /// The pipeline completed but fell back to detailed simulation for
    /// some representatives, emitting `DegradedMode`.
    Degraded {
        /// `TbpointResult::degradation_ratio()` of the faulty run.
        degradation_ratio: f64,
        /// Absolute IPC error (percent) vs the clean full simulation.
        err_pct: f64,
    },
    /// The pipeline completed normally; the fault's effect is the
    /// quantified IPC error vs the clean full simulation.
    Quantified {
        /// Absolute IPC error (percent) vs the clean full simulation.
        err_pct: f64,
    },
    /// A corrupted trace was rejected by the checked parser (message
    /// attached) — the correct behaviour for trace faults.
    Rejected(String),
    /// A corrupted trace parsed without complaint — a hole in the
    /// integrity defence; the matrix exists to keep this count at zero.
    SilentlyAccepted,
}

/// One `(benchmark, fault, seed)` result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Benchmark name.
    pub bench: String,
    /// The injected fault.
    pub fault: Fault,
    /// The injection seed (replay coordinate).
    pub seed: u64,
    /// What happened.
    pub outcome: Outcome,
}

/// The whole matrix plus the per-benchmark clean baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MatrixReport {
    /// Every cell, in `(bench, fault, seed)` order.
    pub cells: Vec<MatrixCell>,
    /// Per-benchmark clean TBPoint error vs full simulation (percent) —
    /// the zero-noise baseline the faulty errors are read against.
    pub clean_err_pct: Vec<(String, f64)>,
}

impl MatrixReport {
    /// Cells that panicked (must be zero).
    pub fn panics(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, Outcome::Panicked(_)))
            .count()
    }

    /// Trace cells that were silently accepted (must be zero).
    pub fn silently_accepted(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, Outcome::SilentlyAccepted))
            .count()
    }

    /// The matrix's pass criterion: every fault was contained.
    pub fn all_contained(&self) -> bool {
        self.panics() == 0 && self.silently_accepted() == 0
    }

    /// Human-readable per-fault tally.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut faults: Vec<&'static str> = self.cells.iter().map(|c| c.fault.name()).collect();
        faults.dedup();
        for fname in faults {
            let (mut err, mut deg, mut quant, mut rej, mut bad) = (0, 0, 0, 0, 0);
            for c in self.cells.iter().filter(|c| c.fault.name() == fname) {
                match c.outcome {
                    Outcome::GracefulError(_) => err += 1,
                    Outcome::Degraded { .. } => deg += 1,
                    Outcome::Quantified { .. } => quant += 1,
                    Outcome::Rejected(_) => rej += 1,
                    Outcome::Panicked(_) | Outcome::SilentlyAccepted => bad += 1,
                }
            }
            let _ = writeln!(
                out,
                "{fname:18} error={err:3} degraded={deg:3} quantified={quant:3} \
                 rejected={rej:3} CONTAINMENT-FAILURES={bad}"
            );
        }
        let _ = writeln!(
            out,
            "cells={} panics={} silently-accepted={}",
            self.cells.len(),
            self.panics(),
            self.silently_accepted()
        );
        out
    }
}

/// Matrix shape: which faults, which seeds, and the pipeline config the
/// faulty profiles run under.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// Faults to inject (default: [`Fault::default_matrix`]).
    pub faults: Vec<Fault>,
    /// Injection seeds (default: 8 seeds).
    pub seeds: Vec<u64>,
    /// GPU model for simulations.
    pub gpu: GpuConfig,
    /// Pipeline config. The default enables a warming budget so regions
    /// destabilised by jitter degrade instead of warming forever.
    pub config: TbpointConfig,
}

impl Default for MatrixOptions {
    fn default() -> Self {
        MatrixOptions {
            faults: Fault::default_matrix(),
            seeds: (0..8).map(|i| 0xF00D + i).collect(),
            gpu: GpuConfig::fermi(),
            config: TbpointConfig {
                warming_budget: Some(32),
                ..TbpointConfig::default()
            },
        }
    }
}

fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one profile-fault cell: inject, run the pipeline, classify.
fn profile_cell(
    run: &KernelRun,
    profile: &RunProfile,
    full_ipc: f64,
    fault: Fault,
    seed: u64,
    opts: &MatrixOptions,
) -> Outcome {
    let mut faulty = profile.clone();
    inject_profile(&mut faulty, fault, seed);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_tbpoint(run, &faulty, &opts.config, &opts.gpu)
    }));
    match outcome {
        Err(p) => Outcome::Panicked(panic_msg(p)),
        Ok(Err(e)) => Outcome::GracefulError(e.to_string()),
        Ok(Ok(r)) => {
            let err_pct = r.error_vs(full_ipc);
            if r.degraded_launches > 0 {
                Outcome::Degraded {
                    degradation_ratio: r.degradation_ratio(),
                    err_pct,
                }
            } else {
                Outcome::Quantified { err_pct }
            }
        }
    }
}

/// Run one trace-fault cell: corrupt a sealed bundle, feed it to the
/// checked parser, classify.
fn trace_cell(sealed: &str, fault: Fault, seed: u64) -> Outcome {
    let corrupted = corrupt_text(sealed, fault, seed);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        TraceBundle::from_jsonl_checked(&corrupted)
    }));
    match outcome {
        Err(p) => Outcome::Panicked(panic_msg(p)),
        Ok(Err(e)) => Outcome::Rejected(e.to_string()),
        Ok(Ok(_)) => Outcome::SilentlyAccepted,
    }
}

/// Run one pool-fault cell: schedule a batch of units on the
/// *supervised* pool with two seeded units rigged to panic, at several
/// worker counts, and classify the containment. The contract:
///
/// * no panic escapes the pool (else [`Outcome::Panicked`]);
/// * exactly the rigged indices report [`UnitError::Panicked`] with the
///   injected message, **every other index completes** with the correct
///   value, and the outcome vector is identical at every worker count —
///   then the cell is [`Outcome::GracefulError`] carrying the
///   *lowest* failed index (the workspace's error-reporting rule);
/// * anything else — a lost panic, a wrong sibling value, a
///   worker-count-dependent outcome — is [`Outcome::SilentlyAccepted`].
///
/// The cell is a pure function of the seed (it ignores the benchmark:
/// the pool under attack schedules synthetic units, not profiles).
fn pool_cell(seed: u64) -> Outcome {
    const UNITS: usize = 16;
    let bad_a = crate::fault::seeded_index(&[seed, 20], UNITS);
    let bad_b = crate::fault::seeded_index(&[seed, 21], UNITS);
    let is_bad = |i: usize| i == bad_a || i == bad_b;

    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let run = catch_unwind(AssertUnwindSafe(|| {
            run_supervised::<u64, String, _>(workers, UNITS, |i| {
                if is_bad(i) {
                    // The fault under test: a deliberate unit panic the
                    // supervised pool must contain.
                    // tbpoint-lint: allow(no-panic-in-library)
                    panic!("injected unit panic");
                }
                Ok(i as u64 * 3)
            })
        }));
        match run {
            Err(p) => return Outcome::Panicked(panic_msg(p)),
            Ok(results) => runs.push(results),
        }
    }

    let contained = runs.iter().all(|results| {
        results.len() == UNITS
            && results.iter().enumerate().all(|(i, r)| match r {
                Ok(v) => !is_bad(i) && *v == i as u64 * 3,
                Err(UnitError::Panicked(msg)) => is_bad(i) && msg == "injected unit panic",
                Err(UnitError::Failed(_)) => false,
            })
    });
    let identical = runs.windows(2).all(|w| w[0] == w[1]);
    if contained && identical {
        let lowest = bad_a.min(bad_b);
        Outcome::GracefulError(format!(
            "unit {lowest} panicked: injected unit panic ({}/{UNITS} units completed)",
            UNITS - if bad_a == bad_b { 1 } else { 2 }
        ))
    } else {
        // A lost panic or a timing-dependent outcome is exactly the
        // silent-damage class the matrix exists to keep at zero.
        Outcome::SilentlyAccepted
    }
}

/// Run the full fault matrix over the given named workloads.
///
/// Per benchmark this profiles once, runs one full simulation (the IPC
/// reference), runs one clean traced TBPoint pass (whose first trace
/// becomes the sealed bundle the trace faults corrupt), then executes
/// every `(fault, seed)` cell.
pub fn run_fault_matrix(runs: &[(String, KernelRun)], opts: &MatrixOptions) -> MatrixReport {
    let mut report = MatrixReport::default();
    for (name, run) in runs {
        let profile = profile_run(run, 1);
        let full = simulate_run(run, &opts.gpu, &mut NullSampling, None);
        let full_ipc = full.overall_ipc();
        let sealed = match run_tbpoint_traced(run, &profile, &opts.config, &opts.gpu) {
            Ok((clean, traces)) => {
                report
                    .clean_err_pct
                    .push((name.clone(), clean.error_vs(full_ipc)));
                traces
                    .first()
                    .map(|t| t.trace.to_jsonl_checked())
                    .unwrap_or_default()
            }
            Err(e) => {
                // A benchmark whose *clean* run fails is reported as one
                // graceful-error cell per fault so the hole is visible.
                report.clean_err_pct.push((name.clone(), f64::NAN));
                for &fault in &opts.faults {
                    for &seed in &opts.seeds {
                        report.cells.push(MatrixCell {
                            bench: name.clone(),
                            fault,
                            seed,
                            outcome: Outcome::GracefulError(format!("clean run failed: {e}")),
                        });
                    }
                }
                continue;
            }
        };
        for &fault in &opts.faults {
            for &seed in &opts.seeds {
                let outcome = if fault.is_profile_fault() {
                    profile_cell(run, &profile, full_ipc, fault, seed, opts)
                } else if fault.is_pool_fault() {
                    pool_cell(seed)
                } else {
                    trace_cell(&sealed, fault, seed)
                };
                report.cells.push(MatrixCell {
                    bench: name.clone(),
                    fault,
                    seed,
                    outcome,
                });
            }
        }
    }
    report
}

/// One point of the noise-vs-error curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthPoint {
    /// Injected stall-jitter magnitude (0 = clean).
    pub magnitude: f64,
    /// Mean absolute IPC error (percent) vs full simulation across
    /// seeds.
    pub mean_err_pct: f64,
    /// Worst seed's error.
    pub max_err_pct: f64,
}

/// Sweep stall-jitter magnitude and measure how the TBPoint IPC error
/// grows with injected profile noise (the empirical check on the
/// paper's ~10% claim: the `magnitude = 0` point is the clean sampling
/// error). Degraded and failed runs count as `100%` error so they are
/// visible in the curve rather than silently dropped.
pub fn error_growth(
    run: &KernelRun,
    magnitudes: &[f64],
    seeds: &[u64],
    opts: &MatrixOptions,
) -> Vec<GrowthPoint> {
    let profile = profile_run(run, 1);
    let full_ipc = simulate_run(run, &opts.gpu, &mut NullSampling, None).overall_ipc();
    magnitudes
        .iter()
        .map(|&magnitude| {
            let errs: Vec<f64> = seeds
                .iter()
                .map(|&seed| {
                    let mut faulty = profile.clone();
                    inject_profile(&mut faulty, Fault::StallJitter { magnitude }, seed);
                    match run_tbpoint(run, &faulty, &opts.config, &opts.gpu) {
                        Ok(r) => r.error_vs(full_ipc),
                        Err(_) => 100.0,
                    }
                })
                .collect();
            GrowthPoint {
                magnitude,
                mean_err_pct: tbpoint_stats::mean(&errs),
                max_err_pct: tbpoint_stats::max_f64(&errs),
            }
        })
        .collect()
}

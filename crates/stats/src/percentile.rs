//! Percentiles and "fraction within a band" — the two summaries the
//! Monte-Carlo IPC-variation experiment (Fig. 5) reports.

/// Linear-interpolation percentile (`q` in `[0, 100]`) of an unsorted slice.
///
/// Sorts a private copy; callers in hot paths should batch their queries.
/// Returns `0.0` for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    percentile_sorted(&v, q)
}

/// Percentile of an already-sorted slice (ascending).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    // `rank` is in [0, len-1] after the clamp, so the casts cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    let lo = rank.floor() as usize;
    #[allow(clippy::cast_possible_truncation)]
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fraction of samples whose relative deviation from `center` is at most
/// `band` (e.g. `band = 0.10` for "within ±10%").
///
/// This is exactly the Fig.-5 claim shape: "more than 95% of the samples
/// have less than a 10% difference of the average IPC".
pub fn fraction_within(xs: &[f64], center: f64, band: f64) -> f64 {
    if xs.is_empty() || center.abs() < f64::EPSILON {
        return 0.0;
    }
    let n_in = xs
        .iter()
        .filter(|&&x| ((x - center) / center).abs() <= band)
        .count();
    n_in as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 50.0), 5.0);
        assert_eq!(percentile(&xs, 75.0), 7.5);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_empty_and_singleton() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 150.0), 2.0);
    }

    #[test]
    fn percentile_survives_nan() {
        // Regression: sort_by(partial_cmp().expect(..)) used to panic here.
        // total_cmp orders NaN after +inf, so finite quantiles still come
        // from the finite prefix.
        let xs = [2.0, f64::NAN, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0 / 3.0), 2.0);
    }

    #[test]
    fn fraction_within_basic() {
        let xs = [95.0, 100.0, 105.0, 120.0];
        // 95, 100, 105 are within ±10% of 100; 120 is not.
        assert!((fraction_within(&xs, 100.0, 0.10) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_edges() {
        assert_eq!(fraction_within(&[], 100.0, 0.1), 0.0);
        assert_eq!(fraction_within(&[1.0], 0.0, 0.1), 0.0);
        // Boundary value exactly on the band edge counts as inside.
        assert_eq!(fraction_within(&[110.0], 100.0, 0.10), 1.0);
    }
}

//! Deterministic pseudo-random utilities.
//!
//! The workload generators must be *reproducible across runs, platforms and
//! thread counts*: a thread block's behaviour is a pure function of
//! `(benchmark seed, launch id, block id, thread id, site)`. A stateless
//! mixing function fits that better than a stateful RNG — there is no
//! sequence to keep in sync between the profiler, the emulator and the
//! timing simulator. We use the SplitMix64 finaliser, whose avalanche
//! behaviour is well studied.

/// Stateless SplitMix64-based mixer plus a thin stateful wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// SplitMix64 finalising mix of a 64-bit value (stateless, pure).
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary list of coordinates into one u64 (order-sensitive).
pub fn hash_coords(coords: &[u64]) -> u64 {
    let mut acc = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &c in coords {
        acc = mix64(acc ^ c);
    }
    acc
}

/// Uniform f64 in `[0, 1)` derived from coordinates (stateless).
pub fn unit_f64(coords: &[u64]) -> f64 {
    // 53 high bits -> [0,1) double, the standard construction.
    (hash_coords(coords) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, n)` derived from coordinates (stateless).
///
/// Uses the widening-multiply trick; bias is negligible for n << 2^64.
pub fn unit_index(coords: &[u64], n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    ((hash_coords(coords) as u128 * n as u128) >> 64) as u64
}

impl SplitMix64 {
    /// Seeded stateful generator (used where a sequence is genuinely needed,
    /// e.g. shuffling sampling-unit ids for the random baseline).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Next f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn next_index(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal variate via Box–Muller (one value per call; the
    /// second variate is discarded for simplicity — these paths are cold).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            // j <= i <= usize::MAX, so the round-trip through u64 is exact.
            #[allow(clippy::cast_possible_truncation)]
            let j = self.next_index(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut lo = 0usize;
        for i in 0..10_000u64 {
            let x = unit_f64(&[7, i]);
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            }
        }
        // Roughly uniform: between 45% and 55% below the median.
        assert!((4_500..=5_500).contains(&lo), "lo = {lo}");
    }

    #[test]
    fn unit_index_in_range() {
        for i in 0..1000u64 {
            assert!(unit_index(&[i], 17) < 17);
        }
        assert_eq!(unit_index(&[5], 0), 0);
    }

    #[test]
    fn hash_is_order_sensitive() {
        assert_ne!(hash_coords(&[1, 2]), hash_coords(&[2, 1]));
    }

    #[test]
    fn stateful_sequence_is_reproducible() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(1234);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let g = rng.next_gaussian();
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}

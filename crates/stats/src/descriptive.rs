//! Batch descriptive statistics over `f64` slices.
//!
//! All functions define their value on the empty slice explicitly (usually
//! `0.0`) instead of panicking: the sampling pipeline frequently produces
//! empty epochs / clusters at small scales and must degrade gracefully.

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`, not `n - 1`).
///
/// The paper's CoV (Eq. 5) characterises a *complete* epoch — every thread
/// block in the epoch is observed — so the population form is the right one.
/// Returns `0.0` for slices with fewer than two elements.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    population_variance(xs).sqrt()
}

/// Coefficient of variation: `std_dev / mean`.
///
/// Returns `0.0` when the mean is zero (an epoch of all-empty thread blocks
/// is perfectly homogeneous, not infinitely variable).
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m.abs() < f64::MIN_POSITIVE {
        return 0.0;
    }
    std_dev(xs) / m
}

/// Geometric mean of strictly positive values.
///
/// Zero or negative entries are clamped to `GEOMEAN_FLOOR` so that a single
/// perfect (0% error) benchmark does not collapse the summary to zero — the
/// same convention SimPoint-style papers use when reporting error geomeans.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    /// Clamp floor for non-positive inputs to [`geometric_mean`].
    pub const GEOMEAN_FLOOR: f64 = 1e-6;
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(GEOMEAN_FLOOR).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Maximum of a slice, `0.0` when empty. Ignores NaN-ordering subtleties by
/// treating NaN as smaller than everything (NaNs never win).
pub fn max_f64(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter()
        .copied()
        .fold(f64::MIN, |a, b| if b > a { b } else { a })
}

/// Minimum of a slice, `0.0` when empty.
pub fn min_f64(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter()
        .copied()
        .fold(f64::MAX, |a, b| if b < a { b } else { a })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[5.0]), 5.0);
    }

    #[test]
    fn variance_basic() {
        // Var([2,4,4,4,5,5,7,9]) = 4 (classic textbook example).
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn variance_degenerate() {
        assert_eq!(population_variance(&[]), 0.0);
        assert_eq!(population_variance(&[3.0]), 0.0);
        assert_eq!(population_variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn cov_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((cov(&xs) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn cov_zero_mean_is_zero() {
        assert_eq!(cov(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(cov(&[]), 0.0);
    }

    #[test]
    fn cov_homogeneous_epoch_is_zero() {
        assert_eq!(cov(&[7.0; 16]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geometric_mean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geomean_clamps_zero() {
        // A single 0% error must not zero the summary.
        let g = geometric_mean(&[0.0, 0.1, 0.1]);
        assert!(g > 0.0);
        assert!(g < 0.1);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0, 2.0];
        assert_eq!(max_f64(&xs), 7.0);
        assert_eq!(min_f64(&xs), -1.0);
        assert_eq!(min_f64(&[]), 0.0);
    }
}

//! Confidence intervals and weighted statistics.
//!
//! The Monte-Carlo experiment (Fig. 5) and the bench harness report means
//! of noisy samples; a mean without an interval is a guess. Normal-theory
//! intervals are adequate at the sample counts involved (>= hundreds).

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Does the interval contain `x`?
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// z-value for a two-sided confidence level (supported: 0.90, 0.95,
/// 0.99; anything else falls back to 0.95's 1.96).
fn z_for(level: f64) -> f64 {
    if (level - 0.90).abs() < 1e-9 {
        1.6449
    } else if (level - 0.99).abs() < 1e-9 {
        2.5758
    } else {
        1.96
    }
}

/// Normal-approximation confidence interval for the mean of `xs`.
///
/// Returns a zero-width interval for fewer than two samples.
pub fn mean_ci(xs: &[f64], level: f64) -> ConfidenceInterval {
    let m = crate::descriptive::mean(xs);
    if xs.len() < 2 {
        return ConfidenceInterval {
            mean: m,
            half_width: 0.0,
        };
    }
    // Sample (n-1) variance for the standard error.
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0);
    let se = (var / xs.len() as f64).sqrt();
    ConfidenceInterval {
        mean: m,
        half_width: z_for(level) * se,
    }
}

/// Weighted arithmetic mean. Returns 0 when the weights sum to zero.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "weights must match samples");
    let wsum: f64 = ws.iter().sum();
    if wsum.abs() < f64::MIN_POSITIVE {
        return 0.0;
    }
    xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / wsum
}

/// Weighted harmonic mean — the right way to combine per-phase IPCs into
/// an overall IPC when weights are instruction counts.
///
/// Non-positive rates are skipped (they carry no time).
pub fn weighted_harmonic_mean(rates: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(rates.len(), ws.len(), "weights must match samples");
    let mut wsum = 0.0;
    let mut denom = 0.0;
    for (&r, &w) in rates.iter().zip(ws) {
        if r > 0.0 && w > 0.0 {
            wsum += w;
            denom += w / r;
        }
    }
    if denom < f64::MIN_POSITIVE {
        0.0
    } else {
        wsum / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_shrinks_with_samples() {
        let small: Vec<f64> = (0..20).map(|i| (i % 5) as f64).collect();
        let big: Vec<f64> = (0..2000).map(|i| (i % 5) as f64).collect();
        let ci_small = mean_ci(&small, 0.95);
        let ci_big = mean_ci(&big, 0.95);
        assert!(ci_big.half_width < ci_small.half_width);
        assert!(ci_big.contains(2.0));
    }

    #[test]
    fn ci_levels_order() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let c90 = mean_ci(&xs, 0.90).half_width;
        let c95 = mean_ci(&xs, 0.95).half_width;
        let c99 = mean_ci(&xs, 0.99).half_width;
        assert!(c90 < c95 && c95 < c99);
    }

    #[test]
    fn ci_degenerate_inputs() {
        assert_eq!(mean_ci(&[], 0.95).half_width, 0.0);
        assert_eq!(mean_ci(&[3.0], 0.95).half_width, 0.0);
        assert_eq!(mean_ci(&[3.0], 0.95).mean, 3.0);
    }

    #[test]
    fn weighted_mean_basics() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), 1.5);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn harmonic_mean_is_ipc_combination() {
        // Phase A: 1000 insts at IPC 2; phase B: 1000 insts at IPC 0.5.
        // Cycles = 500 + 2000 -> overall IPC = 2000/2500 = 0.8.
        let ipc = weighted_harmonic_mean(&[2.0, 0.5], &[1000.0, 1000.0]);
        assert!((ipc - 0.8).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_skips_zero_rates() {
        let ipc = weighted_harmonic_mean(&[0.0, 1.0], &[100.0, 100.0]);
        assert!((ipc - 1.0).abs() < 1e-12);
        assert_eq!(weighted_harmonic_mean(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "weights must match")]
    fn mismatched_weights_rejected() {
        weighted_mean(&[1.0], &[1.0, 2.0]);
    }
}

//! Single-pass (online) statistics via Welford's algorithm.
//!
//! The timing simulator and the emulator both stream millions of
//! observations (per-cycle issue counts, per-thread-block sizes, memory
//! latencies); materialising them as `Vec<f64>` just to compute a mean and a
//! CoV would dominate memory traffic. `OnlineStats` folds each observation
//! in O(1) with good numerical behaviour.

/// Welford online accumulator for count / mean / variance / min / max.
///
/// Two accumulators can be [`merge`](OnlineStats::merge)d, which is what the
/// parallel profiling paths use: each worker keeps a private accumulator and
/// the results are merged at join time (no shared mutable state in the hot
/// loop, per the data-race-freedom idiom of the HPC guides).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (Chan et al. parallel form).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`0.0` for fewer than two observations).
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation; `0.0` when the mean is zero.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    #[test]
    fn matches_batch_statistics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert_eq!(o.count(), 8);
        assert!((o.mean() - descriptive::mean(&xs)).abs() < 1e-12);
        assert!((o.population_variance() - descriptive::population_variance(&xs)).abs() < 1e-12);
        assert!((o.cov() - descriptive::cov(&xs)).abs() < 1e-12);
        assert_eq!(o.min(), 2.0);
        assert_eq!(o.max(), 9.0);
    }

    #[test]
    fn empty_is_all_zero() {
        let o = OnlineStats::new();
        assert_eq!(o.count(), 0);
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.population_variance(), 0.0);
        assert_eq!(o.min(), 0.0);
        assert_eq!(o.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}

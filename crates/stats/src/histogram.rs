//! Fixed-bin histogram used for reporting distributions (thread-block sizes
//! in Fig. 8, Monte-Carlo IPC spread in Fig. 5) without storing every sample.

/// Uniform-width histogram over `[lo, hi)` with saturating under/overflow
/// bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `n_bins` uniform bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `n_bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(n_bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            // In-range x gives a bin index below bins.len(); the saturating
            // cast plus min() make rounding at the top edge harmless.
            #[allow(clippy::cast_possible_truncation)]
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_center, count)` pairs — convenient for plotting/CSV output.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }

    /// Merge another histogram with identical bounds and bin count.
    ///
    /// # Panics
    /// Panics if the layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        // Layout compatibility means bit-identical bounds, so compare bits.
        assert_eq!(
            self.lo.to_bits(),
            other.lo.to_bits(),
            "histogram lower bounds differ"
        );
        assert_eq!(
            self.hi.to_bits(),
            other.hi.to_bits(),
            "histogram upper bounds differ"
        );
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram bin counts differ"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.9);
        h.record(5.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // upper edge is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins().iter().sum::<u64>(), 0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let cs = h.centers();
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[0].0, 0.5);
        assert_eq!(cs[3].0, 3.5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bins()[0], 2);
        assert_eq!(a.bins()[4], 1);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn merge_rejects_mismatched_layout() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}

//! Sampling-error metrics.
//!
//! The paper reports the *sampling error* of an approach as the relative
//! difference between the IPC predicted from the samples and the IPC of the
//! full (unsampled) simulation, expressed in percent.

/// Absolute percentage error of `predicted` relative to `reference`.
///
/// `abs_pct_error(10.5, 10.0) == 5.0` (five percent). A zero reference with
/// a zero prediction is a perfect match (0%); a zero reference with a
/// nonzero prediction is reported as 100%.
pub fn abs_pct_error(predicted: f64, reference: f64) -> f64 {
    signed_pct_error(predicted, reference).abs()
}

/// Signed percentage error of `predicted` relative to `reference`.
///
/// Positive means the prediction over-estimates the reference.
pub fn signed_pct_error(predicted: f64, reference: f64) -> f64 {
    if reference.abs() < f64::MIN_POSITIVE {
        if predicted.abs() < f64::MIN_POSITIVE {
            return 0.0;
        }
        return 100.0 * predicted.signum();
    }
    (predicted - reference) / reference * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_error_basic() {
        assert!((abs_pct_error(10.5, 10.0) - 5.0).abs() < 1e-12);
        assert!((abs_pct_error(9.5, 10.0) - 5.0).abs() < 1e-12);
        assert!((signed_pct_error(9.5, 10.0) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn pct_error_exact_match() {
        assert_eq!(abs_pct_error(3.0, 3.0), 0.0);
    }

    #[test]
    fn pct_error_zero_reference() {
        assert_eq!(abs_pct_error(0.0, 0.0), 0.0);
        assert_eq!(abs_pct_error(1.0, 0.0), 100.0);
        assert_eq!(signed_pct_error(-1.0, 0.0), -100.0);
    }
}

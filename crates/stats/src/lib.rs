// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-stats
//!
//! Small numerical-statistics toolkit shared by every other TBPoint crate.
//!
//! The paper leans on a handful of descriptive statistics:
//!
//! * the **coefficient of variation** (CoV) drives the *variation factor*
//!   used to detect outlier thread blocks (Eq. 5 of the paper),
//! * the **geometric mean** summarises sampling errors and sample sizes
//!   across benchmarks (Figs. 9 and 10),
//! * **percentiles** quantify the Monte-Carlo IPC-variation experiment
//!   (Fig. 5: ">95% of samples are within 10% of the average IPC").
//!
//! Everything here is dependency-light, allocation-free where possible, and
//! deterministic, so the rest of the workspace can rely on it in hot loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod descriptive;
pub mod error;
pub mod histogram;
pub mod online;
pub mod percentile;
pub mod rng;

pub use ci::{mean_ci, weighted_harmonic_mean, weighted_mean, ConfidenceInterval};
pub use descriptive::{cov, geometric_mean, max_f64, mean, min_f64, population_variance, std_dev};
pub use error::{abs_pct_error, signed_pct_error};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use percentile::{fraction_within, percentile};
pub use rng::{hash_coords, mix64, unit_f64, unit_index, SplitMix64};

//! The workspace error type for the TBPoint pipeline.
//!
//! Everything that can go wrong *before* simulation starts — a config
//! carrying nonsense values, a profile that does not describe the run —
//! is reported through [`TbError`] instead of a panic, so library users
//! (and the CLI) can surface the problem with `?`.

use std::fmt;

/// Errors produced by the TBPoint pipeline's entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TbError {
    /// A configuration field holds a value the pipeline cannot run with.
    InvalidConfig {
        /// Dotted path of the offending field (e.g. `"inter.sigma"`).
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// The profile was taken from a different run (launch counts differ).
    ProfileMismatch {
        /// Launches in the kernel run.
        run_launches: usize,
        /// Launches in the profile.
        profile_launches: usize,
    },
    /// A simulated launch was still dispatching blocks past its cycle
    /// budget: the watchdog drained it and discarded the run.
    BudgetExceeded {
        /// Index of the launch that overran.
        launch: usize,
        /// The configured per-launch cycle budget.
        budget_cycles: u64,
    },
}

impl fmt::Display for TbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: `{field}` {reason}")
            }
            TbError::ProfileMismatch {
                run_launches,
                profile_launches,
            } => write!(
                f,
                "profile does not match the run: {run_launches} launches in the run, \
                 {profile_launches} in the profile"
            ),
            TbError::BudgetExceeded {
                launch,
                budget_cycles,
            } => write!(
                f,
                "launch {launch} exceeded its cycle budget of {budget_cycles} cycles \
                 and was aborted by the watchdog"
            ),
        }
    }
}

impl std::error::Error for TbError {}

/// Shorthand for building an [`TbError::InvalidConfig`].
pub(crate) fn invalid(field: &'static str, reason: impl Into<String>) -> TbError {
    TbError::InvalidConfig {
        field,
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = invalid("intra.sigma", "must be finite and positive (got NaN)");
        assert_eq!(
            e.to_string(),
            "invalid config: `intra.sigma` must be finite and positive (got NaN)"
        );
        let m = TbError::ProfileMismatch {
            run_launches: 3,
            profile_launches: 2,
        };
        assert!(m.to_string().contains("3 launches"));
        assert!(m.to_string().contains('2'));
    }
}
